//! Workspace-local stand-in for the `proptest` crate.
//!
//! The build must be hermetic (no registry access), so this crate
//! reimplements the subset of proptest's API that the workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map`, integer
//! range / `any` / tuple / `Just` / union / collection strategies, the
//! [`proptest!`] test macro, and the `prop_assert*` macros.
//!
//! Differences from upstream are deliberate and documented:
//! - generation is deterministic (a fixed seed per case index), so failures
//!   reproduce exactly across runs and machines;
//! - there is no shrinking — on failure the full generated inputs are
//!   printed instead;
//! - regex string strategies treat every pattern as "any short string"
//!   (the workspace only uses `".*"`).

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for upstream compatibility; unused (no shrinking here).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// A failed property (raised by `prop_assert!` and friends).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Build a failure carrying `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            Self {
                message: reason.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic per-case RNG (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case`; the same case always sees the same
        /// stream, so failures are reproducible without a persistence file.
        pub fn for_case(case: u64) -> Self {
            Self {
                state: case
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(0x5851_F42D_4C95_7F2D),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`. `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform boolean.
        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// Object safe: only [`Strategy::generate`] is required, combinators are
    /// `Self: Sized`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternative strategies
    /// (what [`prop_oneof!`](crate::prop_oneof) builds).
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Build from the given alternatives. Panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy for "anything of type `T`" — see [`crate::arbitrary::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    macro_rules! tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

    /// String "regex" strategy. Upstream proptest compiles the pattern; the
    /// workspace only ever uses `".*"`, so any pattern means "any short
    /// string", including non-ASCII scalars to exercise UTF-8 paths.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let len = rng.below(13);
            (0..len)
                .map(|_| {
                    if rng.bool() {
                        // Printable ASCII.
                        (0x20 + rng.below(0x5f) as u8) as char
                    } else {
                        // Arbitrary unicode scalar value.
                        loop {
                            if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                                break c;
                            }
                        }
                    }
                })
                .collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{Any, Strategy};
    use crate::test_runner::TestRng;

    /// Strategy generating any value of `T` (integers uniform over the full
    /// domain, with edge values mixed in).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    // One case in eight draws from the edges, where integer
                    // bugs live.
                    if rng.below(8) == 0 {
                        match rng.below(4) {
                            0 => <$t>::MIN,
                            1 => <$t>::MAX,
                            2 => 0 as $t,
                            _ => 1 as $t,
                        }
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Vec of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Output of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declare property tests. Each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `cases` deterministic generated inputs through the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { @config ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! {
            @config ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        @config ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..u64::from(config.cases) {
                    let mut rng = $crate::test_runner::TestRng::for_case(case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(concat!(stringify!($arg), " = "));
                            s.push_str(&format!("{:?}, ", &$arg));
                        )+
                        s
                    };
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            Ok(())
                        },
                    ));
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => panic!(
                            "proptest case {}/{} failed: {}\n    inputs: {}",
                            case + 1,
                            config.cases,
                            e,
                            inputs
                        ),
                        Err(payload) => {
                            eprintln!(
                                "proptest case {}/{} panicked\n    inputs: {}",
                                case + 1,
                                config.cases,
                                inputs
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

/// Fail the surrounding property if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the surrounding property if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Fail the surrounding property if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice among alternative strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(::std::boxed::Box::new($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn determinism() {
        let s = crate::collection::vec(any::<u64>(), 0..20);
        let a = s.generate(&mut TestRng::for_case(7));
        let b = s.generate(&mut TestRng::for_case(7));
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case(1);
        for _ in 0..1000 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (0usize..1).generate(&mut rng);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut rng = TestRng::for_case(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro itself: args bind, maps apply, asserts pass through.
        #[test]
        fn macro_smoke(x in 1u32..100, y in (0u64..5).prop_map(|v| v * 2), s in ".*") {
            prop_assert!((1..100).contains(&x));
            prop_assert_eq!(y % 2, 0);
            prop_assert!(s.chars().count() <= 12, "len {}", s.len());
        }
    }
}
