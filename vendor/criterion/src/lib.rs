//! Workspace-local stand-in for the `criterion` crate.
//!
//! The build must be hermetic (no registry access), so this vendored crate
//! provides the slice of criterion's API the workspace's benches use:
//! benchmark groups, `iter`/`iter_batched`, throughput annotation, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! calibrated wall-clock sampler reporting the median time per iteration —
//! no statistics engine, no plotting, no baseline storage. Good enough to
//! compare two in-tree variants (e.g. tracing on vs. off) on one machine.

use std::fmt;
use std::time::{Duration, Instant};

/// How batched inputs are grouped per measurement (accepted for
/// compatibility; every batch size runs the routine once per setup here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Work-per-iteration annotation; turns times into rates in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Top-level harness handle, passed to every registered bench function.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench forwards CLI args: flags are ignored, the first
        // positional argument filters benchmarks by substring.
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                filter = Some(arg);
                break;
            }
        }
        Self {
            filter,
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Default sample count for groups that don't override it.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.sample_size;
        self.run_one(&id.id, None, sample_size, &mut f);
        self
    }

    fn run_one<F>(&self, full_id: &str, throughput: Option<Throughput>, samples: usize, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            target_samples: samples.max(5),
        };
        f(&mut bencher);
        bencher.report(full_id, throughput);
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration work annotation for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion
            .run_one(&full, self.throughput, samples, &mut f);
        self
    }

    /// Benchmark `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (cosmetic; prints a separator).
    pub fn finish(self) {
        eprintln!();
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<f64>,
    target_samples: usize,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in ~2ms?
        let once = time_once(|| {
            std::hint::black_box(routine());
        });
        let per_sample = iters_for(once);
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_secs_f64() / per_sample as f64);
        }
    }

    /// Measure `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }

    fn report(&self, full_id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            eprintln!("{full_id:<52} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let lo = sorted[0];
        let hi = sorted[sorted.len() - 1];
        let rate = throughput.map(|t| match t {
            Throughput::Bytes(n) => format!("  {}/s", human_bytes(n as f64 / median)),
            Throughput::Elements(n) => format!("  {:.3} Melem/s", n as f64 / median / 1e6),
        });
        eprintln!(
            "{full_id:<52} time: [{} {} {}]{}",
            human_time(lo),
            human_time(median),
            human_time(hi),
            rate.unwrap_or_default()
        );
    }
}

fn time_once<F: FnMut()>(mut f: F) -> Duration {
    let start = Instant::now();
    f();
    start.elapsed()
}

fn iters_for(once: Duration) -> u64 {
    let target = Duration::from_millis(2);
    if once.is_zero() {
        return 1000;
    }
    (target.as_secs_f64() / once.as_secs_f64()).clamp(1.0, 100_000.0) as u64
}

fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn human_bytes(rate: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = rate;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.2} {}", UNITS[unit])
}

/// Register benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emit a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

/// Re-export matching criterion's helper (benches use `std::hint` directly,
/// but keep the symbol for compatibility).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn harness_runs_and_reports() {
        // Build directly (not via Default) so a `cargo test <filter>` arg
        // can't filter out this in-test benchmark.
        let mut c = Criterion {
            filter: None,
            sample_size: 5,
        };
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Bytes(1024));
        let mut ran = 0u32;
        g.bench_function("noop", |b| {
            ran += 1;
            b.iter(|| std::hint::black_box(1 + 1))
        });
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter_batched(
                || vec![1u64; n as usize],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn humanize() {
        assert_eq!(human_time(2.5e-9), "2.50 ns");
        assert_eq!(human_time(1.5e-3), "1.50 ms");
        assert_eq!(human_bytes(2048.0), "2.00 KiB");
    }
}
