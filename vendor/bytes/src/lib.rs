//! Workspace-local stand-in for the `bytes` crate.
//!
//! The build must be hermetic (no registry access), so this vendored crate
//! provides the small slice of the real `bytes` API the workspace uses: an
//! immutable, cheaply cloneable byte buffer. A `Bytes` is a *view* —
//! `(Arc<Vec<u8>>, offset, len)` — so clones **and sub-slices** share the
//! backing allocation. `From<Vec<u8>>` is zero-copy (the vector is moved
//! into the shared allocation, not re-copied), which is what the
//! message-passing runtime and the zero-copy dump/restore hot path rely on:
//! a chunk sliced out of an application buffer is the same allocation that
//! crosses the wire and lands in storage.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable immutable contiguous byte buffer. Sub-slicing via
/// [`Bytes::slice`] is zero-copy: the sub-buffer keeps the parent's
/// allocation alive and adjusts only its `(offset, len)` view.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// Empty buffer. Does not allocate a unique backing store per call.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Copy `slice` into a fresh buffer. This is the *only* constructor
    /// that memcpys; prefer `Bytes::from(vec)` or [`Bytes::slice`] on the
    /// hot path.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Self::from(slice.to_vec())
    }

    /// Buffer viewing static data. (The vendored version copies; semantics
    /// are identical, only the allocation differs from upstream.)
    pub fn from_static(slice: &'static [u8]) -> Self {
        Self::copy_from_slice(slice)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Zero-copy sub-buffer covering `range` of this buffer: shares the
    /// backing allocation (`slice(..).as_ptr()` lies inside `self`'s
    /// allocation). Note that a slice keeps the *whole* parent allocation
    /// alive; use [`Bytes::copy_from_slice`] to detach.
    ///
    /// # Panics
    /// If the range is out of bounds or decreasing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds for Bytes of len {}",
            self.len
        );
        Self {
            data: Arc::clone(&self.data),
            off: self.off + start,
            len: end - start,
        }
    }

    /// Whether `self` and `other` are views into the same backing
    /// allocation (regardless of offset). Used by the zero-copy tests.
    pub fn shares_allocation_with(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    /// Zero-copy: moves the vector into the shared allocation.
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Self {
            data: Arc::new(v),
            off: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        assert_eq!(Bytes::new(), Bytes::from(Vec::new()));
        assert_eq!(Bytes::copy_from_slice(b"abc"), Bytes::from_static(b"abc"));
        assert_eq!(Bytes::from(vec![1, 2, 3]).len(), 3);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![7u8; 1024]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn from_vec_is_zero_copy() {
        let v = vec![9u8; 64];
        let p = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ptr(), p);
    }

    #[test]
    fn slices_share_storage() {
        let a = Bytes::from(vec![3u8; 256]);
        let s = a.slice(16..32);
        assert_eq!(s.len(), 16);
        assert_eq!(s.as_ptr(), unsafe { a.as_ptr().add(16) });
        assert!(s.shares_allocation_with(&a));
        let nested = s.slice(4..8);
        assert_eq!(nested.as_ptr(), unsafe { a.as_ptr().add(20) });
        assert!(nested.shares_allocation_with(&a));
    }

    #[test]
    fn slice_open_ranges() {
        let b = Bytes::from_static(b"hello world");
        assert_eq!(b.slice(..5), Bytes::from_static(b"hello"));
        assert_eq!(b.slice(6..), Bytes::from_static(b"world"));
        assert_eq!(b.slice(..), b);
        assert!(b.slice(3..3).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from_static(b"abc").slice(1..4);
    }

    #[test]
    fn deref_and_slice() {
        let b = Bytes::from_static(b"hello world");
        assert_eq!(&b[0..5], b"hello");
        assert_eq!(b.slice(6..11), Bytes::from_static(b"world"));
        assert_eq!(b.to_vec(), b"hello world".to_vec());
    }

    #[test]
    fn slice_keeps_parent_allocation_alive() {
        let s = {
            let a = Bytes::from(vec![5u8; 128]);
            a.slice(100..128)
        };
        assert_eq!(s, vec![5u8; 28]);
    }

    #[test]
    fn debug_escapes_non_printable() {
        let b = Bytes::from_static(b"a\n\x01");
        assert_eq!(format!("{b:?}"), "b\"a\\n\\x01\"");
    }
}
