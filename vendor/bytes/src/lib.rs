//! Workspace-local stand-in for the `bytes` crate.
//!
//! The build must be hermetic (no registry access), so this vendored crate
//! provides the small slice of the real `bytes` API the workspace uses: an
//! immutable, cheaply cloneable byte buffer backed by `Arc<[u8]>`. Clones
//! share the allocation, which is what the message-passing runtime relies on
//! when forwarding the same payload to several ranks.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable contiguous byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer. Does not allocate a unique backing store per call.
    pub fn new() -> Self {
        Self {
            data: Arc::from(&[][..]),
        }
    }

    /// Copy `slice` into a fresh buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Self {
            data: Arc::from(slice),
        }
    }

    /// Buffer viewing static data. (The vendored version copies; semantics
    /// are identical, only the allocation differs from upstream.)
    pub fn from_static(slice: &'static [u8]) -> Self {
        Self {
            data: Arc::from(slice),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Sub-buffer covering `range` of this buffer (copies in this stand-in).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Self::copy_from_slice(&self.data[range])
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == other.data[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other.data[..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        assert_eq!(Bytes::new(), Bytes::from(Vec::new()));
        assert_eq!(Bytes::copy_from_slice(b"abc"), Bytes::from_static(b"abc"));
        assert_eq!(Bytes::from(vec![1, 2, 3]).len(), 3);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![7u8; 1024]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn deref_and_slice() {
        let b = Bytes::from_static(b"hello world");
        assert_eq!(&b[0..5], b"hello");
        assert_eq!(b.slice(6..11), Bytes::from_static(b"world"));
        assert_eq!(b.to_vec(), b"hello world".to_vec());
    }

    #[test]
    fn debug_escapes_non_printable() {
        let b = Bytes::from_static(b"a\n\x01");
        assert_eq!(format!("{b:?}"), "b\"a\\n\\x01\"");
    }
}
