//! `replidedup` — umbrella crate for the IPDPS'15 reproduction
//! *"Leveraging Naturally Distributed Data Redundancy to Reduce Collective
//! I/O Replication Overhead"* (Bogdan Nicolae, 2015).
//!
//! Re-exports the workspace crates under one roof; see the subcrates for
//! the substance:
//!
//! * [`core`] — the paper's contribution: the [`core::Replicator`] session
//!   driving `DUMP_OUTPUT`/restore with the `no-dedup` / `local-dedup` /
//!   `coll-dedup` strategies,
//! * [`mpi`] — the in-process message-passing runtime (collectives, RMA),
//! * [`hash`] — SHA-1, fingerprints, fixed and content-defined chunking,
//! * [`storage`] — node-local chunk stores, manifests, failure injection,
//! * [`ec`] — GF(2^8) Reed-Solomon codes behind the redundancy policies,
//! * [`ckpt`] — AC-FTE-style checkpoint/restart runtime,
//! * [`apps`] — HPCCG and CM1-like mini-apps plus synthetic workloads,
//! * [`sim`] — the Shamrock-testbed cost model,
//! * [`bench`] — experiment harness regenerating every table and figure.

pub use replidedup_apps as apps;
pub use replidedup_bench as bench;
pub use replidedup_buf as buf;
pub use replidedup_ckpt as ckpt;
pub use replidedup_core as core;
pub use replidedup_ec as ec;
pub use replidedup_hash as hash;
pub use replidedup_mpi as mpi;
pub use replidedup_sim as sim;
pub use replidedup_storage as storage;
