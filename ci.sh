#!/usr/bin/env bash
# Full local CI gate: format, lints, build, tests. Mirrors
# .github/workflows/ci.yml so "ci.sh passes" == "CI is green".
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "== cargo test --test faults (seeded chaos suite) =="
# The vendored proptest derives every case from a fixed seed, so this
# fault-injection run is reproducible bit-for-bit across CI machines.
cargo test --test faults

echo "== cargo test --workspace =="
cargo test --workspace -q

echo "ci: all green"
