#!/usr/bin/env bash
# Full local CI gate: format, lints, build, tests. Mirrors
# .github/workflows/ci.yml so "ci.sh passes" == "CI is green".
#
#   ./ci.sh         the full gate
#   ./ci.sh bench   the full zero-copy perf harness only (writes
#                   BENCH_<date>.json; the gate itself runs the tiny
#                   bench-smoke tier)
#   ./ci.sh drill   the full recovery-drill matrix only (all five
#                   scenarios x strategies x policies; the gate itself
#                   runs the smoke drill subset inside bench-smoke)
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" == "bench" ]]; then
  echo "== repro --bench (full zero-copy perf harness) =="
  cargo run --release -p replidedup-bench --bin repro -- --bench
  exit 0
fi

if [[ "${1:-}" == "drill" ]]; then
  echo "== repro --drill all (full recovery-drill matrix) =="
  cargo run --release -p replidedup-bench --bin repro -- --drill all
  exit 0
fi

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "== cargo test --test faults (seeded chaos suite) =="
# The vendored proptest derives every case from a fixed seed, so this
# fault-injection run is reproducible bit-for-bit across CI machines.
cargo test --test faults

echo "== cargo test --test repair (self-healing suite) =="
# Scrub + repair + retrying-restore invariants, also fixed-seed: node
# failures, corruption injection, and transient hiccups all heal back to
# K copies with byte-exact restores.
cargo test --test repair

echo "== cargo test --test zerocopy (zero-copy guarantees) =="
# Pointer-equality across wire round-trips, byte-exact dump/restore for
# every strategy x K x copy mode.
cargo test --test zerocopy

echo "== cargo test --test chunking (chunking engine) =="
# Tiling/bounds/determinism/shift-resilience properties for every
# chunker, golden cut-point fixtures (frozen on-disk format), and the
# end-to-end CDC-beats-fixed dedup claim.
cargo test --test chunking

echo "== cargo test --test ec (erasure-coding chaos suite) =="
# Rs(4+2) on 6 nodes: every 2-of-6 node-loss pattern restores byte-exact
# through reconstruction alone, repair rebuilds shards idempotently,
# >m losses degrade to typed errors, and the dedup credit cuts parity.
cargo test --test ec

echo "== cargo test -p replidedup-ec (GF/RS property suite) =="
# GF(2^8) field axioms (proptest), systematic-encode identity, and
# decode round-trips across every loss pattern of at most m shards.
cargo test -p replidedup-ec -q

echo "== cargo test --test healing (continuous-healing suite) =="
# Incremental resumable heal: kill a healer mid-repair and resume from
# its persisted cursor, heal while a concurrent dump runs, crash a dump
# mid-commit and heal the wreckage, and converge from arbitrary
# proptest-generated cursors — all to the same fully healed state.
cargo test --test healing

echo "== cargo test --test sessions (scale-out runtime suite) =="
# Pooled-scheduler equivalence (64 ranks on 4 workers == thread-per-rank,
# bytes and trace spans) and concurrent labeled sessions: a crash in one
# session never poisons another's byte-exact restore.
cargo test --test sessions

echo "== dead-code gate (self-healing + zero-copy modules) =="
# These modules must be fully wired into the public API — a stray
# #[allow(dead_code)] means something regressed to unreachable.
if grep -n '#\[allow(dead_code)\]' \
    crates/storage/src/scrub.rs \
    crates/core/src/repair.rs \
    crates/core/src/retry.rs \
    crates/buf/src/lib.rs \
    crates/buf/src/chunk.rs \
    crates/buf/src/pool.rs \
    crates/core/src/exchange.rs \
    crates/mpi/src/wire.rs \
    crates/bench/src/perf.rs \
    tests/repair.rs \
    tests/zerocopy.rs; then
  echo "ci: FAIL — #[allow(dead_code)] found in gated modules" >&2
  exit 1
fi

echo "== no-deprecated-shims gate =="
# The transitional &[u8] shims (dump_output/restore_output, Comm::send,
# Window::get/local_data) were removed after one release of deprecation;
# a #[deprecated] attribute reappearing in the workspace means a shim
# crept back instead of the API being designed right.
if grep -rn '#\[deprecated' crates/*/src tests; then
  echo "ci: FAIL — deprecated shim reintroduced; extend the API instead" >&2
  exit 1
fi

echo "== panic-free-decode gate (erasure coding) =="
# RS decode/reconstruct run against possibly corrupt or incomplete
# shards; every failure there must surface as a typed EcError, never a
# panic. The gate covers the whole crate's non-test code (everything
# above the `#[cfg(test)]` module) to keep the contract simple.
for f in crates/ec/src/*.rs; do
  if sed '/#\[cfg(test)\]/,$d' "$f" | grep -v '^\s*//' \
      | grep -nE 'panic!|\.unwrap\(\)|\.expect\(|unreachable!'; then
    echo "ci: FAIL — panic path in replidedup-ec non-test code ($f)" >&2
    exit 1
  fi
done

echo "== panic-free gate (heal engine) =="
# The background healer runs unattended against degraded, possibly
# corrupt clusters; every failure must surface as a typed error the
# operator's loop can retry, never a panic that kills the healer.
if sed '/#\[cfg(test)\]/,$d' crates/core/src/heal.rs | grep -v '^\s*//' \
    | grep -nE 'panic!|\.unwrap\(\)|\.expect\(|unreachable!'; then
  echo "ci: FAIL — panic path in heal-engine non-test code" >&2
  exit 1
fi

echo "== stray-copy gate (hot-path modules) =="
# The dump/restore/repair hot paths moved to refcounted Chunk payloads;
# a .to_vec() creeping back in is a silent full-payload copy.
if grep -n '\.to_vec()' \
    crates/core/src/dump.rs \
    crates/core/src/restore.rs \
    crates/core/src/repair.rs \
    crates/core/src/heal.rs; then
  echo "ci: FAIL — .to_vec() payload copy in a zero-copy hot path" >&2
  exit 1
fi

echo "== stride-math gate (variable-length chunk paths) =="
# Chunk geometry is carried as explicit per-chunk lengths end to end; a
# hardcoded `i * chunk_size` (or `* 4096`) creeping back into a hot-path
# module silently re-assumes fixed-stride chunking. The fixed chunker
# itself (crates/hash) is the one legitimate home for stride math.
if grep -nE '\* *(cfg\.|self\.|idx\.)?chunk_size|chunk_size *\*|\* *4096|4096 *\*' \
    crates/core/src/dump.rs \
    crates/core/src/restore.rs \
    crates/core/src/exchange.rs \
    crates/core/src/local.rs \
    crates/core/src/offsets.rs \
    crates/core/src/plan.rs \
    crates/storage/src/manifest.rs \
    crates/storage/src/scrub.rs; then
  echo "ci: FAIL — fixed-stride chunk math outside the fixed chunker" >&2
  exit 1
fi

echo "== thread-spawn gate (all threads go through the scheduler) =="
# Every thread in the tree must be named and accounted for: rank bodies
# run under sched::run_tasks, background work under sched::spawn. A raw
# std::thread::spawn / spawn_scoped / thread::Builder outside sched.rs
# bypasses the worker pool and the crash accounting.
if grep -rnE 'std::thread::spawn|spawn_scoped|thread::Builder' \
    crates tests examples \
    --include='*.rs' \
    | grep -v 'crates/mpi/src/sched.rs'; then
  echo "ci: FAIL — raw thread spawn outside crates/mpi/src/sched.rs" >&2
  exit 1
fi

echo "== ranks-smoke (128-rank dump/restore on the pooled scheduler) =="
# One real scale point per CI run: 128 ranks multiplexed onto the worker
# pool, all four paper strategies, every restore byte-verified and the
# measured replication + parity traffic cross-checked against the sim
# cost model (repro exits non-zero on any out-of-band cell).
cargo run --release -p replidedup-bench --bin repro -- \
  --ranks 128 --out target/ranks-smoke

echo "== bench-smoke (tiny perf harness + schema check) =="
# The harness validates the report against the replidedup-bench/v5 schema
# before writing it; a failure here means the bench or schema regressed.
# The smoke JSON must carry the chunker x strategy x workload matrix,
# the redundancy-policy matrix, the recovery-drill matrix, and the
# pooled-scheduler ranks matrix, and the headline claims must hold: CDC
# beats fixed chunking, Rs(4+2) beats 3x replication at equal tolerance,
# every smoke drill converged with byte-exact restores, and measured
# traffic agrees with the sim cost model (recovery_ms is recorded but
# never gated — drill timings are classified against a noise band, not
# asserted).
cargo run --release -p replidedup-bench --bin repro -- \
  --bench-smoke --bench-out target/bench-smoke.json
test -s target/bench-smoke.json
grep -q '"chunker_matrix"' target/bench-smoke.json
grep -q '"cdc_beats_fixed": true' target/bench-smoke.json
grep -q '"policy_matrix"' target/bench-smoke.json
grep -q '"rs_beats_replication": true' target/bench-smoke.json
grep -q '"dedup_credit_cuts_parity": true' target/bench-smoke.json
grep -q '"drill_matrix"' target/bench-smoke.json
grep -q '"recovery_ms"' target/bench-smoke.json
grep -q '"converged": true' target/bench-smoke.json
if grep -q '"converged": false' target/bench-smoke.json \
    || grep -q '"restore_verified": false' target/bench-smoke.json; then
  echo "ci: FAIL — a smoke recovery drill did not converge or verify" >&2
  exit 1
fi
grep -q '"ranks_matrix"' target/bench-smoke.json
grep -q '"sim_within_band": true' target/bench-smoke.json
if grep -q '"sim_within_band": false' target/bench-smoke.json; then
  echo "ci: FAIL — a ranks-sweep cell fell outside the sim traffic band" >&2
  exit 1
fi

echo "== cargo test --workspace =="
cargo test --workspace -q

echo "ci: all green"
