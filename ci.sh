#!/usr/bin/env bash
# Full local CI gate: format, lints, build, tests. Mirrors
# .github/workflows/ci.yml so "ci.sh passes" == "CI is green".
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "== cargo test --test faults (seeded chaos suite) =="
# The vendored proptest derives every case from a fixed seed, so this
# fault-injection run is reproducible bit-for-bit across CI machines.
cargo test --test faults

echo "== cargo test --test repair (self-healing suite) =="
# Scrub + repair + retrying-restore invariants, also fixed-seed: node
# failures, corruption injection, and transient hiccups all heal back to
# K copies with byte-exact restores.
cargo test --test repair

echo "== dead-code gate (self-healing modules) =="
# The self-healing modules must be fully wired into the public API —
# a stray #[allow(dead_code)] means something regressed to unreachable.
if grep -n '#\[allow(dead_code)\]' \
    crates/storage/src/scrub.rs \
    crates/core/src/repair.rs \
    crates/core/src/retry.rs \
    tests/repair.rs; then
  echo "ci: FAIL — #[allow(dead_code)] found in self-healing modules" >&2
  exit 1
fi

echo "== cargo test --workspace =="
cargo test --workspace -q

echo "ci: all green"
