//! Strategy and replication-factor tuning on a controllable workload.
//!
//! ```text
//! cargo run --release --example strategy_tuning [shared_percent]
//! ```
//!
//! Sweeps the replication factor K = 1..6 for all three strategies over a
//! synthetic workload whose cross-rank redundancy is given on the command
//! line (default 75 % globally shared pages). Prints the traffic and
//! storage costs so the trade-off the paper quantifies — coll-dedup's cost
//! barely grows with K while full replication's explodes — can be explored
//! interactively.

use replidedup::apps::SyntheticWorkload;
use replidedup::core::{Replicator, Strategy, WorldDumpStats};
use replidedup::mpi::WorldConfig;
use replidedup::storage::{Cluster, Placement};

fn main() {
    const RANKS: u32 = 16;
    const PAGES: usize = 128;
    let shared_percent: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("shared_percent must be 0..=100"))
        .unwrap_or(75);
    assert!(shared_percent <= 100, "shared_percent must be 0..=100");
    let shared = PAGES * shared_percent / 100;
    let workload = SyntheticWorkload {
        chunk_size: 4096,
        global_chunks: shared,
        grouped_chunks: 0,
        group_size: 1,
        private_chunks: PAGES - shared,
        local_dup_chunks: 0,
        local_repeat: 0,
        seed: 7,
    };
    let buffers: Vec<Vec<u8>> = (0..RANKS).map(|r| workload.generate(r)).collect();

    println!("{RANKS} ranks × {PAGES} pages, {shared_percent}% globally shared\n");
    println!(
        "{:>2}  {:>12}  {:>15}  {:>15}  {:>15}",
        "K", "strategy", "avg sent/rank", "max recv/rank", "device total"
    );
    for k in 1..=6u32 {
        for strategy in [Strategy::NoDedup, Strategy::LocalDedup, Strategy::CollDedup] {
            let cluster = Cluster::new(Placement::one_per_node(RANKS));
            let repl = Replicator::builder(strategy)
                .cluster(&cluster)
                .replication(k)
                .build()
                .expect("valid config");
            let out = WorldConfig::default()
                .launch(RANKS, |comm| {
                    repl.dump(comm, 1, &buffers[comm.rank() as usize])
                        .expect("dump")
                })
                .expect_all();
            let world = WorldDumpStats::from_ranks(strategy, 4096, out.results);
            let mib = |b: f64| b / (1 << 20) as f64;
            println!(
                "{:>2}  {:>12}  {:>11.2} MiB  {:>11.2} MiB  {:>11.2} MiB",
                k,
                strategy.label(),
                mib(world.avg_sent_bytes()),
                mib(world.max_recv_bytes() as f64),
                mib(cluster.total_device_bytes() as f64),
            );
        }
        println!();
    }
    println!("note how coll-dedup's sent volume stays almost flat in K whenever the");
    println!("shared fraction is high: duplicates already present count as replicas.");
}
