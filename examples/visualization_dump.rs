//! Periodic visualization output from a running simulation.
//!
//! ```text
//! cargo run --release --example visualization_dump
//! ```
//!
//! The paper's second motivating scenario besides checkpointing: "dumping
//! of visualization output during a numerical simulation". A CM1-like
//! hurricane run dumps its full state every 10 time steps with
//! `coll-dedup`. Early on, most subdomains are still ambient atmosphere —
//! massive natural redundancy; as the vortex stirs the domain, redundancy
//! shrinks and the dump grows. The example prints that evolution, which is
//! exactly the dynamic the paper exploits.

use replidedup::apps::{Cm1, Cm1Config};
use replidedup::ckpt::{CheckpointRuntime, TrackedHeap};
use replidedup::core::{DumpConfig, Strategy};
use replidedup::hash::Sha1ChunkHasher;
use replidedup::mpi::WorldConfig;
use replidedup::storage::{Cluster, Placement};

fn main() {
    const RANKS: u32 = 12;
    const STEPS: u64 = 60;
    const DUMP_EVERY: u64 = 10;
    let model = Cm1Config {
        nx: 96,
        ny_per_rank: 16,
        vortex_radius: 8.0,
        ..Default::default()
    };
    let cfg = DumpConfig::paper_defaults(Strategy::CollDedup).with_replication(3);
    let cluster = Cluster::new(Placement::one_per_node(RANKS));

    println!(
        "CM1-like hurricane, {RANKS} ranks, dump every {DUMP_EVERY} steps (coll-dedup, K=3)\n"
    );
    println!(
        "{:>5}  {:>9}  {:>13}  {:>13}  {:>11}  {:>9}",
        "step", "ambient", "dataset", "unique", "replicated", "saved"
    );

    let out = WorldConfig::default()
        .launch(RANKS, |comm| {
            let rank = comm.rank();
            let mut app = Cm1::new(rank, comm.size(), model);
            let mut heap = TrackedHeap::default();
            let regions = app.alloc_regions(&mut heap);
            let mut runtime = CheckpointRuntime::new(&cluster, &Sha1ChunkHasher, cfg);
            let mut log = Vec::new();
            for step in 1..=STEPS {
                app.step(comm);
                if step % DUMP_EVERY == 0 {
                    app.sync_to_heap(&mut heap, &regions);
                    let stats = runtime.checkpoint(comm, &mut heap).expect("dump");
                    // World-average ambient fraction for the report line.
                    let ambient = comm.allreduce(app.ambient_fraction(), |a, b| a + b)
                        / f64::from(comm.size());
                    log.push((step, ambient, stats));
                }
            }
            log
        })
        .expect_all();

    // Aggregate per dump across ranks (rank-major logs, same length).
    let dumps = out.results[0].len();
    for d in 0..dumps {
        let (step, ambient, _) = out.results[0][d];
        let per_rank: Vec<_> = out.results.iter().map(|log| &log[d].2).collect();
        let world = replidedup::core::WorldDumpStats::from_ranks(
            Strategy::CollDedup,
            4096,
            per_rank.into_iter().cloned().collect(),
        );
        let total = world.total_data_bytes() as f64;
        let unique = world.unique_content_bytes() as f64;
        let sent: u64 = world.ranks.iter().map(|r| r.bytes_sent_replication).sum();
        println!(
            "{:>5}  {:>8.1}%  {:>9.2} MiB  {:>9.2} MiB  {:>7.2} MiB  {:>8.1}%",
            step,
            ambient * 100.0,
            total / (1 << 20) as f64,
            unique / (1 << 20) as f64,
            sent as f64 / (1 << 20) as f64,
            100.0 * (1.0 - unique / total),
        );
    }
    println!("\nAs the vortex spreads, ambient (dedupable) area shrinks and dumps grow —");
    println!("coll-dedup keeps replication traffic proportional to *new* information only.");
}
