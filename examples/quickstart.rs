//! Quickstart: dump a buffer with every strategy and restore it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Eight ranks each hold a 1 MiB buffer that mixes globally shared pages
//! (the "naturally distributed redundancy" of the paper's title) with
//! rank-private pages. The example dumps with `no-dedup`, `local-dedup`
//! and `coll-dedup` at replication factor K = 3, prints what each strategy
//! stored and sent, and verifies byte-exact restore after two node
//! failures.

use replidedup::apps::SyntheticWorkload;
use replidedup::core::{Replicator, Strategy};
use replidedup::mpi::WorldConfig;
use replidedup::storage::{Cluster, Placement};

fn main() {
    const RANKS: u32 = 8;
    const K: u32 = 3;
    // 256 pages per rank: 128 shared by everyone, 64 private, 32 distinct
    // pages duplicated twice within the rank.
    let workload = SyntheticWorkload {
        chunk_size: 4096,
        global_chunks: 128,
        grouped_chunks: 0,
        group_size: 1,
        private_chunks: 64,
        local_dup_chunks: 32,
        local_repeat: 2,
        seed: 42,
    };
    let buffers: Vec<Vec<u8>> = (0..RANKS).map(|r| workload.generate(r)).collect();
    println!(
        "{} ranks × {} KiB, replication factor {K}\n",
        RANKS,
        workload.buffer_len() / 1024
    );

    println!(
        "{:>12}  {:>14}  {:>14}  {:>14}",
        "strategy", "unique content", "sent/rank avg", "stored total"
    );
    for strategy in [Strategy::NoDedup, Strategy::LocalDedup, Strategy::CollDedup] {
        let cluster = Cluster::new(Placement::one_per_node(RANKS));
        let repl = Replicator::builder(strategy)
            .cluster(&cluster)
            .replication(K)
            .build()
            .expect("valid config");
        let out = WorldConfig::default()
            .launch(RANKS, |comm| {
                let stats = repl
                    .dump(comm, 1, &buffers[comm.rank() as usize])
                    .expect("dump succeeds");

                // Kill two nodes after the dump, then restore through the
                // surviving replicas.
                comm.barrier();
                if comm.rank() == 0 {
                    cluster.fail_node(2);
                    cluster.fail_node(5);
                    cluster.revive_node(2);
                    cluster.revive_node(5);
                }
                comm.barrier();
                let restored = repl.restore(comm, 1).expect("restore succeeds");
                assert_eq!(
                    restored,
                    buffers[comm.rank() as usize],
                    "byte-exact restore"
                );
                stats
            })
            .expect_all();
        let world = replidedup::core::WorldDumpStats::from_ranks(strategy, 4096, out.results);
        println!(
            "{:>12}  {:>10.1} MiB  {:>10.1} MiB  {:>10.1} MiB",
            strategy.label(),
            world.unique_content_bytes() as f64 / (1 << 20) as f64,
            world.avg_sent_bytes() / (1 << 20) as f64,
            cluster.total_device_bytes() as f64 / (1 << 20) as f64,
        );
    }
    println!("\nAll strategies restored every rank byte-exactly after 2 node failures (K=3).");
}
