//! Checkpoint/restart of a real solver surviving a node failure.
//!
//! ```text
//! cargo run --release --example checkpoint_restart
//! ```
//!
//! The paper's driving scenario: a tightly coupled application (HPCCG)
//! checkpoints at regular intervals through the AC-FTE-style runtime with
//! `coll-dedup` replication. Mid-run a node dies and loses its local
//! storage; the run restarts from the last checkpoint on a replacement
//! node and converges to the same solution, bit for bit.

use replidedup::apps::{Hpccg, HpccgConfig};
use replidedup::ckpt::{CheckpointRuntime, CheckpointSchedule, TrackedHeap};
use replidedup::core::{DumpConfig, Strategy};
use replidedup::hash::Sha1ChunkHasher;
use replidedup::mpi::WorldConfig;
use replidedup::storage::{Cluster, Placement};

fn main() {
    const RANKS: u32 = 8;
    const TOTAL_ITERS: u64 = 40;
    let schedule = CheckpointSchedule::Every(10);
    let cfg = DumpConfig::paper_defaults(Strategy::CollDedup).with_replication(3);
    let problem = HpccgConfig {
        nx: 8,
        ny: 8,
        nz: 8,
        slack_factor: 0.5,
        private_factor: 0.1,
    };
    let cluster = Cluster::new(Placement::one_per_node(RANKS));

    let out = WorldConfig::default()
        .launch(RANKS, |comm| {
            let rank = comm.rank();
            let mut app = Hpccg::new(rank, comm.size(), problem);
            let mut heap = TrackedHeap::default();
            let regions = app.alloc_regions(&mut heap);
            let mut runtime = CheckpointRuntime::new(&cluster, &Sha1ChunkHasher, cfg);

            let mut iter = 0u64;
            let mut failed_already = false;
            let mut residual = f64::NAN;
            while iter < TOTAL_ITERS {
                residual = app.step(comm);
                iter += 1;
                if schedule.due(iter) {
                    app.sync_to_heap(&mut heap, &regions);
                    let stats = runtime.checkpoint(comm, &mut heap).expect("checkpoint");
                    if rank == 0 {
                        println!(
                            "iter {iter:>3}: residual {residual:.3e} — checkpoint #{} \
                         ({} chunks kept, {} discarded as natural replicas)",
                            runtime.latest_dump_id().unwrap(),
                            stats.chunks_kept,
                            stats.chunks_discarded
                        );
                    }
                }
                // Disaster strikes once, at iteration 25: node 3 burns down.
                if iter == 25 && !failed_already {
                    failed_already = true;
                    comm.barrier();
                    if rank == 0 {
                        cluster.fail_node(3);
                        cluster.revive_node(3);
                        println!("iter {iter:>3}: *** node 3 failed, local storage lost ***");
                    }
                    comm.barrier();
                    // Roll every rank back to the last checkpoint (iteration 20).
                    let restored_heap = runtime.restart(comm).expect("restart from checkpoint");
                    app =
                        Hpccg::load_from_heap(&restored_heap, &regions, rank, comm.size(), problem);
                    heap = restored_heap;
                    iter = app.iterations();
                    if rank == 0 {
                        println!(
                            "iter {iter:>3}: restarted from checkpoint #{}",
                            runtime.latest_dump_id().unwrap()
                        );
                    }
                }
            }
            (residual, app.solution_error())
        })
        .expect_all();

    let (residual, error) = out.results[0];
    println!(
        "\nfinished {TOTAL_ITERS} iterations: residual {residual:.3e}, max |x - 1| = {error:.3e}"
    );
    assert!(error < 1e-6, "solver must converge to the exact solution");
    println!("converged — the failure and rollback did not corrupt the solve.");
}
