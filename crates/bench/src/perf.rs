//! Reproducible zero-copy perf harness (`repro --bench`).
//!
//! Runs dump + restore scenarios over the full strategy set × K ∈ {2, 3},
//! each under both copy modes:
//!
//! * [`CopyMode::Staged`] — the pre-change hot path, which stages every
//!   outgoing record into an encode buffer and copies every received
//!   payload out of the window;
//! * [`CopyMode::ZeroCopy`] — the reference-counted [`Chunk`] path with
//!   vectored RMA puts and window stealing.
//!
//! Both modes run in the same process against byte-identical inputs, so
//! the emitted [`BenchReport`] carries its own baseline: the staged rows
//! *are* the pre-change behaviour, and the derived comparisons show the
//! copy reduction and wall-time ratio per (strategy, K) directly.
//!
//! Measured per scenario: best-of-N dump/restore wall time, aggregate
//! throughput, payload bytes memcpy'd (the `alloc_bytes_copied`
//! accounting), RMA replication traffic, device writes, buffer-pool
//! hit/miss counters, and process peak RSS (VmHWM; monotonic across the
//! process, so only growth between scenarios is attributable to one).

use std::time::Instant;

use replidedup_buf::{global_pool, process_bytes_copied, reset_process_bytes_copied, Chunk};
use replidedup_core::{
    ChunkerKind, CopyMode, DumpConfig, GearParams, RabinParams, RedundancyPolicy, Replicator,
    Strategy, WorldDumpStats,
};
use replidedup_hash::{Chunker, Sha1ChunkHasher};
use replidedup_mpi::WorldConfig;
use replidedup_storage::{Cluster, Placement};

use crate::experiments::{RANKS_PER_NODE, STRATEGIES};
use crate::report::{
    BenchComparison, BenchReport, BenchScenario, ChunkerComparison, ChunkerScenario,
    PolicyComparison, PolicyScenario,
};
use crate::workloads::{make_buffers, AppKind};

/// Replication degrees the harness sweeps.
pub const BENCH_KS: [u32; 2] = [2, 3];

/// Wall-time noise band for the `dump_time_no_worse` verdict: the
/// zero-copy dump counts as "no worse" when its best-of-N time is within
/// 5 % of the staged best-of-N.
pub const TIME_NOISE_BAND: f64 = 1.05;

/// Harness knobs. [`BenchOptions::full`] is the committed-report
/// configuration; [`BenchOptions::smoke`] is the CI tier.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// World size (ranks).
    pub ranks: u32,
    /// Timed iterations per scenario; best-of is reported.
    pub iterations: u32,
    /// Workload generating the checkpoint content.
    pub app: AppKind,
    /// Chunk size in bytes.
    pub chunk_size: usize,
}

impl BenchOptions {
    /// The full harness: HPCCG content, 8 ranks, best of 5.
    pub fn full() -> Self {
        Self {
            ranks: 8,
            iterations: 5,
            app: AppKind::hpccg(),
            chunk_size: 4096,
        }
    }

    /// Tiny CI smoke tier: 4 ranks, single iteration.
    pub fn smoke() -> Self {
        Self {
            ranks: 4,
            iterations: 1,
            app: AppKind::hpccg(),
            chunk_size: 4096,
        }
    }
}

/// The chunkers the dedup-quality matrix sweeps, with report labels.
pub fn bench_chunkers() -> [(&'static str, ChunkerKind); 3] {
    [
        ("fixed", ChunkerKind::Fixed),
        ("rabin", ChunkerKind::Rabin(RabinParams::default())),
        ("gear", ChunkerKind::Gear(GearParams::default())),
    ]
}

/// The CDC workloads the dedup-quality matrix sweeps.
pub fn bench_cdc_workloads() -> [AppKind; 2] {
    [AppKind::shifted_dup(), AppKind::insert_heavy()]
}

/// Run the whole scenario matrix and assemble the report.
pub fn run_zerocopy_bench(opts: &BenchOptions) -> BenchReport {
    let buffers = make_buffers(opts.app, opts.ranks);
    let mut scenarios = Vec::new();
    for strategy in STRATEGIES {
        for k in BENCH_KS {
            // Staged first: its numbers are the baseline the zero-copy row
            // of the same (strategy, K) is compared against.
            for mode in [CopyMode::Staged, CopyMode::ZeroCopy] {
                scenarios.push(run_scenario(opts, &buffers, strategy, k, mode));
            }
        }
    }
    let comparisons = derive_comparisons(&scenarios);
    let chunker_matrix = run_chunker_matrix(opts);
    let chunker_comparisons = derive_chunker_comparisons(&chunker_matrix);
    let policy_matrix = run_policy_matrix(opts);
    let policy_comparisons = derive_policy_comparisons(&policy_matrix);
    // Single-iteration runs are the CI smoke tier and get the smoke
    // drill subset; the full harness sweeps every recovery scenario.
    let drill_matrix = crate::drill::run_drill_matrix(opts, opts.iterations > 1);
    // Likewise the pooled-scheduler scale-out sweep: the full harness
    // runs every point through 512 ranks (408 is the paper's scale); the
    // smoke tier cross-checks a single small point against the sim.
    let ranks_points: &[u32] = if opts.iterations > 1 {
        &crate::experiments::RANKS_SWEEP_POINTS
    } else {
        &[16]
    };
    let ranks_matrix = crate::experiments::ranks_sweep(ranks_points);
    BenchReport {
        date: today_utc(),
        ranks: opts.ranks,
        iterations: opts.iterations,
        scenarios,
        comparisons,
        chunker_matrix,
        chunker_comparisons,
        policy_matrix,
        policy_comparisons,
        drill_matrix,
        ranks_matrix,
    }
}

/// Pure chunking throughput (MiB/s) of `kind` over the workload buffers:
/// repeated cut-point scans (no hashing) until at least 16 MiB has been
/// processed, so even sub-MiB smoke workloads get a stable figure.
pub fn chunking_throughput_mib_s(kind: ChunkerKind, chunk_size: usize, buffers: &[Vec<u8>]) -> f64 {
    const TARGET_BYTES: u64 = 16 << 20;
    let chunker = kind.resolve(chunk_size);
    let mut processed = 0u64;
    let mut cuts = 0usize;
    let t0 = Instant::now();
    while processed < TARGET_BYTES {
        for b in buffers {
            cuts += chunker.chunks(b).len();
            processed += b.len() as u64;
        }
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    assert!(cuts > 0, "chunker produced no chunks");
    processed as f64 / (1 << 20) as f64 / secs
}

/// Run the chunker × strategy × workload dedup-quality matrix.
///
/// Per workload and K, the matrix holds a `no-dedup`/`fixed` baseline row
/// plus every dedup strategy × chunker combination. Dedup quality is the
/// storage-level ratio `input_bytes * K / bytes_written_devices`: how many
/// times cheaper the replicated dump was than blind K-way replication.
/// Every row's restore is verified byte-exact.
pub fn run_chunker_matrix(opts: &BenchOptions) -> Vec<ChunkerScenario> {
    let mut rows = Vec::new();
    for app in bench_cdc_workloads() {
        let buffers = make_buffers(app, opts.ranks);
        let throughput: Vec<f64> = bench_chunkers()
            .iter()
            .map(|(_, kind)| chunking_throughput_mib_s(*kind, opts.chunk_size, &buffers))
            .collect();
        for k in BENCH_KS {
            rows.push(run_chunker_scenario(
                opts,
                &buffers,
                app,
                Strategy::NoDedup,
                ("fixed", ChunkerKind::Fixed),
                throughput[0],
                k,
            ));
            for strategy in [Strategy::LocalDedup, Strategy::CollDedup] {
                for (i, (label, kind)) in bench_chunkers().into_iter().enumerate() {
                    rows.push(run_chunker_scenario(
                        opts,
                        &buffers,
                        app,
                        strategy,
                        (label, kind),
                        throughput[i],
                        k,
                    ));
                }
            }
        }
    }
    rows
}

#[allow(clippy::too_many_arguments)]
fn run_chunker_scenario(
    opts: &BenchOptions,
    buffers: &[Vec<u8>],
    app: AppKind,
    strategy: Strategy,
    (chunker_label, kind): (&str, ChunkerKind),
    chunking_mib_s: f64,
    k: u32,
) -> ChunkerScenario {
    let n = buffers.len() as u32;
    let input_bytes: u64 = buffers.iter().map(|b| b.len() as u64).sum();
    let cfg = DumpConfig::paper_defaults(strategy)
        .with_replication(k)
        .with_chunk_size(opts.chunk_size)
        .with_chunker(kind);

    let mut best_dump = f64::INFINITY;
    let mut written = 0u64;
    for _ in 0..opts.iterations.max(1) {
        let cluster = Cluster::new(Placement::pack(n, RANKS_PER_NODE));
        let repl = Replicator::builder(strategy)
            .with_config(cfg)
            .cluster(&cluster)
            .hasher(&Sha1ChunkHasher)
            .build()
            .expect("bench configs are valid");
        let t0 = Instant::now();
        WorldConfig::default()
            .launch(n, |comm| {
                repl.dump(comm, 1, &buffers[comm.rank() as usize])
                    .expect("bench dump succeeds")
            })
            .expect_all();
        best_dump = best_dump.min(t0.elapsed().as_secs_f64());
        written = cluster.total_device_bytes();
        let out = WorldConfig::default()
            .launch(n, |comm| {
                repl.restore(comm, 1).expect("bench restore succeeds")
            })
            .expect_all();
        for (rank, restored) in out.results.iter().enumerate() {
            assert!(
                *restored == buffers[rank],
                "{} {} K={k} {}: rank {rank} restored wrong bytes",
                app.label(),
                strategy.label(),
                chunker_label
            );
        }
    }

    ChunkerScenario {
        workload: app.label().to_string(),
        strategy: strategy.label().to_string(),
        chunker: chunker_label.to_string(),
        k,
        ranks: n,
        input_bytes,
        bytes_written_devices: written,
        dedup_ratio: input_bytes as f64 * f64::from(k) / written.max(1) as f64,
        chunking_mib_s,
        dump_seconds: best_dump,
    }
}

/// The redundancy policies the matrix sweeps, with report labels.
/// `Replicate(3)` and `Rs(4+2)` both tolerate two losses — that pair is
/// the like-for-like storage comparison; `Auto` codes page-sized chunks
/// and keeps sub-KiB ones replicated.
pub fn bench_policies() -> [RedundancyPolicy; 4] {
    [
        RedundancyPolicy::Replicate(2),
        RedundancyPolicy::Replicate(3),
        RedundancyPolicy::Rs { k: 4, m: 2 },
        RedundancyPolicy::Auto {
            k: 4,
            m: 2,
            replicate_below: 1 << 10,
        },
    ]
}

/// The workloads the redundancy-policy matrix sweeps: both carry real
/// cross-rank redundancy under fixed page chunking, so the dedup credit
/// has natural copies to find.
pub fn bench_policy_workloads() -> [AppKind; 2] {
    [AppKind::hpccg(), AppKind::insert_heavy()]
}

/// Run the redundancy-policy × strategy × workload matrix.
///
/// One rank per node (stripes need `k + m = 6` distinct devices, so the
/// world is widened to at least 6 ranks), `no-dedup` and `coll-dedup`
/// per policy. Every row wipes `loss_tolerance` nodes after the dump and
/// verifies the restore byte-exact — coded rows thereby prove the
/// Reed-Solomon reconstruction path, not just the happy path.
pub fn run_policy_matrix(opts: &BenchOptions) -> Vec<PolicyScenario> {
    let ranks = opts.ranks.max(6);
    let mut rows = Vec::new();
    for app in bench_policy_workloads() {
        let buffers = make_buffers(app, ranks);
        for policy in bench_policies() {
            for strategy in [Strategy::NoDedup, Strategy::CollDedup] {
                rows.push(run_policy_scenario(opts, &buffers, app, strategy, policy));
            }
        }
    }
    rows
}

fn run_policy_scenario(
    opts: &BenchOptions,
    buffers: &[Vec<u8>],
    app: AppKind,
    strategy: Strategy,
    policy: RedundancyPolicy,
) -> PolicyScenario {
    let n = buffers.len() as u32;
    let input_bytes: u64 = buffers.iter().map(|b| b.len() as u64).sum();
    let cfg = DumpConfig::paper_defaults(strategy)
        .with_replication(3)
        .with_chunk_size(opts.chunk_size)
        .with_policy(policy);
    let tolerance = policy.fault_tolerance();

    let mut best_dump = f64::INFINITY;
    let mut written = 0u64;
    let mut parity = 0u64;
    let mut coded = 0u64;
    let mut verified = true;
    for _ in 0..opts.iterations.max(1) {
        let cluster = Cluster::new(Placement::one_per_node(n));
        let repl = Replicator::builder(strategy)
            .with_config(cfg)
            .cluster(&cluster)
            .hasher(&Sha1ChunkHasher)
            .build()
            .expect("bench configs are valid");
        let t0 = Instant::now();
        let out = WorldConfig::default()
            .launch(n, |comm| {
                repl.dump(comm, 1, &buffers[comm.rank() as usize])
                    .expect("bench dump succeeds")
            })
            .expect_all();
        best_dump = best_dump.min(t0.elapsed().as_secs_f64());
        coded = out.results.iter().map(|s| s.chunks_coded).sum();
        written = cluster.total_device_bytes();
        parity = cluster.total_parity_bytes();

        // Wipe exactly as many nodes as the policy claims to tolerate,
        // then demand a byte-exact restore from what survives.
        for node in 0..tolerance {
            cluster.fail_node(node);
            cluster.revive_node(node);
        }
        let out = WorldConfig::default()
            .launch(n, |comm| repl.restore(comm, 1).map(Vec::from))
            .expect_all();
        for (rank, restored) in out.results.iter().enumerate() {
            let ok = restored.as_ref().is_ok_and(|b| b == &buffers[rank]);
            assert!(
                ok,
                "{} {} {}: rank {rank} failed to restore after {tolerance} losses",
                app.label(),
                strategy.label(),
                policy.label()
            );
            verified &= ok;
        }
    }

    PolicyScenario {
        workload: app.label().to_string(),
        strategy: strategy.label().to_string(),
        policy: policy.label(),
        loss_tolerance: tolerance,
        ranks: n,
        input_bytes,
        bytes_written_devices: written,
        parity_bytes: parity,
        chunks_coded: coded,
        dump_seconds: best_dump,
        restore_after_loss_verified: verified,
    }
}

/// Pair the `Rs(4+2)` coll-dedup row of each workload, per strategy,
/// with the matched-tolerance `Replicate(3)` row (both survive two node
/// losses) and with its own no-dedup twin: the storage headline (EC
/// beats replication at equal tolerance) and the dedup-credit headline
/// (natural copies cut parity). `Replicate(2)` is deliberately not a
/// "beats" cell — it tolerates half the losses, so the comparison would
/// be apples to oranges.
fn derive_policy_comparisons(rows: &[PolicyScenario]) -> Vec<PolicyComparison> {
    let mut out = Vec::new();
    let find = |workload: &str, strategy: &str, policy: &str| {
        rows.iter()
            .find(|r| r.workload == workload && r.strategy == strategy && r.policy == policy)
    };
    for rs in rows
        .iter()
        .filter(|r| r.strategy == "coll-dedup" && r.policy == "rs4+2")
    {
        let Some(nd) = find(&rs.workload, "no-dedup", "rs4+2") else {
            continue;
        };
        let Some(rep) = find(&rs.workload, "coll-dedup", "rep3") else {
            continue;
        };
        out.push(PolicyComparison {
            workload: rs.workload.clone(),
            replicate_k: 3,
            replicate_bytes_devices: rep.bytes_written_devices,
            rs_bytes_devices: rs.bytes_written_devices,
            rs_beats_replication: rs.bytes_written_devices < rep.bytes_written_devices,
            no_dedup_parity_bytes: nd.parity_bytes,
            coll_dedup_parity_bytes: rs.parity_bytes,
            dedup_credit_cuts_parity: rs.parity_bytes < nd.parity_bytes,
        });
    }
    out
}

/// Pair each coll-dedup CDC row with the coll-dedup fixed row of the same
/// (workload, K): the dedup-quality headline of the matrix.
fn derive_chunker_comparisons(rows: &[ChunkerScenario]) -> Vec<ChunkerComparison> {
    let mut out = Vec::new();
    for cdc in rows
        .iter()
        .filter(|r| r.strategy == "coll-dedup" && r.chunker != "fixed")
    {
        let Some(fixed) = rows.iter().find(|r| {
            r.strategy == "coll-dedup"
                && r.chunker == "fixed"
                && r.workload == cdc.workload
                && r.k == cdc.k
        }) else {
            continue;
        };
        out.push(ChunkerComparison {
            workload: cdc.workload.clone(),
            k: cdc.k,
            chunker: cdc.chunker.clone(),
            fixed_dedup_ratio: fixed.dedup_ratio,
            cdc_dedup_ratio: cdc.dedup_ratio,
            cdc_beats_fixed: cdc.dedup_ratio > fixed.dedup_ratio,
        });
    }
    out
}

/// Run one (strategy, K, copy-mode) scenario: `iterations` dump+restore
/// rounds against a fresh cluster each, best wall times reported, metric
/// counters read from the final round (they are deterministic across
/// rounds). Every restore is verified byte-exact against the input.
fn run_scenario(
    opts: &BenchOptions,
    buffers: &[Vec<u8>],
    strategy: Strategy,
    k: u32,
    mode: CopyMode,
) -> BenchScenario {
    let n = buffers.len() as u32;
    // Freeze each rank's buffer into a refcounted Chunk up front; handing
    // a clone to every dump is the application-owned-buffer pattern and
    // keeps the per-iteration working set identical across modes.
    let chunks: Vec<Chunk> = buffers.iter().map(|b| Chunk::from(b.clone())).collect();
    let input_bytes: u64 = buffers.iter().map(|b| b.len() as u64).sum();
    let cfg = DumpConfig::paper_defaults(strategy)
        .with_replication(k)
        .with_chunk_size(opts.chunk_size)
        .with_copy_mode(mode);

    let mut best_dump = f64::INFINITY;
    let mut best_restore = f64::INFINITY;
    let mut stats = WorldDumpStats::default();
    let mut restore_copied = 0u64;
    let mut written = 0u64;
    let mut pool = replidedup_buf::PoolStats::default();
    for _ in 0..opts.iterations.max(1) {
        let cluster = Cluster::new(Placement::pack(n, RANKS_PER_NODE));
        let repl = Replicator::builder(strategy)
            .with_config(cfg)
            .cluster(&cluster)
            .hasher(&Sha1ChunkHasher)
            .build()
            .expect("bench configs are valid");

        global_pool().reset_stats();
        let t0 = Instant::now();
        let out = WorldConfig::default()
            .launch(n, |comm| {
                repl.dump(comm, 1, chunks[comm.rank() as usize].clone())
                    .expect("bench dump succeeds")
            })
            .expect_all();
        best_dump = best_dump.min(t0.elapsed().as_secs_f64());
        stats = WorldDumpStats::from_ranks(strategy, opts.chunk_size, out.results);
        written = cluster.total_device_bytes();

        reset_process_bytes_copied();
        let t1 = Instant::now();
        let out = WorldConfig::default()
            .launch(n, |comm| {
                repl.restore(comm, 1).expect("bench restore succeeds")
            })
            .expect_all();
        best_restore = best_restore.min(t1.elapsed().as_secs_f64());
        restore_copied = process_bytes_copied();
        pool = global_pool().stats();
        for (rank, restored) in out.results.iter().enumerate() {
            assert!(
                *restored == buffers[rank],
                "{} K={k} {}: rank {rank} restored wrong bytes",
                strategy.label(),
                mode.label()
            );
        }
    }

    BenchScenario {
        app: opts.app.label().to_string(),
        strategy: strategy.label().to_string(),
        k,
        copy_mode: mode.label().to_string(),
        ranks: n,
        chunk_size: opts.chunk_size as u64,
        input_bytes,
        dump_seconds: best_dump,
        restore_seconds: best_restore,
        dump_throughput_mib_s: input_bytes as f64 / (1 << 20) as f64 / best_dump.max(1e-9),
        dump_bytes_copied: stats.total_copied_bytes(),
        restore_bytes_copied: restore_copied,
        bytes_sent_replication: stats.ranks.iter().map(|r| r.bytes_sent_replication).sum(),
        bytes_received_replication: stats
            .ranks
            .iter()
            .map(|r| r.bytes_received_replication)
            .sum(),
        bytes_written_devices: written,
        pool_hits: pool.hits,
        pool_misses: pool.misses,
        pool_bytes_reused: pool.bytes_reused,
        peak_rss_kib: peak_rss_kib(),
    }
}

/// Pair each zero-copy scenario with its staged twin (same strategy, K).
fn derive_comparisons(scenarios: &[BenchScenario]) -> Vec<BenchComparison> {
    let mut out = Vec::new();
    for zc in scenarios.iter().filter(|s| s.copy_mode == "zero-copy") {
        let Some(staged) = scenarios
            .iter()
            .find(|s| s.copy_mode == "staged" && s.strategy == zc.strategy && s.k == zc.k)
        else {
            continue;
        };
        let reduction = if staged.dump_bytes_copied > 0 {
            100.0
                * (staged.dump_bytes_copied - zc.dump_bytes_copied.min(staged.dump_bytes_copied))
                    as f64
                / staged.dump_bytes_copied as f64
        } else {
            0.0
        };
        out.push(BenchComparison {
            strategy: zc.strategy.clone(),
            k: zc.k,
            staged_bytes_copied: staged.dump_bytes_copied,
            zero_copy_bytes_copied: zc.dump_bytes_copied,
            copy_reduction_percent: reduction,
            staged_dump_seconds: staged.dump_seconds,
            zero_copy_dump_seconds: zc.dump_seconds,
            dump_time_no_worse: zc.dump_seconds <= staged.dump_seconds * TIME_NOISE_BAND,
        });
    }
    out
}

/// Process peak resident-set size in KiB (`VmHWM` from
/// `/proc/self/status`); 0 where the proc filesystem is unavailable.
pub fn peak_rss_kib() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Today's UTC date as `YYYY-MM-DD` (names the `BENCH_<date>.json` file).
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Proleptic-Gregorian date from days since the Unix epoch (Hinnant's
/// `civil_from_days` construction).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::validate_bench_json;
    use replidedup_apps::SyntheticWorkload;

    #[test]
    fn civil_date_conversion_matches_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year start
        assert_eq!(civil_from_days(19_782), (2024, 2, 29)); // leap day
        assert_eq!(civil_from_days(20_671), (2026, 8, 6));
        let today = today_utc();
        assert_eq!(today.len(), 10);
        assert_eq!(&today[4..5], "-");
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        // The harness runs on Linux; a running process always has a high
        // water mark.
        assert!(peak_rss_kib() > 0);
    }

    #[test]
    fn tiny_bench_produces_a_valid_report_with_copy_reduction() {
        // A minimal synthetic matrix: small enough for a unit test, still
        // exercising the full measurement loop including restore verify.
        let opts = BenchOptions {
            ranks: 4,
            iterations: 1,
            app: AppKind::Synthetic(SyntheticWorkload {
                chunk_size: 256,
                ..Default::default()
            }),
            chunk_size: 256,
        };
        let report = run_zerocopy_bench(&opts);
        assert_eq!(report.scenarios.len(), 12); // 3 strategies × K∈{2,3} × 2 modes
        assert_eq!(report.comparisons.len(), 6);
        // 2 workloads × K∈{2,3} × (no-dedup baseline + 2 strategies × 3 chunkers)
        assert_eq!(report.chunker_matrix.len(), 28);
        // 2 workloads × K∈{2,3} × 2 CDC chunkers
        assert_eq!(report.chunker_comparisons.len(), 8);
        // 2 workloads × 4 policies × {no-dedup, coll-dedup}
        assert_eq!(report.policy_matrix.len(), 16);
        assert_eq!(report.policy_comparisons.len(), 2);
        // Smoke drill subset: {node-loss, healer-crash} × {rep3, rs4+2}
        assert_eq!(report.drill_matrix.len(), 4);
        // Smoke ranks sweep: 1 point × 4 strategies
        assert_eq!(report.ranks_matrix.len(), 4);
        validate_bench_json(&report.to_json()).expect("emitted JSON validates");
        for c in &report.comparisons {
            assert!(
                c.zero_copy_bytes_copied < c.staged_bytes_copied,
                "{} K={}: zero-copy must beat staged ({} vs {})",
                c.strategy,
                c.k,
                c.zero_copy_bytes_copied,
                c.staged_bytes_copied
            );
        }
        // The headline dedup-quality claim: on the shifted-duplicate
        // workload, every CDC chunker strictly beats fixed chunking.
        for c in report
            .chunker_comparisons
            .iter()
            .filter(|c| c.workload == "shifted-dup")
        {
            assert!(
                c.cdc_beats_fixed,
                "{} K={}: CDC ratio {:.2} must beat fixed {:.2}",
                c.chunker, c.k, c.cdc_dedup_ratio, c.fixed_dedup_ratio
            );
        }
        // The redundancy-policy headlines: every row survived its claimed
        // loss tolerance, Rs(4+2) stores less than 3× replication at the
        // same tolerance, and the dedup credit cuts parity.
        for r in &report.policy_matrix {
            assert!(
                r.restore_after_loss_verified,
                "{} {} {}: restore after loss must verify",
                r.workload, r.strategy, r.policy
            );
        }
        for c in &report.policy_comparisons {
            assert!(
                c.rs_beats_replication,
                "{}: rs {} must beat rep3 {}",
                c.workload, c.rs_bytes_devices, c.replicate_bytes_devices
            );
            assert!(
                c.dedup_credit_cuts_parity,
                "{}: coll parity {} must be under no-dedup parity {}",
                c.workload, c.coll_dedup_parity_bytes, c.no_dedup_parity_bytes
            );
        }
        // The recovery-drill headlines: every scripted failure healed to
        // convergence and both generations restored byte-exactly.
        for d in &report.drill_matrix {
            assert!(
                d.converged,
                "{} {} {}: drill must converge",
                d.scenario, d.strategy, d.policy
            );
            assert!(
                d.restore_verified,
                "{} {} {}: restores must verify",
                d.scenario, d.strategy, d.policy
            );
            assert!(d.heal_steps > 0, "{}: healer must take steps", d.scenario);
            assert!(d.recovery_ms.is_finite() && d.recovery_ms >= 0.0);
        }
        // The scale-out headline: every ranks-sweep row moved real wire
        // and parity bytes and agrees with the sim cost model.
        for r in &report.ranks_matrix {
            assert!(r.measured_wire_bytes > 0, "{}: no wire traffic", r.strategy);
            assert!(
                r.sim_within_band,
                "{} @ {} ranks: deviation {:.1}% outside sim band",
                r.strategy, r.ranks, r.deviation_pct
            );
        }
    }

    #[test]
    fn chunking_throughput_is_finite_and_positive() {
        let buffers = make_buffers(AppKind::shifted_dup(), 2);
        for (label, kind) in bench_chunkers() {
            let mib_s = chunking_throughput_mib_s(kind, 4096, &buffers);
            assert!(
                mib_s.is_finite() && mib_s > 0.0,
                "{label}: bad throughput {mib_s}"
            );
        }
    }
}
