//! Benchmark and reproduction harness for `replidedup`.
//!
//! * [`workloads`] — checkpoint-content generators (real mini-app runs),
//! * [`experiments`] — one function per table/figure of the paper,
//! * [`report`] — text-table and CSV rendering.
//!
//! The `repro` binary regenerates everything:
//! `cargo run -p replidedup-bench --release --bin repro -- all`.

pub mod experiments;
pub mod report;
pub mod workloads;
