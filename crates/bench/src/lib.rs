//! Benchmark and reproduction harness for `replidedup`.
//!
//! * [`workloads`] — checkpoint-content generators (real mini-app runs),
//! * [`experiments`] — one function per table/figure of the paper,
//! * [`perf`] — the zero-copy perf harness behind `repro --bench`,
//! * [`drill`] — scripted recovery drills (fail → heal under live
//!   traffic → verify) behind `repro --drill`,
//! * [`report`] — text-table, CSV, and `BENCH_*.json` rendering.
//!
//! The `repro` binary regenerates everything:
//! `cargo run -p replidedup-bench --release --bin repro -- all`.

pub mod drill;
pub mod experiments;
pub mod perf;
pub mod report;
pub mod workloads;
