//! Regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p replidedup-bench --release --bin repro -- [exp...] [--scale S] [--out DIR]
//!
//!   exp         one or more of: fig2 fig3a fig3b fig3c tab1 fig4 fig5 all
//!               (default: all)
//!   --scale     process-count scale factor (1.0 = paper's 408-rank worlds;
//!               default 1.0; use e.g. 0.25 for a quick pass)
//!   --out       CSV output directory (default: results)
//!   --trace-out write a phase trace of one coll-dedup dump (Algorithm 1
//!               phases, world min/median/max per phase) as JSON to PATH;
//!               PATH ending in .csv switches to CSV
//!   --fault-plan SEED[:ITEM[;ITEM]...] run the fault-injection demo: a
//!               coll-dedup dump under the given deterministic fault plan
//!               (ITEM = crash:RANK@TRIGGER | delay:RANK:MS@TRIGGER |
//!               transient:RANK:OPS@TRIGGER, TRIGGER = start:PHASE |
//!               end:PHASE | msg:N), then a fresh-world restore showing
//!               which data survived. A bare SEED derives a two-crash
//!               schedule from the seed.
//!   --fail-node N  self-healing demo: after a clean coll-dedup dump,
//!               fail node N and replace it with an empty device
//!               (repeatable; combine with --repair / --scrub)
//!   --scrub     run the collective integrity scrub and print its report
//!   --repair    run the collective repair, then verify that every chunk
//!               referenced by the dump is back to K copies and the
//!               restore is byte-exact
//!   --bench     run the zero-copy perf harness (strategies × K ∈ {2,3} ×
//!               {staged, zero-copy}) and write BENCH_<date>.json; includes
//!               the full pooled-scheduler ranks sweep through 512
//!   --bench-smoke  tiny CI tier of --bench (4 ranks, 1 iteration)
//!   --bench-out PATH  override the bench report path
//!   --ranks N   pooled-scheduler scale-out sweep: run every sweep point up
//!               to N ranks (plus N itself) × the four paper strategies,
//!               cross-check measured replication + parity traffic against
//!               the sim cost model, print the table and write ranks.csv;
//!               exits non-zero if any point falls outside the sim band
//!   --drill SCENARIO  scripted recovery drill: inject the scenario's
//!               damage, heal in the background while a foreground dump
//!               runs, verify both generations byte-exactly (repeatable;
//!               SCENARIO = node-loss | healer-crash | dump-crash |
//!               corruption | gc-pressure | all; exits non-zero if any
//!               drill fails to converge or verify)
//! ```
//!
//! Absolute times come from the Shamrock cost model fed with measured
//! traffic; see DESIGN.md §2 and EXPERIMENTS.md for the calibration.

use std::path::PathBuf;
use std::time::Instant;

use replidedup_bench::experiments as exp;
use replidedup_bench::report;
use replidedup_bench::workloads::AppKind;

struct Args {
    exps: Vec<String>,
    scale: f64,
    out: PathBuf,
    trace_out: Option<PathBuf>,
    fault_plan: Option<String>,
    fail_nodes: Vec<u32>,
    repair: bool,
    scrub: bool,
    bench: bool,
    bench_smoke: bool,
    bench_out: Option<PathBuf>,
    drills: Vec<String>,
    ranks: Option<u32>,
}

fn parse_args() -> Args {
    let mut exps = Vec::new();
    let mut scale = 1.0f64;
    let mut out = PathBuf::from("results");
    let mut trace_out = None;
    let mut fault_plan = None;
    let mut fail_nodes = Vec::new();
    let mut repair = false;
    let mut scrub = false;
    let mut bench = false;
    let mut bench_smoke = false;
    let mut bench_out = None;
    let mut drills = Vec::new();
    let mut ranks = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a positive number"));
            }
            "--out" => {
                out = PathBuf::from(it.next().unwrap_or_else(|| die("--out needs a directory")));
            }
            "--trace-out" => {
                trace_out = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| die("--trace-out needs a path")),
                ));
            }
            "--fault-plan" => {
                fault_plan = Some(
                    it.next()
                        .unwrap_or_else(|| die("--fault-plan needs SEED[:SPEC]")),
                );
            }
            "--fail-node" => {
                fail_nodes.push(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--fail-node needs a node id")),
                );
            }
            "--repair" => repair = true,
            "--scrub" => scrub = true,
            "--bench" => bench = true,
            "--bench-smoke" => bench_smoke = true,
            "--bench-out" => {
                bench_out = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| die("--bench-out needs a path")),
                ));
            }
            "--drill" => {
                drills.push(
                    it.next()
                        .unwrap_or_else(|| die("--drill needs a scenario name or \"all\"")),
                );
            }
            "--ranks" => {
                ranks = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n >= 2)
                        .unwrap_or_else(|| die("--ranks needs a world size >= 2")),
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [fig2|fig3a|fig3b|fig3c|tab1|fig4|fig5|all]... \
                     [--scale S] [--out DIR] [--trace-out PATH] [--fault-plan SEED[:SPEC]] \
                     [--fail-node N]... [--scrub] [--repair] \
                     [--bench | --bench-smoke] [--bench-out PATH] [--drill SCENARIO]... \
                     [--ranks N]"
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') => exps.push(other.to_string()),
            other => die(&format!("unknown flag {other}")),
        }
    }
    let healing = !fail_nodes.is_empty() || repair || scrub;
    if exps.is_empty()
        && trace_out.is_none()
        && fault_plan.is_none()
        && !healing
        && !bench
        && !bench_smoke
        && drills.is_empty()
        && ranks.is_none()
    {
        exps.push("all".to_string());
    }
    if scale <= 0.0 {
        die("--scale must be positive");
    }
    Args {
        exps,
        scale,
        out,
        trace_out,
        fault_plan,
        fail_nodes,
        repair,
        scrub,
        bench,
        bench_smoke,
        bench_out,
        drills,
        ranks,
    }
}

/// Run the zero-copy perf harness and write (validated) `BENCH_<date>.json`.
fn run_bench(smoke: bool, out_override: Option<&PathBuf>) {
    use replidedup_bench::perf::{run_zerocopy_bench, BenchOptions};
    use replidedup_bench::report::validate_bench_json;

    let opts = if smoke {
        BenchOptions::smoke()
    } else {
        BenchOptions::full()
    };
    println!(
        "== zero-copy perf harness: {} ranks, best of {} ==",
        opts.ranks, opts.iterations
    );
    let report = run_zerocopy_bench(&opts);
    let mut t = report::Table::new(&[
        "strategy",
        "K",
        "mode",
        "dump (s)",
        "restore (s)",
        "MiB/s",
        "bytes copied",
        "rma put",
    ]);
    for s in &report.scenarios {
        t.row(vec![
            s.strategy.clone(),
            s.k.to_string(),
            s.copy_mode.clone(),
            format!("{:.4}", s.dump_seconds),
            format!("{:.4}", s.restore_seconds),
            format!("{:.0}", s.dump_throughput_mib_s),
            report::human_bytes(s.dump_bytes_copied as f64),
            report::human_bytes(s.bytes_sent_replication as f64),
        ]);
    }
    println!("{}", t.render());
    for c in &report.comparisons {
        println!(
            "{} K={}: copies {} -> {} ({:.1} % less), dump {:.4}s -> {:.4}s ({})",
            c.strategy,
            c.k,
            report::human_bytes(c.staged_bytes_copied as f64),
            report::human_bytes(c.zero_copy_bytes_copied as f64),
            c.copy_reduction_percent,
            c.staged_dump_seconds,
            c.zero_copy_dump_seconds,
            if c.dump_time_no_worse {
                "no worse"
            } else {
                "SLOWER"
            },
        );
    }
    println!("\n== chunker x strategy x workload dedup matrix ==");
    let mut t = report::Table::new(&[
        "workload",
        "strategy",
        "chunker",
        "K",
        "dedup ratio",
        "chunk MiB/s",
        "dump (s)",
        "written",
    ]);
    for s in &report.chunker_matrix {
        t.row(vec![
            s.workload.clone(),
            s.strategy.clone(),
            s.chunker.clone(),
            s.k.to_string(),
            format!("{:.2}", s.dedup_ratio),
            format!("{:.0}", s.chunking_mib_s),
            format!("{:.4}", s.dump_seconds),
            report::human_bytes(s.bytes_written_devices as f64),
        ]);
    }
    println!("{}", t.render());
    for c in &report.chunker_comparisons {
        println!(
            "{} K={} {}: dedup ratio {:.2} vs fixed {:.2} ({})",
            c.workload,
            c.k,
            c.chunker,
            c.cdc_dedup_ratio,
            c.fixed_dedup_ratio,
            if c.cdc_beats_fixed {
                "CDC wins"
            } else {
                "CDC DOES NOT WIN"
            },
        );
    }
    println!("\n== redundancy policy x strategy x workload matrix ==");
    let mut t = report::Table::new(&[
        "workload",
        "strategy",
        "policy",
        "tolerates",
        "written",
        "parity",
        "coded chunks",
        "dump (s)",
        "restore after loss",
    ]);
    for s in &report.policy_matrix {
        t.row(vec![
            s.workload.clone(),
            s.strategy.clone(),
            s.policy.clone(),
            format!("{} losses", s.loss_tolerance),
            report::human_bytes(s.bytes_written_devices as f64),
            report::human_bytes(s.parity_bytes as f64),
            s.chunks_coded.to_string(),
            format!("{:.4}", s.dump_seconds),
            if s.restore_after_loss_verified {
                "byte-exact".into()
            } else {
                "FAILED".into()
            },
        ]);
    }
    println!("{}", t.render());
    for c in &report.policy_comparisons {
        println!(
            "{}: rs4+2 {} vs rep{} {} ({}); parity {} coll-dedup vs {} no-dedup ({})",
            c.workload,
            report::human_bytes(c.rs_bytes_devices as f64),
            c.replicate_k,
            report::human_bytes(c.replicate_bytes_devices as f64),
            if c.rs_beats_replication {
                "EC wins"
            } else {
                "EC DOES NOT WIN"
            },
            report::human_bytes(c.coll_dedup_parity_bytes as f64),
            report::human_bytes(c.no_dedup_parity_bytes as f64),
            if c.dedup_credit_cuts_parity {
                "credit cuts parity"
            } else {
                "NO CREDIT"
            },
        );
    }
    println!("\n== recovery drills: fail -> heal under live dump -> verify ==");
    print_drill_table(&report.drill_matrix);
    println!("\n== pooled-scheduler ranks sweep: measured vs sim-predicted traffic ==");
    println!("{}", report::ranks_table(&report.ranks_matrix).render());
    let json = report.to_json();
    validate_bench_json(&json).unwrap_or_else(|e| die(&format!("emitted report invalid: {e}")));
    let path = out_override
        .cloned()
        .unwrap_or_else(|| PathBuf::from(format!("BENCH_{}.json", report.date)));
    std::fs::write(&path, &json).unwrap_or_else(|e| die(&format!("write {}: {e}", path.display())));
    println!("schema OK -> {}", path.display());
}

/// Render the drill rows as the shared recovery table.
fn print_drill_table(rows: &[report::DrillScenario]) {
    let mut t = report::Table::new(&[
        "scenario",
        "strategy",
        "policy",
        "recovery (ms)",
        "healed",
        "steps",
        "fg slowdown",
        "converged",
        "restore",
    ]);
    for d in rows {
        t.row(vec![
            d.scenario.clone(),
            d.strategy.clone(),
            d.policy.clone(),
            format!("{:.1}", d.recovery_ms),
            report::human_bytes(d.heal_bytes as f64),
            d.heal_steps.to_string(),
            format!("{:.2}x", d.foreground_slowdown),
            if d.converged { "yes" } else { "NO" }.into(),
            if d.restore_verified {
                "byte-exact"
            } else {
                "FAILED"
            }
            .into(),
        ]);
    }
    println!("{}", t.render());
}

/// Run scripted recovery drills (see `drill::DRILL_SCENARIOS`), print
/// the recovery table, and exit non-zero if any drill failed to converge
/// or verify. `--drill all` sweeps the full matrix.
fn run_drills(specs: &[String]) {
    use replidedup_bench::drill::{run_drill, run_drill_matrix, DRILL_NOISE_BAND, DRILL_SCENARIOS};
    use replidedup_bench::perf::BenchOptions;

    let opts = BenchOptions::full();
    println!(
        "== recovery drills: fail -> heal under live dump -> verify ({} ranks) ==",
        opts.ranks.max(6)
    );
    let rows = if specs.iter().any(|s| s == "all") {
        run_drill_matrix(&opts, true)
    } else {
        let mut rows = Vec::new();
        for spec in specs {
            rows.extend(run_drill(&opts, spec).unwrap_or_else(|| {
                die(&format!(
                    "--drill {spec}: unknown scenario (valid: {}, all)",
                    DRILL_SCENARIOS.join(", ")
                ))
            }));
        }
        rows
    };
    print_drill_table(&rows);
    let noisy = rows
        .iter()
        .filter(|d| d.foreground_slowdown > DRILL_NOISE_BAND)
        .count();
    println!(
        "{} drills, {noisy} with foreground slowdown beyond the {DRILL_NOISE_BAND:.1}x noise band",
        rows.len()
    );
    if let Some(bad) = rows.iter().find(|d| !d.converged || !d.restore_verified) {
        die(&format!(
            "drill {} {} {} did not recover (converged={}, restore_verified={})",
            bad.scenario, bad.strategy, bad.policy, bad.converged, bad.restore_verified
        ));
    }
}

/// Run the pooled-scheduler scale-out sweep: every sweep point up to
/// `max` ranks (plus `max` itself) × the four paper strategies, the
/// measured replication + parity traffic cross-checked against the sim
/// cost model. Writes `ranks.csv` and exits non-zero if any point falls
/// outside the noise band.
fn run_ranks_sweep(max: u32, out: &std::path::Path) {
    let points: Vec<u32> = exp::RANKS_SWEEP_POINTS
        .iter()
        .copied()
        .filter(|&p| p <= max)
        .chain((!exp::RANKS_SWEEP_POINTS.contains(&max)).then_some(max))
        .collect();
    println!(
        "== pooled-scheduler ranks sweep: {points:?} ranks x 4 strategies, {} workers ==",
        exp::default_sweep_workers()
    );
    let rows = exp::ranks_sweep(&points);
    let t = report::ranks_table(&rows);
    println!("{}", t.render());
    t.write_csv(&out.join("ranks.csv"))
        .expect("write ranks.csv");
    if let Some(bad) = rows.iter().find(|r| !r.sim_within_band) {
        die(&format!(
            "{} at {} ranks: measured traffic deviates {:.1} % from the sim model (band {:.0} %)",
            bad.strategy,
            bad.ranks,
            bad.deviation_pct,
            exp::SIM_TRAFFIC_BAND_PCT
        ));
    }
}

/// Run one traced coll-dedup dump over the HPCCG workload and write the
/// world-aggregated phase trace (JSON, or CSV for a `.csv` path).
fn write_trace(path: &PathBuf) {
    use replidedup_core::{DumpConfig, Strategy};
    let buffers = replidedup_bench::workloads::make_buffers(AppKind::hpccg(), 8);
    let cfg = DumpConfig::paper_defaults(Strategy::CollDedup).with_chunk_size(4096);
    let (_, trace) = exp::dump_world_traced(&buffers, cfg);
    let body = if path.extension().is_some_and(|e| e == "csv") {
        trace.to_csv()
    } else {
        trace.to_json()
    };
    std::fs::write(path, body).unwrap_or_else(|e| die(&format!("write {}: {e}", path.display())));
    println!(
        "phase trace of one coll-dedup dump (8 ranks) -> {}",
        path.display()
    );
}

/// Run the deterministic fault-injection demo: one coll-dedup dump under
/// `spec`, reporting which ranks crashed and which survivors degraded, then
/// a restart (fresh world, failed nodes revived empty) restoring whatever
/// data survived.
fn run_fault_demo(spec: &str) {
    use replidedup_core::{Replicator, Strategy, DUMP_PHASES};
    use replidedup_mpi::{FaultPlan, RankOutcome, WorldConfig};
    use replidedup_storage::{Cluster, Placement};
    use std::sync::Arc;
    use std::time::Duration;

    let parsed = FaultPlan::parse(spec).unwrap_or_else(|e| die(&format!("--fault-plan: {e}")));
    const N: u32 = 8;
    // A bare seed derives a two-crash schedule over the dump phases.
    let plan = if parsed.faults.is_empty() {
        FaultPlan::seeded(parsed.seed, N, 2, &DUMP_PHASES)
    } else {
        parsed
    };
    println!("== fault demo: coll-dedup dump, {N} ranks, K = 3 ==");
    for f in &plan.faults {
        println!("   fault: {f:?}");
    }
    let cluster = Arc::new(Cluster::new(Placement::one_per_node(N)));
    let hook_cluster = Arc::clone(&cluster);
    let plan = plan.on_crash(move |rank| hook_cluster.fail_node(hook_cluster.node_of(rank)));
    let config = WorldConfig::default()
        .with_recv_timeout(Duration::from_secs(10))
        .with_faults(plan);
    let repl = Replicator::builder(Strategy::CollDedup)
        .cluster(&cluster)
        .replication(3)
        .chunk_size(4096)
        .build()
        .expect("valid config");
    let out = config.launch(N, |comm| {
        let buf = vec![comm.rank() as u8 + 1; 64 * 1024];
        repl.dump(comm, 1, &buf)
    });
    for (rank, o) in out.outcomes.iter().enumerate() {
        match o {
            RankOutcome::Crashed { .. } => println!("rank {rank}: crashed (injected)"),
            RankOutcome::Completed(Ok(s)) if s.degraded => {
                println!(
                    "rank {rank}: dump degraded, dead ranks {:?}",
                    s.failed_ranks
                )
            }
            RankOutcome::Completed(Ok(_)) => println!("rank {rank}: dump clean"),
            RankOutcome::Completed(Err(e)) => println!("rank {rank}: dump failed: {e}"),
        }
    }
    // Restart: replacement hardware comes up empty, then a full-world
    // restore pulls surviving replicas back together.
    for node in 0..N {
        if !cluster.is_alive(node) {
            cluster.revive_node(node);
        }
    }
    let out = WorldConfig::default()
        .launch(N, |comm| {
            (comm.rank(), repl.restore(comm, 1).map(|b| b.len()))
        })
        .expect_all();
    for (rank, r) in out.results {
        match r {
            Ok(len) => println!("rank {rank}: restored {len} bytes"),
            Err(e) => println!("rank {rank}: {e}"),
        }
    }
}

/// The self-healing demo: a clean coll-dedup dump, node failures replaced
/// by empty devices, optional scrub, collective repair, and a final
/// verification that every chunk the dump references is back to `K`
/// copies and every rank restores byte-exactly.
fn run_heal_demo(fail_nodes: &[u32], do_scrub: bool, do_repair: bool) {
    use replidedup_core::{Replicator, Strategy};
    use replidedup_mpi::WorldConfig;
    use replidedup_storage::{Cluster, Placement};

    const N: u32 = 8;
    const K: u32 = 3;
    println!("== self-healing demo: coll-dedup dump, {N} ranks, K = {K} ==");
    let cluster = Cluster::new(Placement::one_per_node(N));
    let repl = Replicator::builder(Strategy::CollDedup)
        .cluster(&cluster)
        .replication(K)
        .chunk_size(4096)
        .build()
        .expect("valid config");
    let buf_of = |rank: u32| vec![rank as u8 + 1; 64 * 1024];
    let out = WorldConfig::default()
        .launch(N, |comm| repl.dump(comm, 1, &buf_of(comm.rank())))
        .expect_all();
    for (rank, r) in out.results.iter().enumerate() {
        if let Err(e) = r {
            die(&format!("rank {rank}: dump failed: {e}"));
        }
    }
    println!(
        "dump committed clean ({} bytes on devices)",
        cluster.total_device_bytes()
    );

    for &node in fail_nodes {
        if node >= N {
            die(&format!(
                "--fail-node {node}: demo cluster has nodes 0..{N}"
            ));
        }
        cluster.fail_node(node);
        cluster.revive_node(node);
        println!("node {node}: failed, replaced with an empty device");
    }

    if do_scrub {
        let out = WorldConfig::default()
            .launch(N, |comm| repl.scrub(comm))
            .expect_all();
        let report = out.results[0]
            .as_ref()
            .unwrap_or_else(|e| die(&format!("scrub failed: {e}")));
        println!(
            "scrub: {} chunks checked, {} corrupt, {} dangling, {} orphaned",
            report.chunks_checked,
            report.corrupt.len(),
            report.dangling.len(),
            report.orphans.len()
        );
    }

    if do_repair {
        let out = WorldConfig::default()
            .launch(N, |comm| repl.repair(comm, 1))
            .expect_all();
        let stats = out.results[0]
            .as_ref()
            .unwrap_or_else(|e| die(&format!("repair failed: {e}")));
        println!(
            "repair: {} chunk copies healed ({} bytes), {} manifests re-materialized, {} corrupt quarantined",
            stats.chunks_healed,
            stats.bytes_re_replicated,
            stats.manifests_rematerialized,
            stats.corrupt_quarantined
        );
        if !stats.is_fully_healed() {
            println!(
                "repair: UNRECOVERABLE — {} chunks, {} manifests beyond repair (more than K-1 copies lost)",
                stats.unrepairable_chunks.len(),
                stats.unrepairable_manifests.len()
            );
        }
        // Verify: every chunk referenced by every rank's manifest is back
        // to K live copies.
        let (mut total, mut at_k) = (0u64, 0u64);
        for rank in 0..N {
            let m = cluster
                .get_manifest(cluster.node_of(rank), rank, 1)
                .unwrap_or_else(|e| die(&format!("rank {rank}'s manifest after repair: {e}")));
            for fp in &m.chunks {
                total += 1;
                if cluster.copies_of(fp) >= K {
                    at_k += 1;
                }
            }
        }
        println!("verify: {at_k}/{total} referenced chunks at K = {K} copies");
    }

    let out = WorldConfig::default()
        .launch(N, |comm| (comm.rank(), repl.restore(comm, 1)))
        .expect_all();
    for (rank, r) in out.results {
        match r {
            Ok(b) if b == buf_of(rank) => println!("rank {rank}: restored byte-exact"),
            Ok(_) => println!("rank {rank}: restored WRONG bytes"),
            Err(e) => println!("rank {rank}: restore failed: {e}"),
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    let want = |name: &str| args.exps.iter().any(|e| e == name || e == "all");
    let t0 = Instant::now();
    println!(
        "replidedup reproduction — process scale {:.2}\n",
        args.scale
    );

    if let Some(path) = &args.trace_out {
        write_trace(path);
    }
    if let Some(spec) = &args.fault_plan {
        run_fault_demo(spec);
    }
    if !args.fail_nodes.is_empty() || args.repair || args.scrub {
        run_heal_demo(&args.fail_nodes, args.scrub, args.repair);
    }
    if args.bench || args.bench_smoke {
        run_bench(args.bench_smoke && !args.bench, args.bench_out.as_ref());
    }
    if !args.drills.is_empty() {
        run_drills(&args.drills);
    }
    if let Some(max) = args.ranks {
        run_ranks_sweep(max, &args.out);
    }

    if want("fig2") {
        let f = exp::fig2();
        let t = report::fig2_table(&f);
        println!("== Figure 2: naive vs load-aware partner selection ==");
        println!("{}", t.render());
        t.write_csv(&args.out.join("fig2.csv"))
            .expect("write fig2.csv");
    }
    if want("fig3a") {
        let rows = exp::fig3a(args.scale);
        let t = report::fig3a_table(&rows);
        println!("== Figure 3(a): total size of unique content ==");
        println!("{}", t.render());
        t.write_csv(&args.out.join("fig3a.csv"))
            .expect("write fig3a.csv");
    }
    if want("fig3b") {
        let rows = exp::fig3bc(AppKind::hpccg(), args.scale);
        let t = report::fig3bc_table(&rows);
        println!("== Figure 3(b): HPCCG reduction overhead (F = 2^17) ==");
        println!("{}", t.render());
        t.write_csv(&args.out.join("fig3b.csv"))
            .expect("write fig3b.csv");
    }
    if want("fig3c") {
        let rows = exp::fig3bc(AppKind::cm1(), args.scale);
        let t = report::fig3bc_table(&rows);
        println!("== Figure 3(c): CM1 reduction overhead (F = 2^17) ==");
        println!("{}", t.render());
        t.write_csv(&args.out.join("fig3c.csv"))
            .expect("write fig3c.csv");
    }
    if want("tab1") {
        for app in [AppKind::hpccg(), AppKind::cm1()] {
            let rows = exp::tab1(app, args.scale);
            let t = report::tab1_table(&rows);
            println!("== Table I ({}): completion time, K = 3 ==", app.label());
            println!("{}", t.render());
            t.write_csv(
                &args
                    .out
                    .join(format!("tab1_{}.csv", app.label().to_lowercase())),
            )
            .expect("write tab1 csv");
        }
    }
    if want("fig4") {
        let rows = exp::fig_k_sweep(AppKind::hpccg(), args.scale);
        let t = report::fig_k_table(&rows);
        println!("== Figures 4(a)+4(b): HPCCG, K = 1..6 at 408 procs ==");
        println!("{}", t.render());
        t.write_csv(&args.out.join("fig4ab.csv"))
            .expect("write fig4ab.csv");
        let rows = exp::fig_shuffle(AppKind::hpccg(), args.scale);
        let t = report::fig_shuffle_table(&rows);
        println!("== Figure 4(c): HPCCG, impact of rank shuffling ==");
        println!("{}", t.render());
        t.write_csv(&args.out.join("fig4c.csv"))
            .expect("write fig4c.csv");
    }
    if want("fig5") {
        let rows = exp::fig_k_sweep(AppKind::cm1(), args.scale);
        let t = report::fig_k_table(&rows);
        println!("== Figures 5(a)+5(b): CM1, K = 1..6 at 408 procs ==");
        println!("{}", t.render());
        t.write_csv(&args.out.join("fig5ab.csv"))
            .expect("write fig5ab.csv");
        let rows = exp::fig_shuffle(AppKind::cm1(), args.scale);
        let t = report::fig_shuffle_table(&rows);
        println!("== Figure 5(c): CM1, impact of rank shuffling ==");
        println!("{}", t.render());
        t.write_csv(&args.out.join("fig5c.csv"))
            .expect("write fig5c.csv");
    }

    println!(
        "done in {:.1}s — CSVs in {}",
        t0.elapsed().as_secs_f64(),
        args.out.display()
    );
}
