//! Text-table and CSV rendering of experiment results.
//!
//! The `repro` binary prints paper-style tables to stdout and mirrors each
//! experiment into `results/<exp>.csv` so plots can be regenerated with
//! any tool.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

use crate::experiments::{Fig2, Fig3aRow, Fig3bcRow, FigKRow, FigShuffleRow, Tab1Row};

/// Render bytes as a human-friendly quantity.
pub fn human_bytes(b: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.1} {}", UNITS[u])
}

/// Simple fixed-width table builder.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Write as CSV to `path` (directories created as needed).
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        writeln!(
            f,
            "{}",
            self.header
                .iter()
                .map(|s| esc(s))
                .collect::<Vec<_>>()
                .join(",")
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{}",
                row.iter().map(|s| esc(s)).collect::<Vec<_>>().join(",")
            )?;
        }
        f.flush()
    }
}

/// Figure 2 as a table.
pub fn fig2_table(f: &Fig2) -> Table {
    let mut t = Table::new(&["selection", "max receive (chunks)"]);
    t.row(vec!["naive".into(), f.naive_max.to_string()]);
    t.row(vec![
        format!("load-aware {:?}", f.shuffle),
        f.shuffled_max.to_string(),
    ]);
    t
}

/// Figure 3(a) as a table.
pub fn fig3a_table(rows: &[Fig3aRow]) -> Table {
    let mut t = Table::new(&[
        "config",
        "total",
        "no-dedup",
        "local-dedup",
        "coll-dedup",
        "local %",
        "coll %",
    ]);
    for r in rows {
        let pct = r.percent();
        t.row(vec![
            r.config.clone(),
            human_bytes(r.total_bytes as f64),
            human_bytes(r.unique_bytes[0] as f64),
            human_bytes(r.unique_bytes[1] as f64),
            human_bytes(r.unique_bytes[2] as f64),
            format!("{:.1}", pct[1]),
            format!("{:.1}", pct[2]),
        ]);
    }
    t
}

/// Figures 3(b)/(c) as a table.
pub fn fig3bc_table(rows: &[Fig3bcRow]) -> Table {
    let mut t = Table::new(&[
        "procs",
        "local-dedup (s)",
        "coll K=2 (s)",
        "coll K=4 (s)",
        "coll K=6 (s)",
    ]);
    for r in rows {
        t.row(vec![
            r.procs.to_string(),
            format!("{:.2}", r.local_seconds),
            format!("{:.2}", r.coll_seconds[0]),
            format!("{:.2}", r.coll_seconds[1]),
            format!("{:.2}", r.coll_seconds[2]),
        ]);
    }
    t
}

/// Table I as a table.
pub fn tab1_table(rows: &[Tab1Row]) -> Table {
    let mut t = Table::new(&[
        "# of processes",
        "no-dedup",
        "local-dedup",
        "coll-dedup",
        "baseline",
    ]);
    for r in rows {
        t.row(vec![
            r.procs.to_string(),
            format!("{:.0}s", r.completion[0]),
            format!("{:.0}s", r.completion[1]),
            format!("{:.0}s", r.completion[2]),
            format!("{:.0}s", r.baseline),
        ]);
    }
    t
}

/// Figures 4(a,b)/5(a,b) as a table.
pub fn fig_k_table(rows: &[FigKRow]) -> Table {
    let mut t = Table::new(&[
        "K",
        "no-dedup ovh (s)",
        "local ovh (s)",
        "coll ovh (s)",
        "no-dedup avg/max sent",
        "local avg/max sent",
        "coll avg/max sent",
    ]);
    for r in rows {
        let sent = |i: usize| {
            format!(
                "{} / {}",
                human_bytes(r.avg_sent[i]),
                human_bytes(r.max_sent[i])
            )
        };
        t.row(vec![
            r.k.to_string(),
            format!("{:.0}", r.overhead_seconds[0]),
            format!("{:.0}", r.overhead_seconds[1]),
            format!("{:.0}", r.overhead_seconds[2]),
            sent(0),
            sent(1),
            sent(2),
        ]);
    }
    t
}

/// Figures 4(c)/5(c) as a table.
pub fn fig_shuffle_table(rows: &[FigShuffleRow]) -> Table {
    let mut t = Table::new(&[
        "K",
        "no-shuffle max recv",
        "shuffle max recv",
        "reduction %",
    ]);
    for r in rows {
        t.row(vec![
            r.k.to_string(),
            human_bytes(r.no_shuffle_max_recv),
            human_bytes(r.shuffle_max_recv),
            format!("{:.1}", r.reduction_percent()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512.0), "512.0 B");
        assert_eq!(human_bytes(2048.0), "2.0 KiB");
        assert_eq!(human_bytes(3.5 * 1024.0 * 1024.0), "3.5 MiB");
        assert_eq!(human_bytes(1e13), "9.1 TiB");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bbb"]);
        t.row(vec!["10".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("bbb"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_row_width_panics() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let dir = std::env::temp_dir().join("replidedup-csv-test");
        let path = dir.join("t.csv");
        let mut t = Table::new(&["x,y", "z"]);
        t.row(vec!["a\"b".into(), "c".into()]);
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("\"x,y\",z\n"));
        assert!(content.contains("\"a\"\"b\",c"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fig2_table_shape() {
        let f = crate::experiments::fig2();
        let t = fig2_table(&f);
        let s = t.render();
        assert!(s.contains("200"));
        assert!(s.contains("110"));
    }
}
