//! Text-table, CSV, and bench-report rendering of experiment results.
//!
//! The `repro` binary prints paper-style tables to stdout and mirrors each
//! experiment into `results/<exp>.csv` so plots can be regenerated with
//! any tool. `repro --bench` additionally emits a machine-readable
//! [`BenchReport`] as `BENCH_<date>.json` (schema
//! [`BENCH_SCHEMA`], checked by [`validate_bench_json`]).

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

use crate::experiments::{Fig2, Fig3aRow, Fig3bcRow, FigKRow, FigShuffleRow, RanksRow, Tab1Row};

/// Render bytes as a human-friendly quantity.
pub fn human_bytes(b: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.1} {}", UNITS[u])
}

/// Simple fixed-width table builder.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Write as CSV to `path` (directories created as needed).
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        writeln!(
            f,
            "{}",
            self.header
                .iter()
                .map(|s| esc(s))
                .collect::<Vec<_>>()
                .join(",")
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{}",
                row.iter().map(|s| esc(s)).collect::<Vec<_>>().join(",")
            )?;
        }
        f.flush()
    }
}

/// Figure 2 as a table.
pub fn fig2_table(f: &Fig2) -> Table {
    let mut t = Table::new(&["selection", "max receive (chunks)"]);
    t.row(vec!["naive".into(), f.naive_max.to_string()]);
    t.row(vec![
        format!("load-aware {:?}", f.shuffle),
        f.shuffled_max.to_string(),
    ]);
    t
}

/// Figure 3(a) as a table.
pub fn fig3a_table(rows: &[Fig3aRow]) -> Table {
    let mut t = Table::new(&[
        "config",
        "total",
        "no-dedup",
        "local-dedup",
        "coll-dedup",
        "local %",
        "coll %",
    ]);
    for r in rows {
        let pct = r.percent();
        t.row(vec![
            r.config.clone(),
            human_bytes(r.total_bytes as f64),
            human_bytes(r.unique_bytes[0] as f64),
            human_bytes(r.unique_bytes[1] as f64),
            human_bytes(r.unique_bytes[2] as f64),
            format!("{:.1}", pct[1]),
            format!("{:.1}", pct[2]),
        ]);
    }
    t
}

/// Figures 3(b)/(c) as a table.
pub fn fig3bc_table(rows: &[Fig3bcRow]) -> Table {
    let mut t = Table::new(&[
        "procs",
        "local-dedup (s)",
        "coll K=2 (s)",
        "coll K=4 (s)",
        "coll K=6 (s)",
    ]);
    for r in rows {
        t.row(vec![
            r.procs.to_string(),
            format!("{:.2}", r.local_seconds),
            format!("{:.2}", r.coll_seconds[0]),
            format!("{:.2}", r.coll_seconds[1]),
            format!("{:.2}", r.coll_seconds[2]),
        ]);
    }
    t
}

/// Table I as a table.
pub fn tab1_table(rows: &[Tab1Row]) -> Table {
    let mut t = Table::new(&[
        "# of processes",
        "no-dedup",
        "local-dedup",
        "coll-dedup",
        "baseline",
    ]);
    for r in rows {
        t.row(vec![
            r.procs.to_string(),
            format!("{:.0}s", r.completion[0]),
            format!("{:.0}s", r.completion[1]),
            format!("{:.0}s", r.completion[2]),
            format!("{:.0}s", r.baseline),
        ]);
    }
    t
}

/// Figures 4(a,b)/5(a,b) as a table.
pub fn fig_k_table(rows: &[FigKRow]) -> Table {
    let mut t = Table::new(&[
        "K",
        "no-dedup ovh (s)",
        "local ovh (s)",
        "coll ovh (s)",
        "no-dedup avg/max sent",
        "local avg/max sent",
        "coll avg/max sent",
    ]);
    for r in rows {
        let sent = |i: usize| {
            format!(
                "{} / {}",
                human_bytes(r.avg_sent[i]),
                human_bytes(r.max_sent[i])
            )
        };
        t.row(vec![
            r.k.to_string(),
            format!("{:.0}", r.overhead_seconds[0]),
            format!("{:.0}", r.overhead_seconds[1]),
            format!("{:.0}", r.overhead_seconds[2]),
            sent(0),
            sent(1),
            sent(2),
        ]);
    }
    t
}

/// Figures 4(c)/5(c) as a table.
pub fn fig_shuffle_table(rows: &[FigShuffleRow]) -> Table {
    let mut t = Table::new(&[
        "K",
        "no-shuffle max recv",
        "shuffle max recv",
        "reduction %",
    ]);
    for r in rows {
        t.row(vec![
            r.k.to_string(),
            human_bytes(r.no_shuffle_max_recv),
            human_bytes(r.shuffle_max_recv),
            format!("{:.1}", r.reduction_percent()),
        ]);
    }
    t
}

/// The pooled-scheduler ranks sweep as a table: measured wire/parity
/// traffic next to the `crates/sim` prediction and whether the two agree
/// within the noise band.
pub fn ranks_table(rows: &[RanksRow]) -> Table {
    let mut t = Table::new(&[
        "ranks",
        "strategy",
        "workers",
        "wall (s)",
        "wire meas/pred",
        "parity meas/pred",
        "dev %",
        "in band",
        "modeled (s)",
    ]);
    for r in rows {
        t.row(vec![
            r.ranks.to_string(),
            r.strategy.clone(),
            r.workers.to_string(),
            format!("{:.2}", r.wall_seconds),
            format!(
                "{} / {}",
                human_bytes(r.measured_wire_bytes as f64),
                human_bytes(r.predicted_wire_bytes as f64)
            ),
            format!(
                "{} / {}",
                human_bytes(r.measured_parity_bytes as f64),
                human_bytes(r.predicted_parity_bytes as f64)
            ),
            format!("{:.1}", r.deviation_pct),
            if r.sim_within_band { "yes" } else { "NO" }.into(),
            format!("{:.2}", r.modeled_seconds),
        ]);
    }
    t
}

// ------------------------------------------------------------------
// Zero-copy perf harness report (`repro --bench` → BENCH_<date>.json)
// ------------------------------------------------------------------

/// Schema identifier stamped into every bench report. `v2` added the
/// chunker-matrix arrays (`chunker_matrix`, `chunker_comparisons`); `v3`
/// added the redundancy-policy arrays (`policy_matrix`,
/// `policy_comparisons`); `v4` added the recovery-drill array
/// (`drill_matrix`); `v5` added the pooled-scheduler scale-out array
/// (`ranks_matrix`) with its measured-vs-predicted traffic cross-check.
pub const BENCH_SCHEMA: &str = "replidedup-bench/v5";

/// One scripted recovery drill: fail → heal under live traffic →
/// verify, for one (scenario, strategy, policy) cell of the drill
/// matrix.
#[derive(Debug, Clone)]
pub struct DrillScenario {
    /// Drill scenario label (`node-loss`, `healer-crash`, `dump-crash`,
    /// `corruption`, `gc-pressure`).
    pub scenario: String,
    /// Strategy label (`no-dedup` / `coll-dedup`).
    pub strategy: String,
    /// Redundancy-policy label (`rep3` / `rs4+2` / `auto4+2`).
    pub policy: String,
    /// World size (one rank per node).
    pub ranks: u32,
    /// Bounded healer steps driven to convergence, counted across
    /// resumes by the persisted cursor.
    pub heal_steps: u64,
    /// Payload bytes the healer re-replicated or reconstructed.
    pub heal_bytes: u64,
    /// Wall time of the (resumed) background heal, milliseconds.
    pub recovery_ms: f64,
    /// Foreground dump wall time alone on the healthy cluster, ms.
    pub baseline_dump_ms: f64,
    /// Foreground dump wall time while the healer ran, ms.
    pub contended_dump_ms: f64,
    /// `contended_dump_ms / baseline_dump_ms`.
    pub foreground_slowdown: f64,
    /// The healer reached `Done` with nothing unrepairable (and, for gc
    /// drills, every superseded generation collected).
    pub converged: bool,
    /// Healed and foreground generations both restored byte-exactly.
    pub restore_verified: bool,
}

/// One measured dump+restore scenario of the perf harness.
#[derive(Debug, Clone)]
pub struct BenchScenario {
    /// Workload label (e.g. `HPCCG`).
    pub app: String,
    /// Strategy label (`no-dedup` / `local-dedup` / `coll-dedup`).
    pub strategy: String,
    /// Replication degree.
    pub k: u32,
    /// Copy-mode label (`zero-copy` / `staged`).
    pub copy_mode: String,
    /// World size.
    pub ranks: u32,
    /// Chunk size in bytes.
    pub chunk_size: u64,
    /// Total application bytes dumped across all ranks.
    pub input_bytes: u64,
    /// Best dump wall time across iterations, seconds.
    pub dump_seconds: f64,
    /// Best restore wall time across iterations, seconds.
    pub restore_seconds: f64,
    /// Aggregate dump throughput at the best wall time, MiB/s.
    pub dump_throughput_mib_s: f64,
    /// Payload bytes memcpy'd between buffers during the dump, summed
    /// over ranks (the `alloc_bytes_copied` accounting).
    pub dump_bytes_copied: u64,
    /// Payload bytes memcpy'd during the restore (process-wide delta).
    pub restore_bytes_copied: u64,
    /// Replication bytes pushed over RMA windows, summed over ranks.
    pub bytes_sent_replication: u64,
    /// Replication bytes landed in windows, summed over ranks.
    pub bytes_received_replication: u64,
    /// Bytes physically written across all node devices.
    pub bytes_written_devices: u64,
    /// Buffer-pool takes served from the shelf during the scenario.
    pub pool_hits: u64,
    /// Buffer-pool takes that had to allocate fresh.
    pub pool_misses: u64,
    /// Pool capacity served from the shelf instead of the allocator.
    pub pool_bytes_reused: u64,
    /// Process peak RSS (KiB) after the scenario. Monotonic across the
    /// process, so only the growth between scenarios is attributable.
    pub peak_rss_kib: u64,
}

/// Staged-vs-zero-copy comparison for one (strategy, K) pair — the
/// acceptance evidence: copies reduced, wall time no worse.
#[derive(Debug, Clone)]
pub struct BenchComparison {
    /// Strategy label.
    pub strategy: String,
    /// Replication degree.
    pub k: u32,
    /// Dump bytes copied under the staged (pre-change) path.
    pub staged_bytes_copied: u64,
    /// Dump bytes copied under the zero-copy path.
    pub zero_copy_bytes_copied: u64,
    /// Copy reduction, percent of the staged figure.
    pub copy_reduction_percent: f64,
    /// Staged dump wall time, seconds.
    pub staged_dump_seconds: f64,
    /// Zero-copy dump wall time, seconds.
    pub zero_copy_dump_seconds: f64,
    /// Whether the zero-copy dump was no slower than staged.
    pub dump_time_no_worse: bool,
}

/// One row of the chunker × strategy × workload dedup-quality matrix.
#[derive(Debug, Clone)]
pub struct ChunkerScenario {
    /// Workload label (`shifted-dup` / `insert-heavy`).
    pub workload: String,
    /// Strategy label (`no-dedup` / `local-dedup` / `coll-dedup`).
    pub strategy: String,
    /// Chunker label (`fixed` / `rabin` / `gear`).
    pub chunker: String,
    /// Replication degree.
    pub k: u32,
    /// World size.
    pub ranks: u32,
    /// Total application bytes dumped across all ranks.
    pub input_bytes: u64,
    /// Bytes physically written across all node devices.
    pub bytes_written_devices: u64,
    /// Dedup ratio: `input_bytes * k / bytes_written_devices`. 1.0 means
    /// no redundancy found; higher is better.
    pub dedup_ratio: f64,
    /// Pure chunking throughput of this chunker over this workload's
    /// buffers, MiB/s (cut-point scan only, no hashing).
    pub chunking_mib_s: f64,
    /// Best end-to-end dump wall time across iterations, seconds.
    pub dump_seconds: f64,
}

/// Fixed-vs-CDC dedup-quality comparison for one (workload, K, chunker) —
/// the acceptance evidence that content-defined chunking recovers the
/// shifted redundancy fixed-stride chunking misses.
#[derive(Debug, Clone)]
pub struct ChunkerComparison {
    /// Workload label.
    pub workload: String,
    /// Replication degree.
    pub k: u32,
    /// The CDC chunker being compared against fixed (`rabin` / `gear`).
    pub chunker: String,
    /// coll-dedup dedup ratio under fixed chunking.
    pub fixed_dedup_ratio: f64,
    /// coll-dedup dedup ratio under this CDC chunker.
    pub cdc_dedup_ratio: f64,
    /// Whether the CDC ratio strictly beats the fixed ratio.
    pub cdc_beats_fixed: bool,
}

/// One row of the redundancy-policy × strategy × workload matrix: the
/// storage cost of one [`replidedup_core::RedundancyPolicy`] on one
/// workload, with the restore re-verified byte-exact after wiping as many
/// nodes as the policy claims to tolerate.
#[derive(Debug, Clone)]
pub struct PolicyScenario {
    /// Workload label (`HPCCG` / `insert-heavy`).
    pub workload: String,
    /// Strategy label (`no-dedup` / `coll-dedup`).
    pub strategy: String,
    /// Policy label (`rep2` / `rep3` / `rs4+2` / `auto4+2`).
    pub policy: String,
    /// Node losses the policy tolerates (`K - 1` replicated, `m` coded).
    pub loss_tolerance: u32,
    /// World size (one rank per node: stripes need distinct devices).
    pub ranks: u32,
    /// Total application bytes dumped across all ranks.
    pub input_bytes: u64,
    /// Bytes physically written across all node devices (data + parity).
    pub bytes_written_devices: u64,
    /// Parity shard bytes within `bytes_written_devices`.
    pub parity_bytes: u64,
    /// Chunks whose redundancy came from a stripe, summed over ranks.
    pub chunks_coded: u64,
    /// Best end-to-end dump wall time across iterations, seconds.
    pub dump_seconds: f64,
    /// Whether every rank restored byte-exactly after `loss_tolerance`
    /// nodes were wiped (failed and revived empty).
    pub restore_after_loss_verified: bool,
}

/// Erasure-coding vs replication storage verdict for one (workload,
/// replicate-K) cell, plus the dedup-credit evidence — the two headline
/// claims of the redundancy-policy subsystem.
#[derive(Debug, Clone)]
pub struct PolicyComparison {
    /// Workload label.
    pub workload: String,
    /// The replication degree being compared against.
    pub replicate_k: u32,
    /// Device bytes under `Replicate(replicate_k)`, coll-dedup.
    pub replicate_bytes_devices: u64,
    /// Device bytes under `Rs(4+2)`, coll-dedup.
    pub rs_bytes_devices: u64,
    /// Whether Rs(4+2) stored strictly less than the replication row. At
    /// `replicate_k = 3` both tolerate two losses, so this is the
    /// like-for-like storage win.
    pub rs_beats_replication: bool,
    /// Parity bytes under `Rs(4+2)` with `no-dedup` (blind striping).
    pub no_dedup_parity_bytes: u64,
    /// Parity bytes under `Rs(4+2)` with `coll-dedup` (dedup credit).
    pub coll_dedup_parity_bytes: u64,
    /// Whether the dedup credit cut parity strictly below blind striping.
    pub dedup_credit_cuts_parity: bool,
}

/// A full perf-harness run: every scenario plus the per-(strategy, K)
/// staged-vs-zero-copy comparisons derived from them, the
/// chunker × strategy × workload dedup-quality matrix, and the
/// redundancy-policy matrix.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// ISO date of the run (file is named `BENCH_<date>.json`).
    pub date: String,
    /// World size shared by all scenarios.
    pub ranks: u32,
    /// Timed iterations per scenario (best-of is reported).
    pub iterations: u32,
    /// All measured scenarios.
    pub scenarios: Vec<BenchScenario>,
    /// Derived staged-vs-zero-copy comparisons.
    pub comparisons: Vec<BenchComparison>,
    /// Chunker × strategy × workload dedup-quality rows.
    pub chunker_matrix: Vec<ChunkerScenario>,
    /// Derived fixed-vs-CDC dedup comparisons.
    pub chunker_comparisons: Vec<ChunkerComparison>,
    /// Redundancy-policy × strategy × workload rows.
    pub policy_matrix: Vec<PolicyScenario>,
    /// Derived EC-vs-replication and dedup-credit comparisons.
    pub policy_comparisons: Vec<PolicyComparison>,
    /// Scripted recovery drills (fail → heal under live traffic →
    /// verify).
    pub drill_matrix: Vec<DrillScenario>,
    /// Pooled-scheduler scale-out sweep: `(ranks, strategy)` cells with
    /// the measured-vs-predicted traffic cross-check.
    pub ranks_matrix: Vec<RanksRow>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

impl BenchReport {
    /// Serialize as pretty-printed JSON (no external dependencies; the
    /// output round-trips through [`validate_bench_json`]).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": \"{}\",", json_escape(BENCH_SCHEMA));
        let _ = writeln!(s, "  \"date\": \"{}\",", json_escape(&self.date));
        let _ = writeln!(s, "  \"ranks\": {},", self.ranks);
        let _ = writeln!(s, "  \"iterations\": {},", self.iterations);
        let _ = writeln!(s, "  \"scenarios\": [");
        for (i, sc) in self.scenarios.iter().enumerate() {
            let comma = if i + 1 < self.scenarios.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"app\": \"{}\",", json_escape(&sc.app));
            let _ = writeln!(s, "      \"strategy\": \"{}\",", json_escape(&sc.strategy));
            let _ = writeln!(s, "      \"k\": {},", sc.k);
            let _ = writeln!(
                s,
                "      \"copy_mode\": \"{}\",",
                json_escape(&sc.copy_mode)
            );
            let _ = writeln!(s, "      \"ranks\": {},", sc.ranks);
            let _ = writeln!(s, "      \"chunk_size\": {},", sc.chunk_size);
            let _ = writeln!(s, "      \"input_bytes\": {},", sc.input_bytes);
            let _ = writeln!(s, "      \"dump_seconds\": {},", json_f64(sc.dump_seconds));
            let _ = writeln!(
                s,
                "      \"restore_seconds\": {},",
                json_f64(sc.restore_seconds)
            );
            let _ = writeln!(
                s,
                "      \"dump_throughput_mib_s\": {},",
                json_f64(sc.dump_throughput_mib_s)
            );
            let _ = writeln!(s, "      \"dump_bytes_copied\": {},", sc.dump_bytes_copied);
            let _ = writeln!(
                s,
                "      \"restore_bytes_copied\": {},",
                sc.restore_bytes_copied
            );
            let _ = writeln!(
                s,
                "      \"bytes_sent_replication\": {},",
                sc.bytes_sent_replication
            );
            let _ = writeln!(
                s,
                "      \"bytes_received_replication\": {},",
                sc.bytes_received_replication
            );
            let _ = writeln!(
                s,
                "      \"bytes_written_devices\": {},",
                sc.bytes_written_devices
            );
            let _ = writeln!(s, "      \"pool_hits\": {},", sc.pool_hits);
            let _ = writeln!(s, "      \"pool_misses\": {},", sc.pool_misses);
            let _ = writeln!(s, "      \"pool_bytes_reused\": {},", sc.pool_bytes_reused);
            let _ = writeln!(s, "      \"peak_rss_kib\": {}", sc.peak_rss_kib);
            let _ = writeln!(s, "    }}{comma}");
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"comparisons\": [");
        for (i, c) in self.comparisons.iter().enumerate() {
            let comma = if i + 1 < self.comparisons.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"strategy\": \"{}\",", json_escape(&c.strategy));
            let _ = writeln!(s, "      \"k\": {},", c.k);
            let _ = writeln!(
                s,
                "      \"staged_bytes_copied\": {},",
                c.staged_bytes_copied
            );
            let _ = writeln!(
                s,
                "      \"zero_copy_bytes_copied\": {},",
                c.zero_copy_bytes_copied
            );
            let _ = writeln!(
                s,
                "      \"copy_reduction_percent\": {},",
                json_f64(c.copy_reduction_percent)
            );
            let _ = writeln!(
                s,
                "      \"staged_dump_seconds\": {},",
                json_f64(c.staged_dump_seconds)
            );
            let _ = writeln!(
                s,
                "      \"zero_copy_dump_seconds\": {},",
                json_f64(c.zero_copy_dump_seconds)
            );
            let _ = writeln!(s, "      \"dump_time_no_worse\": {}", c.dump_time_no_worse);
            let _ = writeln!(s, "    }}{comma}");
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"chunker_matrix\": [");
        for (i, sc) in self.chunker_matrix.iter().enumerate() {
            let comma = if i + 1 < self.chunker_matrix.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"workload\": \"{}\",", json_escape(&sc.workload));
            let _ = writeln!(s, "      \"strategy\": \"{}\",", json_escape(&sc.strategy));
            let _ = writeln!(s, "      \"chunker\": \"{}\",", json_escape(&sc.chunker));
            let _ = writeln!(s, "      \"k\": {},", sc.k);
            let _ = writeln!(s, "      \"ranks\": {},", sc.ranks);
            let _ = writeln!(s, "      \"input_bytes\": {},", sc.input_bytes);
            let _ = writeln!(
                s,
                "      \"bytes_written_devices\": {},",
                sc.bytes_written_devices
            );
            let _ = writeln!(s, "      \"dedup_ratio\": {},", json_f64(sc.dedup_ratio));
            let _ = writeln!(
                s,
                "      \"chunking_mib_s\": {},",
                json_f64(sc.chunking_mib_s)
            );
            let _ = writeln!(s, "      \"dump_seconds\": {}", json_f64(sc.dump_seconds));
            let _ = writeln!(s, "    }}{comma}");
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"chunker_comparisons\": [");
        for (i, c) in self.chunker_comparisons.iter().enumerate() {
            let comma = if i + 1 < self.chunker_comparisons.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"workload\": \"{}\",", json_escape(&c.workload));
            let _ = writeln!(s, "      \"k\": {},", c.k);
            let _ = writeln!(s, "      \"chunker\": \"{}\",", json_escape(&c.chunker));
            let _ = writeln!(
                s,
                "      \"fixed_dedup_ratio\": {},",
                json_f64(c.fixed_dedup_ratio)
            );
            let _ = writeln!(
                s,
                "      \"cdc_dedup_ratio\": {},",
                json_f64(c.cdc_dedup_ratio)
            );
            let _ = writeln!(s, "      \"cdc_beats_fixed\": {}", c.cdc_beats_fixed);
            let _ = writeln!(s, "    }}{comma}");
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"policy_matrix\": [");
        for (i, sc) in self.policy_matrix.iter().enumerate() {
            let comma = if i + 1 < self.policy_matrix.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"workload\": \"{}\",", json_escape(&sc.workload));
            let _ = writeln!(s, "      \"strategy\": \"{}\",", json_escape(&sc.strategy));
            let _ = writeln!(s, "      \"policy\": \"{}\",", json_escape(&sc.policy));
            let _ = writeln!(s, "      \"loss_tolerance\": {},", sc.loss_tolerance);
            let _ = writeln!(s, "      \"ranks\": {},", sc.ranks);
            let _ = writeln!(s, "      \"input_bytes\": {},", sc.input_bytes);
            let _ = writeln!(
                s,
                "      \"bytes_written_devices\": {},",
                sc.bytes_written_devices
            );
            let _ = writeln!(s, "      \"parity_bytes\": {},", sc.parity_bytes);
            let _ = writeln!(s, "      \"chunks_coded\": {},", sc.chunks_coded);
            let _ = writeln!(s, "      \"dump_seconds\": {},", json_f64(sc.dump_seconds));
            let _ = writeln!(
                s,
                "      \"restore_after_loss_verified\": {}",
                sc.restore_after_loss_verified
            );
            let _ = writeln!(s, "    }}{comma}");
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"policy_comparisons\": [");
        for (i, c) in self.policy_comparisons.iter().enumerate() {
            let comma = if i + 1 < self.policy_comparisons.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"workload\": \"{}\",", json_escape(&c.workload));
            let _ = writeln!(s, "      \"replicate_k\": {},", c.replicate_k);
            let _ = writeln!(
                s,
                "      \"replicate_bytes_devices\": {},",
                c.replicate_bytes_devices
            );
            let _ = writeln!(s, "      \"rs_bytes_devices\": {},", c.rs_bytes_devices);
            let _ = writeln!(
                s,
                "      \"rs_beats_replication\": {},",
                c.rs_beats_replication
            );
            let _ = writeln!(
                s,
                "      \"no_dedup_parity_bytes\": {},",
                c.no_dedup_parity_bytes
            );
            let _ = writeln!(
                s,
                "      \"coll_dedup_parity_bytes\": {},",
                c.coll_dedup_parity_bytes
            );
            let _ = writeln!(
                s,
                "      \"dedup_credit_cuts_parity\": {}",
                c.dedup_credit_cuts_parity
            );
            let _ = writeln!(s, "    }}{comma}");
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"drill_matrix\": [");
        for (i, d) in self.drill_matrix.iter().enumerate() {
            let comma = if i + 1 < self.drill_matrix.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"scenario\": \"{}\",", json_escape(&d.scenario));
            let _ = writeln!(s, "      \"strategy\": \"{}\",", json_escape(&d.strategy));
            let _ = writeln!(s, "      \"policy\": \"{}\",", json_escape(&d.policy));
            let _ = writeln!(s, "      \"ranks\": {},", d.ranks);
            let _ = writeln!(s, "      \"heal_steps\": {},", d.heal_steps);
            let _ = writeln!(s, "      \"heal_bytes\": {},", d.heal_bytes);
            let _ = writeln!(s, "      \"recovery_ms\": {},", json_f64(d.recovery_ms));
            let _ = writeln!(
                s,
                "      \"baseline_dump_ms\": {},",
                json_f64(d.baseline_dump_ms)
            );
            let _ = writeln!(
                s,
                "      \"contended_dump_ms\": {},",
                json_f64(d.contended_dump_ms)
            );
            let _ = writeln!(
                s,
                "      \"foreground_slowdown\": {},",
                json_f64(d.foreground_slowdown)
            );
            let _ = writeln!(s, "      \"converged\": {},", d.converged);
            let _ = writeln!(s, "      \"restore_verified\": {}", d.restore_verified);
            let _ = writeln!(s, "    }}{comma}");
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"ranks_matrix\": [");
        for (i, r) in self.ranks_matrix.iter().enumerate() {
            let comma = if i + 1 < self.ranks_matrix.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"ranks\": {},", r.ranks);
            let _ = writeln!(s, "      \"strategy\": \"{}\",", json_escape(&r.strategy));
            let _ = writeln!(s, "      \"workers\": {},", r.workers);
            let _ = writeln!(s, "      \"wall_seconds\": {},", json_f64(r.wall_seconds));
            let _ = writeln!(
                s,
                "      \"measured_wire_bytes\": {},",
                r.measured_wire_bytes
            );
            let _ = writeln!(
                s,
                "      \"measured_parity_bytes\": {},",
                r.measured_parity_bytes
            );
            let _ = writeln!(
                s,
                "      \"predicted_wire_bytes\": {},",
                r.predicted_wire_bytes
            );
            let _ = writeln!(
                s,
                "      \"predicted_parity_bytes\": {},",
                r.predicted_parity_bytes
            );
            let _ = writeln!(s, "      \"deviation_pct\": {},", json_f64(r.deviation_pct));
            let _ = writeln!(s, "      \"sim_within_band\": {},", r.sim_within_band);
            let _ = writeln!(
                s,
                "      \"modeled_seconds\": {}",
                json_f64(r.modeled_seconds)
            );
            let _ = writeln!(s, "    }}{comma}");
        }
        let _ = writeln!(s, "  ]");
        s.push_str("}\n");
        s
    }
}

/// A parsed JSON value — the minimal model the schema check needs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parse a JSON document (strict enough for the bench report; rejects
/// trailing garbage).
pub fn parse_json(input: &str) -> Result<Json, String> {
    let b = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut kv = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(kv));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                kv.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(kv));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'r') => s.push('\r'),
                            Some(b'u') => {
                                let hex =
                                    b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        // Multi-byte UTF-8 sequences pass through verbatim.
                        let ch_len = match c {
                            0x00..=0x7F => 1,
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let chunk = b
                            .get(*pos..*pos + ch_len)
                            .ok_or("truncated UTF-8 sequence")?;
                        s.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                        *pos += ch_len;
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
    }
}

/// Required numeric fields of a scenario object.
const SCENARIO_NUM_FIELDS: [&str; 14] = [
    "k",
    "ranks",
    "chunk_size",
    "input_bytes",
    "dump_seconds",
    "restore_seconds",
    "dump_throughput_mib_s",
    "dump_bytes_copied",
    "restore_bytes_copied",
    "bytes_sent_replication",
    "bytes_received_replication",
    "bytes_written_devices",
    "pool_hits",
    "pool_misses",
];

/// Validate a bench-report JSON document against the
/// [`BENCH_SCHEMA`] shape. Returns the parsed document on success so
/// callers can make further assertions.
pub fn validate_bench_json(input: &str) -> Result<Json, String> {
    let doc = parse_json(input)?;
    let schema = doc.get("schema").ok_or("missing \"schema\"")?;
    if *schema != Json::Str(BENCH_SCHEMA.to_string()) {
        return Err(format!("schema is {schema:?}, want {BENCH_SCHEMA:?}"));
    }
    match doc.get("date") {
        Some(Json::Str(d)) if d.len() == 10 => {}
        other => return Err(format!("bad \"date\": {other:?}")),
    }
    let Some(Json::Arr(scenarios)) = doc.get("scenarios") else {
        return Err("missing \"scenarios\" array".into());
    };
    if scenarios.is_empty() {
        return Err("\"scenarios\" must not be empty".into());
    }
    for (i, sc) in scenarios.iter().enumerate() {
        for key in ["app", "strategy", "copy_mode"] {
            match sc.get(key) {
                Some(Json::Str(_)) => {}
                other => return Err(format!("scenario {i}: bad \"{key}\": {other:?}")),
            }
        }
        for key in SCENARIO_NUM_FIELDS {
            match sc.get(key) {
                Some(Json::Num(_)) => {}
                other => return Err(format!("scenario {i}: bad \"{key}\": {other:?}")),
            }
        }
    }
    let Some(Json::Arr(comparisons)) = doc.get("comparisons") else {
        return Err("missing \"comparisons\" array".into());
    };
    for (i, c) in comparisons.iter().enumerate() {
        for key in [
            "staged_bytes_copied",
            "zero_copy_bytes_copied",
            "copy_reduction_percent",
            "staged_dump_seconds",
            "zero_copy_dump_seconds",
        ] {
            match c.get(key) {
                Some(Json::Num(_)) => {}
                other => return Err(format!("comparison {i}: bad \"{key}\": {other:?}")),
            }
        }
        match c.get("dump_time_no_worse") {
            Some(Json::Bool(_)) => {}
            other => {
                return Err(format!(
                    "comparison {i}: bad \"dump_time_no_worse\": {other:?}"
                ))
            }
        }
    }
    let Some(Json::Arr(matrix)) = doc.get("chunker_matrix") else {
        return Err("missing \"chunker_matrix\" array".into());
    };
    if matrix.is_empty() {
        return Err("\"chunker_matrix\" must not be empty".into());
    }
    for (i, sc) in matrix.iter().enumerate() {
        for key in ["workload", "strategy", "chunker"] {
            match sc.get(key) {
                Some(Json::Str(_)) => {}
                other => return Err(format!("chunker row {i}: bad \"{key}\": {other:?}")),
            }
        }
        for key in [
            "k",
            "ranks",
            "input_bytes",
            "bytes_written_devices",
            "dedup_ratio",
            "chunking_mib_s",
            "dump_seconds",
        ] {
            match sc.get(key) {
                Some(Json::Num(_)) => {}
                other => return Err(format!("chunker row {i}: bad \"{key}\": {other:?}")),
            }
        }
    }
    let Some(Json::Arr(ccs)) = doc.get("chunker_comparisons") else {
        return Err("missing \"chunker_comparisons\" array".into());
    };
    for (i, c) in ccs.iter().enumerate() {
        for key in ["workload", "chunker"] {
            match c.get(key) {
                Some(Json::Str(_)) => {}
                other => return Err(format!("chunker comparison {i}: bad \"{key}\": {other:?}")),
            }
        }
        for key in ["k", "fixed_dedup_ratio", "cdc_dedup_ratio"] {
            match c.get(key) {
                Some(Json::Num(_)) => {}
                other => return Err(format!("chunker comparison {i}: bad \"{key}\": {other:?}")),
            }
        }
        match c.get("cdc_beats_fixed") {
            Some(Json::Bool(_)) => {}
            other => {
                return Err(format!(
                    "chunker comparison {i}: bad \"cdc_beats_fixed\": {other:?}"
                ))
            }
        }
    }
    let Some(Json::Arr(policies)) = doc.get("policy_matrix") else {
        return Err("missing \"policy_matrix\" array".into());
    };
    if policies.is_empty() {
        return Err("\"policy_matrix\" must not be empty".into());
    }
    for (i, sc) in policies.iter().enumerate() {
        for key in ["workload", "strategy", "policy"] {
            match sc.get(key) {
                Some(Json::Str(_)) => {}
                other => return Err(format!("policy row {i}: bad \"{key}\": {other:?}")),
            }
        }
        for key in [
            "loss_tolerance",
            "ranks",
            "input_bytes",
            "bytes_written_devices",
            "parity_bytes",
            "chunks_coded",
            "dump_seconds",
        ] {
            match sc.get(key) {
                Some(Json::Num(_)) => {}
                other => return Err(format!("policy row {i}: bad \"{key}\": {other:?}")),
            }
        }
        match sc.get("restore_after_loss_verified") {
            Some(Json::Bool(_)) => {}
            other => {
                return Err(format!(
                    "policy row {i}: bad \"restore_after_loss_verified\": {other:?}"
                ))
            }
        }
    }
    let Some(Json::Arr(pcs)) = doc.get("policy_comparisons") else {
        return Err("missing \"policy_comparisons\" array".into());
    };
    for (i, c) in pcs.iter().enumerate() {
        match c.get("workload") {
            Some(Json::Str(_)) => {}
            other => {
                return Err(format!(
                    "policy comparison {i}: bad \"workload\": {other:?}"
                ))
            }
        }
        for key in [
            "replicate_k",
            "replicate_bytes_devices",
            "rs_bytes_devices",
            "no_dedup_parity_bytes",
            "coll_dedup_parity_bytes",
        ] {
            match c.get(key) {
                Some(Json::Num(_)) => {}
                other => return Err(format!("policy comparison {i}: bad \"{key}\": {other:?}")),
            }
        }
        for key in ["rs_beats_replication", "dedup_credit_cuts_parity"] {
            match c.get(key) {
                Some(Json::Bool(_)) => {}
                other => return Err(format!("policy comparison {i}: bad \"{key}\": {other:?}")),
            }
        }
    }
    let Some(Json::Arr(drills)) = doc.get("drill_matrix") else {
        return Err("missing \"drill_matrix\" array".into());
    };
    if drills.is_empty() {
        return Err("\"drill_matrix\" must not be empty".into());
    }
    for (i, d) in drills.iter().enumerate() {
        for key in ["scenario", "strategy", "policy"] {
            match d.get(key) {
                Some(Json::Str(_)) => {}
                other => return Err(format!("drill row {i}: bad \"{key}\": {other:?}")),
            }
        }
        for key in [
            "ranks",
            "heal_steps",
            "heal_bytes",
            "recovery_ms",
            "baseline_dump_ms",
            "contended_dump_ms",
            "foreground_slowdown",
        ] {
            match d.get(key) {
                Some(Json::Num(_)) => {}
                other => return Err(format!("drill row {i}: bad \"{key}\": {other:?}")),
            }
        }
        for key in ["converged", "restore_verified"] {
            match d.get(key) {
                Some(Json::Bool(_)) => {}
                other => return Err(format!("drill row {i}: bad \"{key}\": {other:?}")),
            }
        }
    }
    let Some(Json::Arr(ranks_rows)) = doc.get("ranks_matrix") else {
        return Err("missing \"ranks_matrix\" array".into());
    };
    if ranks_rows.is_empty() {
        return Err("\"ranks_matrix\" must not be empty".into());
    }
    for (i, r) in ranks_rows.iter().enumerate() {
        match r.get("strategy") {
            Some(Json::Str(_)) => {}
            other => return Err(format!("ranks row {i}: bad \"strategy\": {other:?}")),
        }
        for key in [
            "ranks",
            "workers",
            "wall_seconds",
            "measured_wire_bytes",
            "measured_parity_bytes",
            "predicted_wire_bytes",
            "predicted_parity_bytes",
            "deviation_pct",
            "modeled_seconds",
        ] {
            match r.get(key) {
                Some(Json::Num(_)) => {}
                other => return Err(format!("ranks row {i}: bad \"{key}\": {other:?}")),
            }
        }
        match r.get("sim_within_band") {
            Some(Json::Bool(_)) => {}
            other => return Err(format!("ranks row {i}: bad \"sim_within_band\": {other:?}")),
        }
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512.0), "512.0 B");
        assert_eq!(human_bytes(2048.0), "2.0 KiB");
        assert_eq!(human_bytes(3.5 * 1024.0 * 1024.0), "3.5 MiB");
        assert_eq!(human_bytes(1e13), "9.1 TiB");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bbb"]);
        t.row(vec!["10".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("bbb"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_row_width_panics() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let dir = std::env::temp_dir().join("replidedup-csv-test");
        let path = dir.join("t.csv");
        let mut t = Table::new(&["x,y", "z"]);
        t.row(vec!["a\"b".into(), "c".into()]);
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("\"x,y\",z\n"));
        assert!(content.contains("\"a\"\"b\",c"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fig2_table_shape() {
        let f = crate::experiments::fig2();
        let t = fig2_table(&f);
        let s = t.render();
        assert!(s.contains("200"));
        assert!(s.contains("110"));
    }

    fn sample_report() -> BenchReport {
        let sc = |mode: &str, copied: u64, secs: f64| BenchScenario {
            app: "HPCCG".into(),
            strategy: "coll-dedup".into(),
            k: 2,
            copy_mode: mode.into(),
            ranks: 8,
            chunk_size: 4096,
            input_bytes: 1 << 20,
            dump_seconds: secs,
            restore_seconds: 0.01,
            dump_throughput_mib_s: 1.0 / secs,
            dump_bytes_copied: copied,
            restore_bytes_copied: 1 << 20,
            bytes_sent_replication: 1 << 19,
            bytes_received_replication: 1 << 19,
            bytes_written_devices: 1 << 20,
            pool_hits: 7,
            pool_misses: 9,
            pool_bytes_reused: 4096,
            peak_rss_kib: 10_000,
        };
        BenchReport {
            date: "2026-08-06".into(),
            ranks: 8,
            iterations: 3,
            scenarios: vec![sc("staged", 2 << 20, 0.02), sc("zero-copy", 0, 0.01)],
            comparisons: vec![BenchComparison {
                strategy: "coll-dedup".into(),
                k: 2,
                staged_bytes_copied: 2 << 20,
                zero_copy_bytes_copied: 0,
                copy_reduction_percent: 100.0,
                staged_dump_seconds: 0.02,
                zero_copy_dump_seconds: 0.01,
                dump_time_no_worse: true,
            }],
            chunker_matrix: vec![ChunkerScenario {
                workload: "shifted-dup".into(),
                strategy: "coll-dedup".into(),
                chunker: "gear".into(),
                k: 2,
                ranks: 8,
                input_bytes: 1 << 20,
                bytes_written_devices: 1 << 19,
                dedup_ratio: 4.0,
                chunking_mib_s: 900.0,
                dump_seconds: 0.01,
            }],
            chunker_comparisons: vec![ChunkerComparison {
                workload: "shifted-dup".into(),
                k: 2,
                chunker: "gear".into(),
                fixed_dedup_ratio: 1.0,
                cdc_dedup_ratio: 4.0,
                cdc_beats_fixed: true,
            }],
            policy_matrix: vec![PolicyScenario {
                workload: "HPCCG".into(),
                strategy: "coll-dedup".into(),
                policy: "rs4+2".into(),
                loss_tolerance: 2,
                ranks: 8,
                input_bytes: 1 << 20,
                bytes_written_devices: 3 << 19,
                parity_bytes: 1 << 19,
                chunks_coded: 200,
                dump_seconds: 0.01,
                restore_after_loss_verified: true,
            }],
            policy_comparisons: vec![PolicyComparison {
                workload: "HPCCG".into(),
                replicate_k: 3,
                replicate_bytes_devices: 3 << 20,
                rs_bytes_devices: 3 << 19,
                rs_beats_replication: true,
                no_dedup_parity_bytes: 1 << 20,
                coll_dedup_parity_bytes: 1 << 19,
                dedup_credit_cuts_parity: true,
            }],
            drill_matrix: vec![DrillScenario {
                scenario: "healer-crash".into(),
                strategy: "coll-dedup".into(),
                policy: "rs4+2".into(),
                ranks: 6,
                heal_steps: 17,
                heal_bytes: 1 << 20,
                recovery_ms: 42.0,
                baseline_dump_ms: 10.0,
                contended_dump_ms: 12.0,
                foreground_slowdown: 1.2,
                converged: true,
                restore_verified: true,
            }],
            ranks_matrix: vec![RanksRow {
                ranks: 408,
                strategy: "coll-dedup".into(),
                workers: 8,
                wall_seconds: 3.5,
                measured_wire_bytes: 1 << 24,
                measured_parity_bytes: 1 << 21,
                predicted_wire_bytes: (1 << 24) + (1 << 16),
                predicted_parity_bytes: 1 << 21,
                deviation_pct: 0.4,
                sim_within_band: true,
                modeled_seconds: 2.9,
            }],
        }
    }

    #[test]
    fn bench_report_json_round_trips_through_the_validator() {
        let doc = validate_bench_json(&sample_report().to_json()).expect("valid report");
        assert_eq!(
            doc.get("schema"),
            Some(&Json::Str(BENCH_SCHEMA.to_string()))
        );
        let Some(Json::Arr(scs)) = doc.get("scenarios") else {
            panic!("scenarios missing");
        };
        assert_eq!(scs.len(), 2);
        assert_eq!(scs[1].get("dump_bytes_copied"), Some(&Json::Num(0.0)));
    }

    #[test]
    fn validator_rejects_malformed_reports() {
        assert!(validate_bench_json("{}").is_err());
        assert!(validate_bench_json("not json").is_err());
        assert!(validate_bench_json("{\"schema\": \"other/v0\"}").is_err());
        // A report whose scenario list is empty is also rejected.
        let mut r = sample_report();
        r.scenarios.clear();
        assert!(validate_bench_json(&r.to_json()).is_err());
        // Dropping a required field must fail, not pass silently.
        let json = sample_report().to_json().replace("dump_bytes_copied", "x");
        assert!(validate_bench_json(&json).is_err());
        // An empty chunker matrix is rejected: v2 reports must carry the
        // dedup-quality evidence.
        let mut r = sample_report();
        r.chunker_matrix.clear();
        assert!(validate_bench_json(&r.to_json()).is_err());
        let json = sample_report().to_json().replace("dedup_ratio", "x");
        assert!(validate_bench_json(&json).is_err());
        // Likewise the v3 policy matrix and its headline booleans.
        let mut r = sample_report();
        r.policy_matrix.clear();
        assert!(validate_bench_json(&r.to_json()).is_err());
        let json = sample_report()
            .to_json()
            .replace("rs_beats_replication", "x");
        assert!(validate_bench_json(&json).is_err());
        let json = sample_report().to_json().replace("parity_bytes", "x");
        assert!(validate_bench_json(&json).is_err());
        // And the v4 drill matrix with its recovery evidence.
        let mut r = sample_report();
        r.drill_matrix.clear();
        assert!(validate_bench_json(&r.to_json()).is_err());
        let json = sample_report().to_json().replace("recovery_ms", "x");
        assert!(validate_bench_json(&json).is_err());
        let json = sample_report().to_json().replace("restore_verified", "x");
        assert!(validate_bench_json(&json).is_err());
        let json = sample_report().to_json().replace("\"converged\"", "\"x\"");
        assert!(validate_bench_json(&json).is_err());
        // And the v5 ranks matrix with its sim cross-check evidence.
        let mut r = sample_report();
        r.ranks_matrix.clear();
        assert!(validate_bench_json(&r.to_json()).is_err());
        let json = sample_report().to_json().replace("sim_within_band", "x");
        assert!(validate_bench_json(&json).is_err());
        let json = sample_report()
            .to_json()
            .replace("predicted_wire_bytes", "x");
        assert!(validate_bench_json(&json).is_err());
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a": ["A\n", {"b": -1.5e2}], "c": [true, false, null]}"#).unwrap();
        let Some(Json::Arr(a)) = v.get("a") else {
            panic!()
        };
        assert_eq!(a[0], Json::Str("A\n".into()));
        assert_eq!(a[1].get("b"), Some(&Json::Num(-150.0)));
        assert!(parse_json("{\"a\": 1} trailing").is_err());
        assert!(parse_json("[1, 2").is_err());
    }
}
