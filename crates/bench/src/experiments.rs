//! The experiment harness: one function per table/figure of the paper.
//!
//! Every experiment follows the same recipe:
//! 1. generate checkpoint buffers by running the real mini-app,
//! 2. run the collective dump in-process and *measure* bytes/chunks,
//! 3. feed the measurements to the Shamrock cost model to recover
//!    paper-scale times (volume inflated by the documented scale factor,
//!    dedup ratios taken as measured).
//!
//! The returned structs carry everything the `repro` binary prints and the
//! CSV writers serialize, so integration tests can assert the paper's
//! qualitative claims (who wins, by roughly what factor) directly.

use replidedup_core::{DumpConfig, Replicator, Strategy, WorldDumpStats};
use replidedup_hash::Sha1ChunkHasher;
use replidedup_mpi::{World, WorldConfig, WorldTrace};
use replidedup_sim::{AppScenario, ClusterModel, DumpMeasurement, CM1, HPCCG};
use replidedup_storage::{Cluster, Placement};

use crate::workloads::{make_buffers, AppKind};

/// Ranks per node, as on the paper's testbed.
pub const RANKS_PER_NODE: u32 = 12;

/// Outcome of one in-process collective dump.
#[derive(Debug)]
pub struct DumpRun {
    /// World-level per-rank statistics.
    pub stats: WorldDumpStats,
    /// Unique bytes held across all node stores after the dump.
    pub cluster_unique_bytes: u64,
    /// Raw device usage across all nodes after the dump.
    pub cluster_device_bytes: u64,
}

/// Run one collective dump over pre-generated buffers.
pub fn dump_world(buffers: &[Vec<u8>], cfg: DumpConfig) -> DumpRun {
    let n = buffers.len() as u32;
    let cluster = Cluster::new(Placement::pack(n, RANKS_PER_NODE));
    let repl = Replicator::builder(cfg.strategy)
        .with_config(cfg)
        .cluster(&cluster)
        .hasher(&Sha1ChunkHasher)
        .build()
        .expect("experiment configs are valid");
    let out = World::run(n, |comm| {
        repl.dump(comm, 1, &buffers[comm.rank() as usize])
            .expect("dump succeeds")
    });
    DumpRun {
        stats: WorldDumpStats::from_ranks(cfg.strategy, cfg.chunk_size, out.results),
        cluster_unique_bytes: cluster.total_unique_bytes(),
        cluster_device_bytes: cluster.total_device_bytes(),
    }
}

/// Run one collective dump with per-rank phase tracing switched on;
/// returns the run plus the world-aggregated trace (min/median/max per
/// Algorithm-1 phase across ranks).
pub fn dump_world_traced(buffers: &[Vec<u8>], cfg: DumpConfig) -> (DumpRun, WorldTrace) {
    let n = buffers.len() as u32;
    let cluster = Cluster::new(Placement::pack(n, RANKS_PER_NODE));
    let repl = Replicator::builder(cfg.strategy)
        .with_config(cfg)
        .cluster(&cluster)
        .hasher(&Sha1ChunkHasher)
        .build()
        .expect("experiment configs are valid");
    let out = World::run_with(n, &WorldConfig::traced(), |comm| {
        repl.dump(comm, 1, &buffers[comm.rank() as usize])
            .expect("dump succeeds")
    });
    let trace = out.trace.expect("tracing was enabled");
    let run = DumpRun {
        stats: WorldDumpStats::from_ranks(cfg.strategy, cfg.chunk_size, out.results),
        cluster_unique_bytes: cluster.total_unique_bytes(),
        cluster_device_bytes: cluster.total_device_bytes(),
    };
    (run, trace)
}

fn scenario_of(app: AppKind) -> AppScenario {
    match app {
        AppKind::Hpccg { .. } => HPCCG,
        AppKind::Cm1 { .. } => CM1,
        // Synthetic and CDC micro-workloads reuse the HPCCG envelope.
        AppKind::Synthetic(_) | AppKind::ShiftedDup { .. } | AppKind::InsertHeavy { .. } => HPCCG,
    }
}

fn measured_bytes_per_rank(stats: &WorldDumpStats) -> u64 {
    let n = stats.ranks.len().max(1) as u64;
    stats.total_data_bytes() / n
}

/// Modeled paper-scale dump time for a measured run.
pub fn modeled_dump_seconds(app: AppKind, stats: &WorldDumpStats, f_threshold: u64) -> f64 {
    let scenario = scenario_of(app);
    let scale = scenario.scale_from(measured_bytes_per_rank(stats).max(1));
    let m = DumpMeasurement::from_stats(stats, f_threshold);
    ClusterModel::default().dump_time(&m, scale).total()
}

/// Strategy set of the evaluation, in the paper's order.
pub const STRATEGIES: [Strategy; 3] =
    [Strategy::NoDedup, Strategy::LocalDedup, Strategy::CollDedup];

// ------------------------------------------------------------------
// Figure 2 — partner-selection worked example
// ------------------------------------------------------------------

/// Figure 2 result: max receive size under naive vs load-aware selection.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2 {
    /// The shuffle the load-aware strategy computed.
    pub shuffle: Vec<u32>,
    /// Max chunks received by any rank, naive ring.
    pub naive_max: u64,
    /// Max chunks received by any rank, shuffled ring.
    pub shuffled_max: u64,
}

/// Reproduce Figure 2: six ranks, K=3, two heavy senders (100 chunks per
/// partner), four light ones (10 per partner).
pub fn fig2() -> Fig2 {
    use replidedup_core::{identity_shuffle, rank_shuffle, window_plan};
    let heavy = vec![0u64, 100, 100];
    let light = vec![0u64, 10, 10];
    let loads = vec![
        heavy.clone(),
        heavy,
        light.clone(),
        light.clone(),
        light.clone(),
        light,
    ];
    let max_recv = |shuffle: &[u32]| {
        window_plan(shuffle, &loads, 3)
            .recv_counts
            .into_iter()
            .max()
            .unwrap_or(0)
    };
    let shuffled = rank_shuffle(&loads, 3);
    Fig2 {
        naive_max: max_recv(&identity_shuffle(6)),
        shuffled_max: max_recv(&shuffled),
        shuffle: shuffled,
    }
}

// ------------------------------------------------------------------
// Figure 3(a) — total size of unique content
// ------------------------------------------------------------------

/// One bar group of Figure 3(a).
#[derive(Debug, Clone)]
pub struct Fig3aRow {
    /// Configuration label, e.g. "HPCCG-408".
    pub config: String,
    /// Total dataset size across ranks (== the no-dedup bar).
    pub total_bytes: u64,
    /// Unique content identified per strategy (paper order).
    pub unique_bytes: [u64; 3],
}

impl Fig3aRow {
    /// Unique content as a percentage of the dataset, per strategy.
    pub fn percent(&self) -> [f64; 3] {
        self.unique_bytes.map(|u| {
            if self.total_bytes == 0 {
                0.0
            } else {
                100.0 * u as f64 / self.total_bytes as f64
            }
        })
    }
}

/// Reproduce Figure 3(a): HPCCG-196, CM1-256, HPCCG-408, CM1-408.
pub fn fig3a(proc_scale: f64) -> Vec<Fig3aRow> {
    let configs = [
        (AppKind::hpccg(), 196u32),
        (AppKind::cm1(), 256),
        (AppKind::hpccg(), 408),
        (AppKind::cm1(), 408),
    ];
    configs
        .iter()
        .map(|&(app, procs)| {
            let n = scaled_procs(procs, proc_scale);
            let buffers = make_buffers(app, n);
            let mut unique = [0u64; 3];
            let mut total = 0u64;
            for (i, &strategy) in STRATEGIES.iter().enumerate() {
                let cfg = DumpConfig::paper_defaults(strategy);
                let run = dump_world(&buffers, cfg);
                unique[i] = run.stats.unique_content_bytes();
                total = run.stats.total_data_bytes();
            }
            Fig3aRow {
                config: format!("{}-{procs}", app.label()),
                total_bytes: total,
                unique_bytes: unique,
            }
        })
        .collect()
}

/// Scale a paper process count by `proc_scale` (quick mode runs smaller
/// worlds; 1.0 reproduces the paper's counts exactly).
pub fn scaled_procs(procs: u32, proc_scale: f64) -> u32 {
    ((f64::from(procs) * proc_scale).round() as u32).max(2)
}

// ------------------------------------------------------------------
// Figures 3(b)/3(c) — reduction overhead vs process count
// ------------------------------------------------------------------

/// One x-axis point of Figure 3(b) or 3(c).
#[derive(Debug, Clone)]
pub struct Fig3bcRow {
    /// Process count.
    pub procs: u32,
    /// Baseline: local dedup only (hash time, no collective reduction).
    pub local_seconds: f64,
    /// Hash + reduction time for K ∈ {2, 4, 6}.
    pub coll_seconds: [f64; 3],
}

/// Reproduce Figure 3(b) (HPCCG) or 3(c) (CM1): overhead of the collective
/// hash value reduction, threshold F = 2^17.
pub fn fig3bc(app: AppKind, proc_scale: f64) -> Vec<Fig3bcRow> {
    let proc_counts = [16u32, 64, 128, 196, 264, 408];
    let scenario = scenario_of(app);
    let model = ClusterModel::default();
    proc_counts
        .iter()
        .map(|&procs| {
            let n = scaled_procs(procs, proc_scale);
            let buffers = make_buffers(app, n);
            let mut coll = [0.0f64; 3];
            let mut local = 0.0;
            for (i, &k) in [2u32, 4, 6].iter().enumerate() {
                let cfg = DumpConfig::paper_defaults(Strategy::CollDedup).with_replication(k);
                let run = dump_world(&buffers, cfg);
                let scale = scenario.scale_from(measured_bytes_per_rank(&run.stats).max(1));
                let m = DumpMeasurement::from_stats(&run.stats, cfg.f_threshold as u64);
                let t = model.dump_time(&m, scale);
                coll[i] = t.hash + t.reduce;
                if i == 0 {
                    local = t.hash; // local dedup = hashing only, scale free
                }
            }
            Fig3bcRow {
                procs,
                local_seconds: local,
                coll_seconds: coll,
            }
        })
        .collect()
}

// ------------------------------------------------------------------
// Table I — completion time with a replication factor of 3
// ------------------------------------------------------------------

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Tab1Row {
    /// Process count (paper scale).
    pub procs: u32,
    /// Completion seconds for no-dedup / local-dedup / coll-dedup.
    pub completion: [f64; 3],
    /// Baseline (no checkpointing) completion seconds.
    pub baseline: f64,
}

impl Tab1Row {
    /// Checkpointing overhead over the baseline, per strategy.
    pub fn overhead(&self) -> [f64; 3] {
        self.completion.map(|c| c - self.baseline)
    }
}

/// Reproduce one application's half of Table I (K = 3).
pub fn tab1(app: AppKind, proc_scale: f64) -> Vec<Tab1Row> {
    let scenario = scenario_of(app);
    scenario
        .proc_counts
        .iter()
        .map(|&procs| {
            let n = scaled_procs(procs, proc_scale);
            let buffers = make_buffers(app, n);
            let mut completion = [0.0f64; 3];
            for (i, &strategy) in STRATEGIES.iter().enumerate() {
                let cfg = DumpConfig::paper_defaults(strategy);
                let run = dump_world(&buffers, cfg);
                let dump_s = modeled_dump_seconds(app, &run.stats, cfg.f_threshold as u64);
                completion[i] = scenario.completion_time(procs, dump_s);
            }
            Tab1Row {
                procs,
                completion,
                baseline: scenario.baseline.time(procs),
            }
        })
        .collect()
}

// ------------------------------------------------------------------
// Figures 4/5 (a,b) — replication-factor sweep at 408 processes
// ------------------------------------------------------------------

/// One K point of Figures 4(a)+4(b) or 5(a)+5(b).
#[derive(Debug, Clone)]
pub struct FigKRow {
    /// Replication factor.
    pub k: u32,
    /// Increase in execution time over the baseline, per strategy (s).
    pub overhead_seconds: [f64; 3],
    /// Average replica bytes sent per process (paper scale), per strategy.
    pub avg_sent: [f64; 3],
    /// Maximum replica bytes sent by any process (paper scale).
    pub max_sent: [f64; 3],
}

/// Reproduce Figures 4(a,b) (HPCCG) or 5(a,b) (CM1): K = 1..6 at 408
/// processes.
pub fn fig_k_sweep(app: AppKind, proc_scale: f64) -> Vec<FigKRow> {
    let scenario = scenario_of(app);
    let n = scaled_procs(408, proc_scale);
    let buffers = make_buffers(app, n);
    (1..=6u32)
        .map(|k| {
            let mut overhead = [0.0f64; 3];
            let mut avg_sent = [0.0f64; 3];
            let mut max_sent = [0.0f64; 3];
            for (i, &strategy) in STRATEGIES.iter().enumerate() {
                let cfg = DumpConfig::paper_defaults(strategy).with_replication(k);
                let run = dump_world(&buffers, cfg);
                let scale = scenario.scale_from(measured_bytes_per_rank(&run.stats).max(1));
                let dump_s = modeled_dump_seconds(app, &run.stats, cfg.f_threshold as u64);
                overhead[i] = f64::from(scenario.checkpoints) * dump_s;
                avg_sent[i] = run.stats.avg_sent_bytes() * scale;
                max_sent[i] = run.stats.max_sent_bytes() as f64 * scale;
            }
            FigKRow {
                k,
                overhead_seconds: overhead,
                avg_sent,
                max_sent,
            }
        })
        .collect()
}

// ------------------------------------------------------------------
// Figures 4(c)/5(c) — impact of rank shuffling
// ------------------------------------------------------------------

/// One K point of Figure 4(c) or 5(c).
#[derive(Debug, Clone)]
pub struct FigShuffleRow {
    /// Replication factor.
    pub k: u32,
    /// Max bytes received by any process without shuffling (paper scale).
    pub no_shuffle_max_recv: f64,
    /// Max bytes received by any process with shuffling (paper scale).
    pub shuffle_max_recv: f64,
}

impl FigShuffleRow {
    /// Reduction of the maximal receive size thanks to shuffling (%).
    pub fn reduction_percent(&self) -> f64 {
        if self.no_shuffle_max_recv == 0.0 {
            0.0
        } else {
            100.0 * (1.0 - self.shuffle_max_recv / self.no_shuffle_max_recv)
        }
    }
}

/// Reproduce Figure 4(c) (HPCCG) or 5(c) (CM1): coll-dedup max receive
/// size with and without rank shuffling, K = 2..6 at 408 processes.
pub fn fig_shuffle(app: AppKind, proc_scale: f64) -> Vec<FigShuffleRow> {
    let scenario = scenario_of(app);
    let n = scaled_procs(408, proc_scale);
    let buffers = make_buffers(app, n);
    (2..=6u32)
        .map(|k| {
            let mut max_recv = [0.0f64; 2];
            for (i, shuffle) in [false, true].into_iter().enumerate() {
                let cfg = DumpConfig::paper_defaults(Strategy::CollDedup)
                    .with_replication(k)
                    .with_shuffle(shuffle);
                let run = dump_world(&buffers, cfg);
                let scale = scenario.scale_from(measured_bytes_per_rank(&run.stats).max(1));
                max_recv[i] = run.stats.max_recv_bytes() as f64 * scale;
            }
            FigShuffleRow {
                k,
                no_shuffle_max_recv: max_recv[0],
                shuffle_max_recv: max_recv[1],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_matches_paper_numbers() {
        let f = fig2();
        assert_eq!(f.naive_max, 200);
        assert_eq!(f.shuffled_max, 110);
    }

    #[test]
    fn dump_world_shares_buffers_across_strategies() {
        let buffers = make_buffers(AppKind::hpccg(), 4);
        let a = dump_world(&buffers, DumpConfig::paper_defaults(Strategy::LocalDedup));
        let b = dump_world(&buffers, DumpConfig::paper_defaults(Strategy::CollDedup));
        assert_eq!(a.stats.total_data_bytes(), b.stats.total_data_bytes());
        assert!(b.stats.unique_content_bytes() <= a.stats.unique_content_bytes());
    }

    #[test]
    fn scaled_procs_rounds_and_clamps() {
        assert_eq!(scaled_procs(408, 1.0), 408);
        assert_eq!(scaled_procs(408, 0.1), 41);
        assert_eq!(scaled_procs(12, 0.05), 2);
    }

    #[test]
    fn tab1_small_scale_orders_strategies() {
        let rows = tab1(AppKind::hpccg(), 0.06); // ~25 procs max
        for row in &rows[1..] {
            // no-dedup ≥ local-dedup ≥ coll-dedup ≥ baseline.
            assert!(row.completion[0] >= row.completion[1], "{row:?}");
            assert!(row.completion[1] >= row.completion[2], "{row:?}");
            assert!(row.completion[2] >= row.baseline, "{row:?}");
        }
    }

    #[test]
    fn shuffle_reduces_or_matches_max_receive() {
        let rows = fig_shuffle(AppKind::cm1(), 0.08); // ~33 procs
        for row in &rows {
            assert!(
                row.shuffle_max_recv <= row.no_shuffle_max_recv * 1.05,
                "k={}: shuffle made things clearly worse: {row:?}",
                row.k
            );
        }
    }
}
