//! The experiment harness: one function per table/figure of the paper.
//!
//! Every experiment follows the same recipe:
//! 1. generate checkpoint buffers by running the real mini-app,
//! 2. run the collective dump in-process and *measure* bytes/chunks,
//! 3. feed the measurements to the Shamrock cost model to recover
//!    paper-scale times (volume inflated by the documented scale factor,
//!    dedup ratios taken as measured).
//!
//! The returned structs carry everything the `repro` binary prints and the
//! CSV writers serialize, so integration tests can assert the paper's
//! qualitative claims (who wins, by roughly what factor) directly.

use std::num::NonZeroUsize;
use std::time::Instant;

use replidedup_apps::SyntheticWorkload;
use replidedup_core::{DumpConfig, RedundancyPolicy, Replicator, Strategy, WorldDumpStats};
use replidedup_hash::Sha1ChunkHasher;
use replidedup_mpi::{RankTraffic, WorldConfig, WorldTrace};
use replidedup_sim::{AppScenario, ClusterModel, DumpMeasurement, CM1, HPCCG};
use replidedup_storage::{Cluster, Placement};

use crate::workloads::{make_buffers, AppKind};

/// Ranks per node, as on the paper's testbed.
pub const RANKS_PER_NODE: u32 = 12;

/// Outcome of one in-process collective dump.
#[derive(Debug)]
pub struct DumpRun {
    /// World-level per-rank statistics.
    pub stats: WorldDumpStats,
    /// Unique bytes held across all node stores after the dump.
    pub cluster_unique_bytes: u64,
    /// Raw device usage across all nodes after the dump.
    pub cluster_device_bytes: u64,
}

/// Run one collective dump over pre-generated buffers.
pub fn dump_world(buffers: &[Vec<u8>], cfg: DumpConfig) -> DumpRun {
    let n = buffers.len() as u32;
    let cluster = Cluster::new(Placement::pack(n, RANKS_PER_NODE));
    let repl = Replicator::builder(cfg.strategy)
        .with_config(cfg)
        .cluster(&cluster)
        .hasher(&Sha1ChunkHasher)
        .build()
        .expect("experiment configs are valid");
    let out = WorldConfig::default()
        .launch(n, |comm| {
            repl.dump(comm, 1, &buffers[comm.rank() as usize])
                .expect("dump succeeds")
        })
        .expect_all();
    DumpRun {
        stats: WorldDumpStats::from_ranks(cfg.strategy, cfg.chunk_size, out.results),
        cluster_unique_bytes: cluster.total_unique_bytes(),
        cluster_device_bytes: cluster.total_device_bytes(),
    }
}

/// Run one collective dump with per-rank phase tracing switched on;
/// returns the run plus the world-aggregated trace (min/median/max per
/// Algorithm-1 phase across ranks).
pub fn dump_world_traced(buffers: &[Vec<u8>], cfg: DumpConfig) -> (DumpRun, WorldTrace) {
    let n = buffers.len() as u32;
    let cluster = Cluster::new(Placement::pack(n, RANKS_PER_NODE));
    let repl = Replicator::builder(cfg.strategy)
        .with_config(cfg)
        .cluster(&cluster)
        .hasher(&Sha1ChunkHasher)
        .build()
        .expect("experiment configs are valid");
    let out = WorldConfig::traced()
        .launch(n, |comm| {
            repl.dump(comm, 1, &buffers[comm.rank() as usize])
                .expect("dump succeeds")
        })
        .expect_all();
    let trace = out.trace.expect("tracing was enabled");
    let run = DumpRun {
        stats: WorldDumpStats::from_ranks(cfg.strategy, cfg.chunk_size, out.results),
        cluster_unique_bytes: cluster.total_unique_bytes(),
        cluster_device_bytes: cluster.total_device_bytes(),
    };
    (run, trace)
}

fn scenario_of(app: AppKind) -> AppScenario {
    match app {
        AppKind::Hpccg { .. } => HPCCG,
        AppKind::Cm1 { .. } => CM1,
        // Synthetic and CDC micro-workloads reuse the HPCCG envelope.
        AppKind::Synthetic(_) | AppKind::ShiftedDup { .. } | AppKind::InsertHeavy { .. } => HPCCG,
    }
}

fn measured_bytes_per_rank(stats: &WorldDumpStats) -> u64 {
    let n = stats.ranks.len().max(1) as u64;
    stats.total_data_bytes() / n
}

/// Modeled paper-scale dump time for a measured run.
pub fn modeled_dump_seconds(app: AppKind, stats: &WorldDumpStats, f_threshold: u64) -> f64 {
    let scenario = scenario_of(app);
    let scale = scenario.scale_from(measured_bytes_per_rank(stats).max(1));
    let m = DumpMeasurement::from_stats(stats, f_threshold);
    ClusterModel::default().dump_time(&m, scale).total()
}

/// Strategy set of the evaluation, in the paper's order.
pub const STRATEGIES: [Strategy; 3] =
    [Strategy::NoDedup, Strategy::LocalDedup, Strategy::CollDedup];

// ------------------------------------------------------------------
// Figure 2 — partner-selection worked example
// ------------------------------------------------------------------

/// Figure 2 result: max receive size under naive vs load-aware selection.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2 {
    /// The shuffle the load-aware strategy computed.
    pub shuffle: Vec<u32>,
    /// Max chunks received by any rank, naive ring.
    pub naive_max: u64,
    /// Max chunks received by any rank, shuffled ring.
    pub shuffled_max: u64,
}

/// Reproduce Figure 2: six ranks, K=3, two heavy senders (100 chunks per
/// partner), four light ones (10 per partner).
pub fn fig2() -> Fig2 {
    use replidedup_core::{identity_shuffle, rank_shuffle, window_plan};
    let heavy = vec![0u64, 100, 100];
    let light = vec![0u64, 10, 10];
    let loads = vec![
        heavy.clone(),
        heavy,
        light.clone(),
        light.clone(),
        light.clone(),
        light,
    ];
    let max_recv = |shuffle: &[u32]| {
        window_plan(shuffle, &loads, 3)
            .recv_counts
            .into_iter()
            .max()
            .unwrap_or(0)
    };
    let shuffled = rank_shuffle(&loads, 3);
    Fig2 {
        naive_max: max_recv(&identity_shuffle(6)),
        shuffled_max: max_recv(&shuffled),
        shuffle: shuffled,
    }
}

// ------------------------------------------------------------------
// Figure 3(a) — total size of unique content
// ------------------------------------------------------------------

/// One bar group of Figure 3(a).
#[derive(Debug, Clone)]
pub struct Fig3aRow {
    /// Configuration label, e.g. "HPCCG-408".
    pub config: String,
    /// Total dataset size across ranks (== the no-dedup bar).
    pub total_bytes: u64,
    /// Unique content identified per strategy (paper order).
    pub unique_bytes: [u64; 3],
}

impl Fig3aRow {
    /// Unique content as a percentage of the dataset, per strategy.
    pub fn percent(&self) -> [f64; 3] {
        self.unique_bytes.map(|u| {
            if self.total_bytes == 0 {
                0.0
            } else {
                100.0 * u as f64 / self.total_bytes as f64
            }
        })
    }
}

/// Reproduce Figure 3(a): HPCCG-196, CM1-256, HPCCG-408, CM1-408.
pub fn fig3a(proc_scale: f64) -> Vec<Fig3aRow> {
    let configs = [
        (AppKind::hpccg(), 196u32),
        (AppKind::cm1(), 256),
        (AppKind::hpccg(), 408),
        (AppKind::cm1(), 408),
    ];
    configs
        .iter()
        .map(|&(app, procs)| {
            let n = scaled_procs(procs, proc_scale);
            let buffers = make_buffers(app, n);
            let mut unique = [0u64; 3];
            let mut total = 0u64;
            for (i, &strategy) in STRATEGIES.iter().enumerate() {
                let cfg = DumpConfig::paper_defaults(strategy);
                let run = dump_world(&buffers, cfg);
                unique[i] = run.stats.unique_content_bytes();
                total = run.stats.total_data_bytes();
            }
            Fig3aRow {
                config: format!("{}-{procs}", app.label()),
                total_bytes: total,
                unique_bytes: unique,
            }
        })
        .collect()
}

/// Scale a paper process count by `proc_scale` (quick mode runs smaller
/// worlds; 1.0 reproduces the paper's counts exactly).
pub fn scaled_procs(procs: u32, proc_scale: f64) -> u32 {
    ((f64::from(procs) * proc_scale).round() as u32).max(2)
}

// ------------------------------------------------------------------
// Figures 3(b)/3(c) — reduction overhead vs process count
// ------------------------------------------------------------------

/// One x-axis point of Figure 3(b) or 3(c).
#[derive(Debug, Clone)]
pub struct Fig3bcRow {
    /// Process count.
    pub procs: u32,
    /// Baseline: local dedup only (hash time, no collective reduction).
    pub local_seconds: f64,
    /// Hash + reduction time for K ∈ {2, 4, 6}.
    pub coll_seconds: [f64; 3],
}

/// Reproduce Figure 3(b) (HPCCG) or 3(c) (CM1): overhead of the collective
/// hash value reduction, threshold F = 2^17.
pub fn fig3bc(app: AppKind, proc_scale: f64) -> Vec<Fig3bcRow> {
    let proc_counts = [16u32, 64, 128, 196, 264, 408];
    let scenario = scenario_of(app);
    let model = ClusterModel::default();
    proc_counts
        .iter()
        .map(|&procs| {
            let n = scaled_procs(procs, proc_scale);
            let buffers = make_buffers(app, n);
            let mut coll = [0.0f64; 3];
            let mut local = 0.0;
            for (i, &k) in [2u32, 4, 6].iter().enumerate() {
                let cfg = DumpConfig::paper_defaults(Strategy::CollDedup).with_replication(k);
                let run = dump_world(&buffers, cfg);
                let scale = scenario.scale_from(measured_bytes_per_rank(&run.stats).max(1));
                let m = DumpMeasurement::from_stats(&run.stats, cfg.f_threshold as u64);
                let t = model.dump_time(&m, scale);
                coll[i] = t.hash + t.reduce;
                if i == 0 {
                    local = t.hash; // local dedup = hashing only, scale free
                }
            }
            Fig3bcRow {
                procs,
                local_seconds: local,
                coll_seconds: coll,
            }
        })
        .collect()
}

// ------------------------------------------------------------------
// Table I — completion time with a replication factor of 3
// ------------------------------------------------------------------

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Tab1Row {
    /// Process count (paper scale).
    pub procs: u32,
    /// Completion seconds for no-dedup / local-dedup / coll-dedup.
    pub completion: [f64; 3],
    /// Baseline (no checkpointing) completion seconds.
    pub baseline: f64,
}

impl Tab1Row {
    /// Checkpointing overhead over the baseline, per strategy.
    pub fn overhead(&self) -> [f64; 3] {
        self.completion.map(|c| c - self.baseline)
    }
}

/// Reproduce one application's half of Table I (K = 3).
pub fn tab1(app: AppKind, proc_scale: f64) -> Vec<Tab1Row> {
    let scenario = scenario_of(app);
    scenario
        .proc_counts
        .iter()
        .map(|&procs| {
            let n = scaled_procs(procs, proc_scale);
            let buffers = make_buffers(app, n);
            let mut completion = [0.0f64; 3];
            for (i, &strategy) in STRATEGIES.iter().enumerate() {
                let cfg = DumpConfig::paper_defaults(strategy);
                let run = dump_world(&buffers, cfg);
                let dump_s = modeled_dump_seconds(app, &run.stats, cfg.f_threshold as u64);
                completion[i] = scenario.completion_time(procs, dump_s);
            }
            Tab1Row {
                procs,
                completion,
                baseline: scenario.baseline.time(procs),
            }
        })
        .collect()
}

// ------------------------------------------------------------------
// Figures 4/5 (a,b) — replication-factor sweep at 408 processes
// ------------------------------------------------------------------

/// One K point of Figures 4(a)+4(b) or 5(a)+5(b).
#[derive(Debug, Clone)]
pub struct FigKRow {
    /// Replication factor.
    pub k: u32,
    /// Increase in execution time over the baseline, per strategy (s).
    pub overhead_seconds: [f64; 3],
    /// Average replica bytes sent per process (paper scale), per strategy.
    pub avg_sent: [f64; 3],
    /// Maximum replica bytes sent by any process (paper scale).
    pub max_sent: [f64; 3],
}

/// Reproduce Figures 4(a,b) (HPCCG) or 5(a,b) (CM1): K = 1..6 at 408
/// processes.
pub fn fig_k_sweep(app: AppKind, proc_scale: f64) -> Vec<FigKRow> {
    let scenario = scenario_of(app);
    let n = scaled_procs(408, proc_scale);
    let buffers = make_buffers(app, n);
    (1..=6u32)
        .map(|k| {
            let mut overhead = [0.0f64; 3];
            let mut avg_sent = [0.0f64; 3];
            let mut max_sent = [0.0f64; 3];
            for (i, &strategy) in STRATEGIES.iter().enumerate() {
                let cfg = DumpConfig::paper_defaults(strategy).with_replication(k);
                let run = dump_world(&buffers, cfg);
                let scale = scenario.scale_from(measured_bytes_per_rank(&run.stats).max(1));
                let dump_s = modeled_dump_seconds(app, &run.stats, cfg.f_threshold as u64);
                overhead[i] = f64::from(scenario.checkpoints) * dump_s;
                avg_sent[i] = run.stats.avg_sent_bytes() * scale;
                max_sent[i] = run.stats.max_sent_bytes() as f64 * scale;
            }
            FigKRow {
                k,
                overhead_seconds: overhead,
                avg_sent,
                max_sent,
            }
        })
        .collect()
}

// ------------------------------------------------------------------
// Figures 4(c)/5(c) — impact of rank shuffling
// ------------------------------------------------------------------

/// One K point of Figure 4(c) or 5(c).
#[derive(Debug, Clone)]
pub struct FigShuffleRow {
    /// Replication factor.
    pub k: u32,
    /// Max bytes received by any process without shuffling (paper scale).
    pub no_shuffle_max_recv: f64,
    /// Max bytes received by any process with shuffling (paper scale).
    pub shuffle_max_recv: f64,
}

impl FigShuffleRow {
    /// Reduction of the maximal receive size thanks to shuffling (%).
    pub fn reduction_percent(&self) -> f64 {
        if self.no_shuffle_max_recv == 0.0 {
            0.0
        } else {
            100.0 * (1.0 - self.shuffle_max_recv / self.no_shuffle_max_recv)
        }
    }
}

/// Reproduce Figure 4(c) (HPCCG) or 5(c) (CM1): coll-dedup max receive
/// size with and without rank shuffling, K = 2..6 at 408 processes.
pub fn fig_shuffle(app: AppKind, proc_scale: f64) -> Vec<FigShuffleRow> {
    let scenario = scenario_of(app);
    let n = scaled_procs(408, proc_scale);
    let buffers = make_buffers(app, n);
    (2..=6u32)
        .map(|k| {
            let mut max_recv = [0.0f64; 2];
            for (i, shuffle) in [false, true].into_iter().enumerate() {
                let cfg = DumpConfig::paper_defaults(Strategy::CollDedup)
                    .with_replication(k)
                    .with_shuffle(shuffle);
                let run = dump_world(&buffers, cfg);
                let scale = scenario.scale_from(measured_bytes_per_rank(&run.stats).max(1));
                max_recv[i] = run.stats.max_recv_bytes() as f64 * scale;
            }
            FigShuffleRow {
                k,
                no_shuffle_max_recv: max_recv[0],
                shuffle_max_recv: max_recv[1],
            }
        })
        .collect()
}

// ------------------------------------------------------------------
// Ranks sweep — pooled scheduler scale-out, validated against the model
// ------------------------------------------------------------------

/// World sizes of the scale-out sweep: small sanity points, the paper's
/// 408-process configuration, and a 512-rank headroom point.
pub const RANKS_SWEEP_POINTS: [u32; 7] = [8, 32, 64, 128, 256, 408, 512];

/// Agreement band between the transport-layer traffic measurement and the
/// content-level prediction, in percent. The gap between the two
/// accounting paths is wire frame headers and per-record control bytes
/// the content counters cannot see; empirically the paths agree to a few
/// percent, so 15% flags a real leak, not noise.
pub const SIM_TRAFFIC_BAND_PCT: f64 = 15.0;

/// The four strategy settings of the paper's evaluation, as
/// `(label, strategy, shuffle)`: the three [`Strategy`] values plus the
/// `coll-no-shuffle` ablation.
pub const RANKS_SWEEP_STRATEGIES: [(&str, Strategy, bool); 4] = [
    ("no-dedup", Strategy::NoDedup, true),
    ("local-dedup", Strategy::LocalDedup, true),
    ("coll-dedup", Strategy::CollDedup, true),
    ("coll-no-shuffle", Strategy::CollDedup, false),
];

/// One `(ranks, strategy)` cell of the scale-out sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RanksRow {
    /// World size of this run.
    pub ranks: u32,
    /// Strategy label (paper naming, incl. `coll-no-shuffle`).
    pub strategy: String,
    /// Worker-pool slots the scheduler multiplexed the ranks onto.
    pub workers: usize,
    /// Wall-clock seconds of the in-process dump collective.
    pub wall_seconds: f64,
    /// Transport-layer wire bytes: point-to-point sends plus RMA puts,
    /// summed over ranks (collective traffic excluded — the cross-check
    /// targets the replication/stripe exchange).
    pub measured_wire_bytes: u64,
    /// Parity bytes at rest on the cluster's devices after the dump.
    pub measured_parity_bytes: u64,
    /// Content-level predicted wire bytes (replication + stripe fan-out).
    pub predicted_wire_bytes: u64,
    /// Content-level predicted parity bytes.
    pub predicted_parity_bytes: u64,
    /// Symmetric deviation between measurement and prediction (%).
    pub deviation_pct: f64,
    /// Did measurement and prediction agree within
    /// [`SIM_TRAFFIC_BAND_PCT`]?
    pub sim_within_band: bool,
    /// Paper-scale modeled dump seconds for this measured run.
    pub modeled_seconds: f64,
}

/// The sweep's checkpoint content: a dialed-in synthetic workload whose
/// per-rank buffer (~120 KiB) mixes globally shared, group-shared,
/// rank-private and locally repeated chunks, so every strategy and the
/// erasure coder all have work to do at every world size.
pub fn ranks_sweep_workload(chunk_size: usize) -> SyntheticWorkload {
    SyntheticWorkload {
        chunk_size,
        global_chunks: 4,
        grouped_chunks: 8,
        group_size: 4,
        private_chunks: 12,
        local_dup_chunks: 2,
        local_repeat: 3,
        seed: 0x5241_4e4b_5357_5045, // b"RANKSWPE"
    }
}

/// Dump configuration of the sweep: paper defaults for the strategy, the
/// requested shuffle setting, and the `Auto` redundancy policy (RS 4+2,
/// tiny chunks replicated) so parity traffic is exercised — the paper's
/// dedup credit makes coll-dedup generate strictly less of it.
pub fn ranks_sweep_config(strategy: Strategy, shuffle: bool) -> DumpConfig {
    DumpConfig::paper_defaults(strategy)
        .with_shuffle(shuffle)
        .with_policy(RedundancyPolicy::Auto {
            k: 4,
            m: 2,
            replicate_below: 1024,
        })
}

/// Default worker-pool width for the sweep: the host's parallelism, but
/// at least 4 so even single-core CI runs exercise real cross-worker
/// multiplexing (park points make oversubscription safe either way).
pub fn default_sweep_workers() -> usize {
    std::thread::available_parallelism()
        .map_or(4, NonZeroUsize::get)
        .max(4)
}

/// Run one `(ranks, strategy)` cell of the sweep on a pooled scheduler.
pub fn ranks_run(ranks: u32, label: &str, strategy: Strategy, shuffle: bool) -> RanksRow {
    let cfg = ranks_sweep_config(strategy, shuffle);
    let buffers: Vec<Vec<u8>> = {
        let w = ranks_sweep_workload(cfg.chunk_size);
        (0..ranks).map(|r| w.generate(r)).collect()
    };
    let cluster = Cluster::new(Placement::pack(ranks, RANKS_PER_NODE));
    let repl = Replicator::builder(cfg.strategy)
        .with_config(cfg)
        .cluster(&cluster)
        .hasher(&Sha1ChunkHasher)
        .build()
        .expect("sweep configs are valid");
    let workers = default_sweep_workers();
    let world = WorldConfig::default().with_workers(workers);
    let t0 = Instant::now();
    let out = world
        .launch(ranks, |comm| {
            repl.dump(comm, 1, &buffers[comm.rank() as usize])
                .expect("sweep dump succeeds")
        })
        .expect_all();
    let wall_seconds = t0.elapsed().as_secs_f64();

    let measured_wire_bytes = out
        .traffic
        .ranks
        .iter()
        .map(|r: &RankTraffic| r.p2p_sent + r.rma_put)
        .sum();
    let measured_parity_bytes = cluster.total_parity_bytes();

    // Every sweep cell proves itself: a pooled restore must hand every
    // rank its bytes back exactly (outside the timed window).
    let restored = world
        .launch(ranks, |comm| {
            Vec::from(repl.restore(comm, 1).expect("sweep restore succeeds"))
        })
        .expect_all();
    for (rank, bytes) in restored.results.iter().enumerate() {
        assert!(
            *bytes == buffers[rank],
            "{label} at {ranks} ranks: rank {rank} restored wrong bytes on the pooled scheduler"
        );
    }

    let stats = WorldDumpStats::from_ranks(cfg.strategy, cfg.chunk_size, out.results);
    let f_threshold = cfg.f_threshold as u64;
    let m = DumpMeasurement::from_stats(&stats, f_threshold);
    let pred = ClusterModel::default().predicted_traffic(&m);
    RanksRow {
        ranks,
        strategy: label.to_string(),
        workers,
        wall_seconds,
        measured_wire_bytes,
        measured_parity_bytes,
        predicted_wire_bytes: pred.wire_bytes(),
        predicted_parity_bytes: pred.parity_bytes,
        deviation_pct: pred.deviation_pct(measured_wire_bytes, measured_parity_bytes),
        sim_within_band: pred.within_band(
            measured_wire_bytes,
            measured_parity_bytes,
            SIM_TRAFFIC_BAND_PCT,
        ),
        modeled_seconds: modeled_dump_seconds(
            AppKind::Synthetic(ranks_sweep_workload(cfg.chunk_size)),
            &stats,
            f_threshold,
        ),
    }
}

/// The full scale-out sweep: every strategy setting at every point of
/// `points`, each run multiplexed onto the pooled scheduler.
pub fn ranks_sweep(points: &[u32]) -> Vec<RanksRow> {
    points
        .iter()
        .flat_map(|&ranks| {
            RANKS_SWEEP_STRATEGIES
                .iter()
                .map(move |&(label, strategy, shuffle)| ranks_run(ranks, label, strategy, shuffle))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_matches_paper_numbers() {
        let f = fig2();
        assert_eq!(f.naive_max, 200);
        assert_eq!(f.shuffled_max, 110);
    }

    #[test]
    fn dump_world_shares_buffers_across_strategies() {
        let buffers = make_buffers(AppKind::hpccg(), 4);
        let a = dump_world(&buffers, DumpConfig::paper_defaults(Strategy::LocalDedup));
        let b = dump_world(&buffers, DumpConfig::paper_defaults(Strategy::CollDedup));
        assert_eq!(a.stats.total_data_bytes(), b.stats.total_data_bytes());
        assert!(b.stats.unique_content_bytes() <= a.stats.unique_content_bytes());
    }

    #[test]
    fn scaled_procs_rounds_and_clamps() {
        assert_eq!(scaled_procs(408, 1.0), 408);
        assert_eq!(scaled_procs(408, 0.1), 41);
        assert_eq!(scaled_procs(12, 0.05), 2);
    }

    #[test]
    fn tab1_small_scale_orders_strategies() {
        let rows = tab1(AppKind::hpccg(), 0.06); // ~25 procs max
        for row in &rows[1..] {
            // no-dedup ≥ local-dedup ≥ coll-dedup ≥ baseline.
            assert!(row.completion[0] >= row.completion[1], "{row:?}");
            assert!(row.completion[1] >= row.completion[2], "{row:?}");
            assert!(row.completion[2] >= row.baseline, "{row:?}");
        }
    }

    #[test]
    fn ranks_sweep_cross_checks_traffic_within_band() {
        for row in ranks_sweep(&[16]) {
            assert!(
                row.sim_within_band,
                "measured vs predicted traffic diverged: {row:?}"
            );
            assert!(row.measured_wire_bytes > 0, "{row:?}");
            assert!(
                row.measured_parity_bytes > 0,
                "the Auto policy must generate parity: {row:?}"
            );
        }
    }

    #[test]
    fn coll_dedup_sends_less_than_no_dedup_at_scale() {
        let rows = ranks_sweep(&[24]);
        let wire = |label: &str| {
            rows.iter()
                .find(|r| r.strategy == label)
                .map(|r| r.measured_wire_bytes)
                .unwrap()
        };
        assert!(wire("coll-dedup") < wire("no-dedup"));
        assert!(wire("coll-dedup") <= wire("local-dedup"));
    }

    #[test]
    fn shuffle_reduces_or_matches_max_receive() {
        let rows = fig_shuffle(AppKind::cm1(), 0.08); // ~33 procs
        for row in &rows {
            assert!(
                row.shuffle_max_recv <= row.no_shuffle_max_recv * 1.05,
                "k={}: shuffle made things clearly worse: {row:?}",
                row.k
            );
        }
    }
}
