//! Scripted recovery drills: fail → heal under live traffic → verify.
//!
//! Each drill row runs one operator playbook end to end against a fresh
//! cluster: dump a target generation, time a foreground dump alone on
//! the healthy cluster (the baseline), inject the scenario's damage,
//! then race a **rate-limited background healer** of the target
//! generation against a foreground dump of the next generation — two
//! worlds, two thread pools, one cluster, exactly like the continuous
//! healing deployment of DESIGN.md §16. The row records the healer's
//! wall time (`recovery_ms`), the payload it moved (`heal_bytes`), and
//! the foreground dump's contended-vs-baseline slowdown, then verifies
//! both the healed and the freshly dumped generation byte-exactly.
//!
//! Scenarios ([`DRILL_SCENARIOS`]):
//!
//! * `node-loss` — as many disks as the policy tolerates are replaced
//!   with empty ones;
//! * `healer-crash` — a disk is replaced, a first healer is killed the
//!   moment its *second* transfer window opens
//!   (`start:heal.transfer#2`), and the timed recovery resumes from the
//!   cursor that healer persisted before dying;
//! * `dump-crash` — a dump of a newer generation crashes a rank
//!   mid-commit and takes its node's storage with it;
//! * `corruption` — stored chunk copies and stripe shards are bit-rotted
//!   in place, so the scrub step must quarantine before healing;
//! * `gc-pressure` — the target generation sits on top of superseded
//!   ones, and the healer's gc step must collect them all before
//!   mending a replaced disk.
//!
//! Timing rows are inherently noisy at laptop scale; the hard gates are
//! `converged` and `restore_verified`, while [`DRILL_NOISE_BAND`] only
//! classifies the foreground slowdown in reports.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use replidedup_core::{
    HealCursor, HealOptions, HealReport, RateLimit, RedundancyPolicy, Replicator, Strategy,
};
use replidedup_mpi::wire::Wire;
use replidedup_mpi::{FaultPlan, FaultTrigger, WorldConfig};
use replidedup_storage::{Cluster, Placement};

use crate::perf::BenchOptions;
use crate::report::DrillScenario;
use crate::workloads::make_buffers;

/// Every scripted recovery scenario, in report order.
pub const DRILL_SCENARIOS: [&str; 5] = [
    "node-loss",
    "healer-crash",
    "dump-crash",
    "corruption",
    "gc-pressure",
];

/// Foreground-slowdown band under which a contended dump counts as
/// unaffected by the rate-limited healer. Deliberately wide: the drills
/// time two thread-pool worlds racing on one machine, so the signal is
/// "same order of magnitude", not micro-benchmark precision.
pub const DRILL_NOISE_BAND: f64 = 3.0;

/// The redundancy policies every scenario is drilled under, with the
/// node losses each tolerates by construction.
pub fn drill_policies() -> [(RedundancyPolicy, u32); 3] {
    [
        (RedundancyPolicy::Replicate(3), 2),
        (RedundancyPolicy::Rs { k: 4, m: 2 }, 2),
        (
            RedundancyPolicy::Auto {
                k: 4,
                m: 2,
                replicate_below: 1 << 10,
            },
            2,
        ),
    ]
}

/// Run the drill matrix. `full` sweeps every scenario × strategy ×
/// policy; the smoke tier keeps the two resumability scenarios under
/// coll-dedup with replicated and coded redundancy — small enough for
/// CI, still covering cursor persistence and the kill-and-resume path.
pub fn run_drill_matrix(opts: &BenchOptions, full: bool) -> Vec<DrillScenario> {
    let mut rows = Vec::new();
    if full {
        for scenario in DRILL_SCENARIOS {
            for strategy in [Strategy::CollDedup, Strategy::NoDedup] {
                for policy in drill_policies() {
                    rows.push(run_drill_row(opts, scenario, strategy, policy));
                }
            }
        }
    } else {
        let [rep3, rs42, _] = drill_policies();
        for scenario in ["node-loss", "healer-crash"] {
            for policy in [rep3, rs42] {
                rows.push(run_drill_row(opts, scenario, Strategy::CollDedup, policy));
            }
        }
    }
    rows
}

/// Run one named scenario across every strategy × policy. `None` for an
/// unknown scenario name (see [`DRILL_SCENARIOS`]).
pub fn run_drill(opts: &BenchOptions, scenario: &str) -> Option<Vec<DrillScenario>> {
    if !DRILL_SCENARIOS.contains(&scenario) {
        return None;
    }
    let mut rows = Vec::new();
    for strategy in [Strategy::CollDedup, Strategy::NoDedup] {
        for policy in drill_policies() {
            rows.push(run_drill_row(opts, scenario, strategy, policy));
        }
    }
    Some(rows)
}

/// Healer knobs shared by every drill: windows small enough that even
/// smoke workloads take several steps per stage (resumability needs
/// multiple windows), and a generous-but-real rate limit so the
/// throttling path is always exercised.
fn drill_heal_options(gc_before: Option<u64>) -> HealOptions {
    HealOptions {
        chunk_batch: 32,
        owner_batch: 2,
        stripe_batch: 16,
        rate: Some(RateLimit {
            bytes_per_sec: 64 << 20,
            burst_bytes: 1 << 20,
        }),
        gc_before,
    }
}

fn build_replicator<'a>(
    strategy: Strategy,
    cluster: &'a Cluster,
    policy: RedundancyPolicy,
    chunk_size: usize,
    heal: HealOptions,
) -> Replicator<'a> {
    Replicator::builder(strategy)
        .cluster(cluster)
        .replication(3)
        .chunk_size(chunk_size)
        .with_policy(policy)
        .heal_options(heal)
        .build()
        .expect("drill configs are valid")
}

/// Per-generation content: the shared workload with one byte of
/// generation skew, so generations dedup against each other but restore
/// distinguishably.
fn gen_bufs(base: &[Vec<u8>], generation: u64) -> Vec<Vec<u8>> {
    base.iter()
        .map(|b| {
            let mut b = b.clone();
            if let Some(first) = b.first_mut() {
                *first ^= (generation as u8).wrapping_mul(0x3B);
            }
            b
        })
        .collect()
}

/// One drill row: dump, baseline, damage, heal-while-dumping, verify.
fn run_drill_row(
    opts: &BenchOptions,
    scenario: &str,
    strategy: Strategy,
    (policy, tolerance): (RedundancyPolicy, u32),
) -> DrillScenario {
    // One rank per node; rs4+2 stripes need six distinct devices.
    let n = opts.ranks.max(6);
    let base = make_buffers(opts.app, n);

    // Generation script: gc-pressure heals gen 3 on top of two buried
    // superseded generations; every other scenario heals gen 1.
    let stale: &[u64] = if scenario == "gc-pressure" {
        &[1, 2]
    } else {
        &[]
    };
    let target = stale.len() as u64 + 1;
    let base_gen = target + 1;
    let crash_gen = target + 2;
    let fg_gen = target + 3;
    let heal = drill_heal_options((scenario == "gc-pressure").then_some(target));

    let cluster = Arc::new(Cluster::new(Placement::one_per_node(n)));
    let repl = build_replicator(strategy, &cluster, policy, opts.chunk_size, heal);

    for &gen in stale {
        let bufs = gen_bufs(&base, gen);
        let out = WorldConfig::default()
            .launch(n, |comm| {
                repl.dump(comm, gen, &bufs[comm.rank() as usize])
                    .map(|_| ())
            })
            .expect_all();
        assert!(out.results.iter().all(Result::is_ok), "stale dump {gen}");
    }
    let bufs_target = gen_bufs(&base, target);
    let out = WorldConfig::default()
        .launch(n, |comm| {
            repl.dump(comm, target, &bufs_target[comm.rank() as usize])
                .map(|_| ())
        })
        .expect_all();
    assert!(out.results.iter().all(Result::is_ok), "target dump");

    // Baseline: the foreground dump alone, on the healthy cluster.
    let bufs_base = gen_bufs(&base, base_gen);
    let t0 = Instant::now();
    let out = WorldConfig::default()
        .launch(n, |comm| {
            repl.dump(comm, base_gen, &bufs_base[comm.rank() as usize])
                .map(|_| ())
        })
        .expect_all();
    let baseline = t0.elapsed();
    assert!(out.results.iter().all(Result::is_ok), "baseline dump");

    let start_cursor = inject_damage(
        scenario,
        &cluster,
        strategy,
        policy,
        opts.chunk_size,
        heal,
        target,
        crash_gen,
        &base,
        tolerance,
        n,
    );

    // The timed recovery: a rate-limited background healer mends the
    // target generation while the foreground dumps the next one.
    let healer = {
        let cluster = Arc::clone(&cluster);
        let start = start_cursor.clone();
        let chunk_size = opts.chunk_size;
        replidedup_mpi::sched::spawn("drill-healer", move || {
            let repl = build_replicator(strategy, &cluster, policy, chunk_size, heal);
            let t0 = Instant::now();
            let out = WorldConfig::default()
                .launch(n, |comm| {
                    let mut cursor = start.clone();
                    repl.heal_from(comm, &mut cursor).map(|r| (cursor, r))
                })
                .expect_all();
            (t0.elapsed(), out.results)
        })
    };
    let bufs_fg = gen_bufs(&base, fg_gen);
    let t0 = Instant::now();
    let out = WorldConfig::default()
        .launch(n, |comm| {
            repl.dump(comm, fg_gen, &bufs_fg[comm.rank() as usize])
                .map(|_| ())
        })
        .expect_all();
    let contended = t0.elapsed();
    let fg_ok = out.results.iter().all(Result::is_ok);
    let (recovery, heal_results) = healer.join().expect("healer thread");

    let mut converged = heal_results.iter().all(Result::is_ok);
    let mut heal_steps = 0u64;
    let mut heal_bytes = 0u64;
    if let Some(Ok((cursor, report))) = heal_results.first() {
        converged &= cursor.is_done() && report.is_fully_healed();
        heal_steps = cursor.steps_taken;
        heal_bytes = report.heal_bytes();
        // The gc drill additionally demands every superseded generation
        // was actually collected before the mend.
        if !stale.is_empty() {
            converged &= report.gc.generations_collected == stale.len() as u64;
        }
    } else {
        converged = false;
    }

    let mut verified = fg_ok;
    for (gen, expect) in [(target, &bufs_target), (fg_gen, &bufs_fg)] {
        let out = WorldConfig::default()
            .launch(n, |comm| repl.restore(comm, gen))
            .expect_all();
        for (rank, r) in out.results.iter().enumerate() {
            verified &= r.as_ref().is_ok_and(|b| b == &expect[rank]);
        }
    }

    let baseline_ms = baseline.as_secs_f64() * 1e3;
    let contended_ms = contended.as_secs_f64() * 1e3;
    DrillScenario {
        scenario: scenario.to_string(),
        strategy: strategy.label().to_string(),
        policy: policy.label(),
        ranks: n,
        heal_steps,
        heal_bytes,
        recovery_ms: recovery.as_secs_f64() * 1e3,
        baseline_dump_ms: baseline_ms,
        contended_dump_ms: contended_ms,
        foreground_slowdown: contended_ms / baseline_ms.max(1e-9),
        converged,
        restore_verified: verified,
    }
}

/// Apply the scenario's damage to the committed target generation and
/// return the cursor the timed recovery starts from (a fresh cursor for
/// most scenarios; the dead healer's persisted cursor for
/// `healer-crash`).
#[allow(clippy::too_many_arguments)]
fn inject_damage(
    scenario: &str,
    cluster: &Arc<Cluster>,
    strategy: Strategy,
    policy: RedundancyPolicy,
    chunk_size: usize,
    heal: HealOptions,
    target: u64,
    crash_gen: u64,
    base: &[Vec<u8>],
    tolerance: u32,
    n: u32,
) -> HealCursor {
    match scenario {
        "node-loss" => {
            // Replace exactly as many disks as the policy tolerates.
            for node in 0..tolerance {
                cluster.fail_node(node);
                cluster.revive_node(node);
            }
            HealCursor::new(target)
        }
        "healer-crash" => {
            cluster.fail_node(n - 1);
            cluster.revive_node(n - 1);
            // A first healer runs with rank 0 persisting the cursor
            // after every completed step — exactly as an operator would
            // — and is killed the moment its second transfer window
            // opens. Killing a healer process leaves disks intact, so
            // there is no storage hook.
            let persisted = Arc::new(Mutex::new(Vec::new()));
            let plan = FaultPlan::new(23).crash(
                n / 2,
                FaultTrigger::PhaseStartNth("heal.transfer".into(), 2),
            );
            let config = WorldConfig::default()
                .with_recv_timeout(Duration::from_secs(2))
                .with_faults(plan);
            let store = Arc::clone(&persisted);
            let hc = Arc::clone(cluster);
            config.launch(n, move |comm| {
                let repl = build_replicator(strategy, &hc, policy, chunk_size, heal);
                let mut cursor = HealCursor::new(target);
                let mut report = HealReport::default();
                while let Ok(true) = repl.heal_step(comm, &mut cursor, &mut report) {
                    if comm.rank() == 0 {
                        *store.lock().expect("cursor store") = cursor.to_bytes().to_vec();
                    }
                }
            });
            let snapshot = persisted.lock().expect("cursor store").clone();
            HealCursor::from_bytes(&snapshot).unwrap_or_else(|_| HealCursor::new(target))
        }
        "dump-crash" => {
            // A dump of a newer generation crashes one rank mid-commit
            // and its node's storage dies with it; the replacement disk
            // comes up empty.
            let bufs = gen_bufs(base, crash_gen);
            let hook = Arc::clone(cluster);
            let plan = FaultPlan::new(31)
                .crash(n / 2, FaultTrigger::PhaseStart("commit".into()))
                .on_crash(move |rank| hook.fail_node(hook.node_of(rank)));
            let config = WorldConfig::default()
                .with_recv_timeout(Duration::from_secs(2))
                .with_faults(plan);
            let hc = Arc::clone(cluster);
            config.launch(n, move |comm| {
                let repl = build_replicator(strategy, &hc, policy, chunk_size, heal);
                let _ = repl.dump(comm, crash_gen, &bufs[comm.rank() as usize]);
            });
            for node in 0..n {
                if !cluster.is_alive(node) {
                    cluster.revive_node(node);
                }
            }
            HealCursor::new(target)
        }
        "corruption" => {
            // Bit-rot in place: one stored copy of a handful of chunks
            // plus one shard of up to two stripes, all on node 0 — the
            // scrub step must quarantine them before the heal can close
            // the deficits from surviving redundancy. A cell with
            // neither chunks nor stripes (no-dedup with pure
            // replication keeps only whole blobs) loses a disk instead.
            let mut injected = 0u32;
            if let Ok(fps) = cluster.chunk_fps(0) {
                for fp in fps.into_iter().take(4) {
                    if cluster.corrupt_chunk(0, &fp).unwrap_or(false) {
                        injected += 1;
                    }
                }
            }
            let mut hit_stripes = Vec::new();
            for (key, meta) in cluster.shard_inventory(0).unwrap_or_default() {
                if hit_stripes.len() >= 2 || hit_stripes.contains(&key) {
                    continue;
                }
                hit_stripes.push(key);
                if cluster.corrupt_shard(0, key, meta.index).unwrap_or(false) {
                    injected += 1;
                }
            }
            if injected == 0 {
                cluster.fail_node(1);
                cluster.revive_node(1);
            }
            HealCursor::new(target)
        }
        "gc-pressure" => {
            // The damage is a replaced disk; the pressure is the two
            // superseded generations the healer's gc step (gc_before =
            // target) must collect before mending.
            cluster.fail_node(1);
            cluster.revive_node(1);
            HealCursor::new(target)
        }
        other => panic!("unknown drill scenario {other}"),
    }
}
