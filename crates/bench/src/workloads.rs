//! Checkpoint-content generators for the evaluation.
//!
//! Each generator runs the real mini-app for a warm-up phase and captures
//! the page-aligned heap snapshot every rank would hand to `DUMP_OUTPUT` —
//! the same pipeline as the paper's AC-FTE integration, at laptop scale.
//! Buffers are generated once per world size and reused across the three
//! strategies so every setting sees byte-identical inputs.

use replidedup_apps::{Cm1, Cm1Config, Hpccg, HpccgConfig, SyntheticWorkload};
use replidedup_ckpt::TrackedHeap;
use replidedup_mpi::WorldConfig;

/// Which application produces the checkpoint content.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AppKind {
    /// HPCCG mini-app (27-point CG), warm-up iterations included.
    Hpccg {
        /// CG iterations before the snapshot.
        warmup: u64,
    },
    /// CM1-like stencil model, warm-up steps included.
    Cm1 {
        /// Time steps before the snapshot.
        warmup: u64,
    },
    /// Synthetic workload with dialed-in redundancy.
    Synthetic(SyntheticWorkload),
    /// Shifted-duplicate workload: every rank holds the same base content
    /// behind a rank-private prefix whose length is *not* a multiple of
    /// any page size. Cross-rank redundancy is total, but byte-shifted —
    /// invisible to fixed chunking, fully visible to CDC.
    ShiftedDup {
        /// Bytes of pseudo-random base content shared by all ranks.
        base_len: usize,
    },
    /// Insert-heavy workload: all ranks start from the same base and each
    /// rank splices small rank-private runs at rank-dependent offsets —
    /// the classic editing pattern that shifts everything after each
    /// insertion.
    InsertHeavy {
        /// Bytes of pseudo-random base content shared by all ranks.
        base_len: usize,
        /// Number of rank-private insertions.
        inserts: usize,
    },
}

impl AppKind {
    /// Paper-matched warm-up defaults: HPCCG checkpoints at iteration 100
    /// of 127 (we scale to 10), CM1 every 30 time steps.
    pub fn hpccg() -> Self {
        AppKind::Hpccg { warmup: 10 }
    }

    /// CM1 warm-up before the snapshot. The paper checkpoints at time
    /// step 30; the checkpoint's *content structure* (vortex over ambient)
    /// is set by the initial condition, so a short warm-up keeps the
    /// harness fast without changing what the dedup sees.
    pub fn cm1() -> Self {
        AppKind::Cm1 { warmup: 3 }
    }

    /// Shifted-duplicate workload at bench scale: ~192 KiB of shared base
    /// content behind a rank-private misaligning prefix.
    pub fn shifted_dup() -> Self {
        AppKind::ShiftedDup {
            base_len: 192 * 1024,
        }
    }

    /// Insert-heavy workload at bench scale: ~192 KiB of shared base
    /// content with 16 rank-private splices.
    pub fn insert_heavy() -> Self {
        AppKind::InsertHeavy {
            base_len: 192 * 1024,
            inserts: 16,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            AppKind::Hpccg { .. } => "HPCCG",
            AppKind::Cm1 { .. } => "CM1",
            AppKind::Synthetic(_) => "synthetic",
            AppKind::ShiftedDup { .. } => "shifted-dup",
            AppKind::InsertHeavy { .. } => "insert-heavy",
        }
    }
}

/// splitmix64: the workload generators' only source of pseudo-randomness.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pseudo-random bytes shared by every rank of the CDC workloads.
fn shared_base(len: usize) -> Vec<u8> {
    let mut state = 0x5348_4946_5445_4421; // b"SHIFTED!"
    let mut base = Vec::with_capacity(len);
    while base.len() < len {
        base.extend_from_slice(&splitmix64(&mut state).to_le_bytes());
    }
    base.truncate(len);
    base
}

/// Rank-private pseudo-random bytes (distinct stream per rank).
fn private_bytes(rank: u32, len: usize) -> Vec<u8> {
    let mut state = 0xC0FF_EE00_0000_0000 ^ (u64::from(rank) << 8) ^ 0x55;
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        out.extend_from_slice(&splitmix64(&mut state).to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Shifted-duplicate buffer for one rank: `rank * 97 + 13` bytes of
/// rank-private prefix (never page- or power-of-two-aligned), then the
/// shared base. Identical content at different byte offsets on every rank.
fn shifted_dup_buffer(rank: u32, base: &[u8]) -> Vec<u8> {
    let prefix_len = rank as usize * 97 + 13;
    let mut buf = private_bytes(rank, prefix_len);
    buf.extend_from_slice(base);
    buf
}

/// Insert-heavy buffer for one rank: the shared base with `inserts` small
/// rank-private runs (1–32 bytes) spliced at rank-dependent offsets. Each
/// splice shifts everything after it, like interleaved edits.
fn insert_heavy_buffer(rank: u32, base: &[u8], inserts: usize) -> Vec<u8> {
    let mut state = 0x494E_5345_5254_2100 ^ u64::from(rank); // b"INSERT!"
    let mut offsets: Vec<usize> = (0..inserts)
        .map(|_| splitmix64(&mut state) as usize % base.len().max(1))
        .collect();
    offsets.sort_unstable();
    let mut buf = Vec::with_capacity(base.len() + inserts * 32);
    let mut prev = 0;
    for off in offsets {
        buf.extend_from_slice(&base[prev..off]);
        let len = 1 + (splitmix64(&mut state) as usize % 32);
        let run = private_bytes(rank ^ 0x8000_0000, len);
        buf.extend_from_slice(&run);
        prev = off;
    }
    buf.extend_from_slice(&base[prev..]);
    buf
}

/// Laptop-scale HPCCG sub-block (≈ 90 pages of checkpoint per rank; the
/// paper's 150³ is reached through the cost model's scale factor).
pub fn hpccg_config() -> HpccgConfig {
    HpccgConfig {
        nx: 10,
        ny: 10,
        nz: 10,
        slack_factor: 1.5,
        private_factor: 0.16,
    }
}

/// Laptop-scale CM1 workload (~32 pages of checkpoint per rank).
///
/// Uses the periodic convective-cell mode (`cell_group = 8`, see
/// [`replidedup_apps::Cm1::new`]): one vortex cell per 8 ranks whose
/// content repeats bit-for-bit across groups, plus a globally unique eye
/// in the central group. This reproduces the memory-image profile the
/// paper measured on the 2D-decomposed hurricane — substantial
/// per-process changing content (local-dedup finds ~30 %) that still
/// deduplicates across processes (coll-dedup reaches single digits),
/// with no process more than ~20 % globally unique. `nx = 512` makes one
/// grid row exactly one 4 KiB page, so page accounting is exact.
pub fn cm1_config() -> Cm1Config {
    Cm1Config {
        nx: 512,
        ny_per_rank: 8,
        vortex_radius: 4.0,
        cell_group: 8,
        core_boost: 4.0,
        private_factor: 0.02,
        ..Default::default()
    }
}

/// Generate every rank's checkpoint buffer for a world of `n`.
pub fn make_buffers(app: AppKind, n: u32) -> Vec<Vec<u8>> {
    match app {
        AppKind::Synthetic(w) => (0..n).map(|r| w.generate(r)).collect(),
        AppKind::ShiftedDup { base_len } => {
            let base = shared_base(base_len);
            (0..n).map(|r| shifted_dup_buffer(r, &base)).collect()
        }
        AppKind::InsertHeavy { base_len, inserts } => {
            let base = shared_base(base_len);
            (0..n)
                .map(|r| insert_heavy_buffer(r, &base, inserts))
                .collect()
        }
        AppKind::Hpccg { warmup } => {
            WorldConfig::default()
                .launch(n, |comm| {
                    let mut app = Hpccg::new(comm.rank(), comm.size(), hpccg_config());
                    app.run(comm, warmup);
                    let mut heap = TrackedHeap::default();
                    let regions = app.alloc_regions(&mut heap);
                    app.sync_to_heap(&mut heap, &regions);
                    heap.snapshot_bytes()
                })
                .expect_all()
                .results
        }
        AppKind::Cm1 { warmup } => {
            WorldConfig::default()
                .launch(n, |comm| {
                    let mut app = Cm1::new(comm.rank(), comm.size(), cm1_config());
                    app.run(comm, warmup);
                    let mut heap = TrackedHeap::default();
                    let regions = app.alloc_regions(&mut heap);
                    app.sync_to_heap(&mut heap, &regions);
                    heap.snapshot_bytes()
                })
                .expect_all()
                .results
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpccg_buffers_are_page_aligned_and_redundant() {
        let bufs = make_buffers(AppKind::hpccg(), 6);
        assert_eq!(bufs.len(), 6);
        for b in &bufs {
            assert_eq!(b.len() % 4096, 0);
            assert!(b.len() > 100 * 4096, "buffer too small: {} bytes", b.len());
        }
        // Interior ranks produce near-identical snapshots: everything but
        // the rank-private runtime-state region matches page for page.
        let same = bufs[2]
            .chunks(4096)
            .zip(bufs[3].chunks(4096))
            .filter(|(a, b)| a == b)
            .count();
        let pages = bufs[2].len() / 4096;
        assert!(
            same * 10 >= pages * 7,
            "only {same}/{pages} pages shared between interior ranks"
        );
        assert_ne!(bufs[0], bufs[2]);
    }

    #[test]
    fn cm1_groups_repeat_across_the_domain() {
        // Corresponding ranks of different (interior) cell groups carry
        // identical field content — the cross-rank duplication of
        // *changing* data that coll-dedup exploits on CM1. With 32 ranks
        // and groups of 8, group 1 (ranks 8..16) and group 2 (16..24) are
        // both interior; the eye lives in group 2 (central of 4).
        let bufs = make_buffers(AppKind::cm1(), 32);
        let pages = |b: &Vec<u8>| b.len() / 4096;
        // Rank 11 (group 1) vs rank 27 (group 3): same offset, no eye.
        let same = bufs[11]
            .chunks(4096)
            .zip(bufs[27].chunks(4096))
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            same * 10 >= pages(&bufs[11]) * 7,
            "only {same}/{} pages shared across groups",
            pages(&bufs[11])
        );
        // The eye rank (group 2, offset ~3-4 → rank 19/20) differs from its
        // group-translated twins.
        let eye_same = bufs[19]
            .chunks(4096)
            .zip(bufs[11].chunks(4096))
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            eye_same < same,
            "eye rank must be less similar to its twin than eyeless ranks ({eye_same} vs {same})"
        );
    }

    #[test]
    fn cm1_buffers_have_ambient_redundancy() {
        let bufs = make_buffers(AppKind::cm1(), 8);
        // Far ranks (0 and 7) are fully ambient: identical page for page
        // outside the rank-private runtime-state region.
        let same = bufs[0]
            .chunks(4096)
            .zip(bufs[7].chunks(4096))
            .filter(|(a, b)| a == b)
            .count();
        let pages = bufs[0].len() / 4096;
        assert!(
            same * 10 >= pages * 8,
            "only {same}/{pages} pages shared between far ranks"
        );
        assert_ne!(bufs[3], bufs[0], "vortex ranks differ");
    }

    #[test]
    fn synthetic_buffers_match_generator() {
        let w = SyntheticWorkload {
            chunk_size: 64,
            ..Default::default()
        };
        let bufs = make_buffers(AppKind::Synthetic(w), 3);
        assert_eq!(bufs[1], w.generate(1));
    }

    #[test]
    fn buffers_are_deterministic_across_calls() {
        let a = make_buffers(AppKind::hpccg(), 4);
        let b = make_buffers(AppKind::hpccg(), 4);
        assert_eq!(a, b);
    }

    #[test]
    fn shifted_dup_shares_content_at_misaligned_offsets() {
        let bufs = make_buffers(AppKind::shifted_dup(), 4);
        for (r, b) in bufs.iter().enumerate() {
            let prefix = r * 97 + 13;
            assert_eq!(b.len(), prefix + 192 * 1024);
            // The base is bit-identical across ranks, just shifted.
            assert_eq!(&b[prefix..], &bufs[0][13..]);
            // The shift is never page-aligned, so fixed 4 KiB chunking
            // sees (almost) nothing in common across ranks.
            assert_ne!(prefix % 4096, 0);
        }
        // Rank-private prefixes differ.
        assert_ne!(&bufs[1][..13], &bufs[0][..13]);
        // Fixed-stride pages barely overlap between shifted ranks.
        let same_pages = bufs[0]
            .chunks(4096)
            .zip(bufs[1].chunks(4096))
            .filter(|(a, b)| a == b)
            .count();
        assert_eq!(same_pages, 0, "shifted ranks must share no aligned pages");
    }

    #[test]
    fn insert_heavy_keeps_long_shared_runs() {
        let bufs = make_buffers(AppKind::insert_heavy(), 3);
        // Each rank grew by its private insertions only.
        for b in &bufs {
            assert!(b.len() > 192 * 1024);
            assert!(b.len() < 192 * 1024 + 16 * 33);
        }
        // Different ranks splice at different offsets with different bytes.
        assert_ne!(bufs[0], bufs[1]);
        // But both still contain a long run of the shared base verbatim:
        // the suffix after the last insertion is common content.
        let tail = &bufs[0][bufs[0].len() - 1024..];
        assert!(
            bufs[1].windows(tail.len()).any(|w| w == tail),
            "insert-heavy ranks must share long base runs"
        );
    }

    #[test]
    fn cdc_workloads_are_deterministic() {
        assert_eq!(
            make_buffers(AppKind::shifted_dup(), 3),
            make_buffers(AppKind::shifted_dup(), 3)
        );
        assert_eq!(
            make_buffers(AppKind::insert_heavy(), 3),
            make_buffers(AppKind::insert_heavy(), 3)
        );
    }

    #[test]
    fn cdc_workload_labels() {
        assert_eq!(AppKind::shifted_dup().label(), "shifted-dup");
        assert_eq!(AppKind::insert_heavy().label(), "insert-heavy");
    }
}
