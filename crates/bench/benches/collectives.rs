//! Runtime collective benchmarks: the cost of the message-passing
//! substrate itself (allreduce with the HMERGE operator is the kernel of
//! Figures 3(b)/(c)).
//!
//! Worlds are intentionally modest (threads on one machine); the point is
//! the relative cost of the collective algorithms, not cluster numbers —
//! those come from the cost model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use replidedup_core::{reduce_global_view, GlobalView};
use replidedup_hash::Fingerprint;
use replidedup_mpi::WorldConfig;

fn bench_barrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("barrier");
    g.sample_size(10);
    for n in [4u32, 16, 64] {
        g.bench_with_input(BenchmarkId::new("world", n), &n, |b, &n| {
            b.iter(|| {
                WorldConfig::default()
                    .launch(n, |comm| {
                        for _ in 0..10 {
                            comm.barrier();
                        }
                    })
                    .expect_all()
            })
        });
    }
    g.finish();
}

fn bench_allreduce_sum(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce_sum");
    g.sample_size(10);
    for n in [4u32, 16, 64] {
        g.bench_with_input(BenchmarkId::new("world", n), &n, |b, &n| {
            b.iter(|| {
                WorldConfig::default()
                    .launch(n, |comm| {
                        comm.allreduce(u64::from(comm.rank()), |a, b| a + b)
                    })
                    .expect_all()
            })
        });
    }
    g.finish();
}

fn bench_allgather(c: &mut Criterion) {
    let mut g = c.benchmark_group("allgather_loads");
    g.sample_size(10);
    for n in [16u32, 64] {
        g.bench_with_input(BenchmarkId::new("world", n), &n, |b, &n| {
            b.iter(|| {
                WorldConfig::default()
                    .launch(n, |comm| {
                        // One Load vector per rank, as the dump gathers.
                        comm.allgather(vec![comm.rank() as u64; 6])
                    })
                    .expect_all()
            })
        });
    }
    g.finish();
}

fn bench_hmerge_reduction(c: &mut Criterion) {
    // The paper's core collective: ALLREDUCE(HMERGE) over per-rank
    // fingerprint sets — 512 fingerprints per rank, half shared.
    let mut g = c.benchmark_group("hmerge_reduction");
    g.sample_size(10);
    for n in [8u32, 32] {
        g.bench_with_input(BenchmarkId::new("world", n), &n, |b, &n| {
            b.iter(|| {
                WorldConfig::default()
                    .launch(n, |comm| {
                        let me = comm.rank();
                        let fps = (0..512u64).map(|i| {
                            if i % 2 == 0 {
                                Fingerprint::synthetic(i) // shared everywhere
                            } else {
                                Fingerprint::synthetic((u64::from(me) << 32) | i)
                            }
                        });
                        let leaf = GlobalView::from_local(me, fps, 1 << 17);
                        reduce_global_view(comm, leaf, 3, 1 << 17).len()
                    })
                    .expect_all()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_barrier,
    bench_allreduce_sum,
    bench_allgather,
    bench_hmerge_reduction
);
criterion_main!(benches);
