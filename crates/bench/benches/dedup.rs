//! Deduplication kernels: local indexing and the HMERGE reduction operator.
//!
//! These are the data-structure costs behind Figure 3(a) (dedup quality is
//! free only if the bookkeeping is fast) and the CPU term of the reduction
//! overhead in Figures 3(b)/(c).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use replidedup_core::{GlobalView, LocalIndex, Replicator, Strategy};
use replidedup_hash::{Fingerprint, FixedChunker, Sha1ChunkHasher};
use replidedup_mpi::WorldConfig;
use replidedup_storage::{Cluster, Placement};

fn buffer_with_dup_ratio(pages: usize, distinct: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(pages * 4096);
    for i in 0..pages {
        let tag = (i % distinct) as u32;
        out.extend((0..4096u32).map(|j| (j.wrapping_mul(2654435761) ^ tag) as u8));
    }
    out
}

fn bench_local_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("local_index");
    for (label, distinct) in [
        ("all_unique", 256usize),
        ("half_dup", 128),
        ("heavy_dup", 16),
    ] {
        let buf = buffer_with_dup_ratio(256, distinct);
        g.throughput(Throughput::Bytes(buf.len() as u64));
        g.bench_with_input(BenchmarkId::new("build_1mib", label), &buf, |b, buf| {
            b.iter(|| {
                LocalIndex::build(
                    &Sha1ChunkHasher,
                    std::hint::black_box(buf),
                    &FixedChunker::new(4096),
                    false,
                )
            })
        });
    }
    g.finish();
}

fn view_of(rank: u32, base: u64, count: usize) -> GlobalView {
    GlobalView::from_local(
        rank,
        (0..count as u64).map(|i| Fingerprint::synthetic(base + i)),
        usize::MAX,
    )
}

fn bench_hmerge(c: &mut Criterion) {
    let mut g = c.benchmark_group("hmerge");
    for count in [1_000usize, 10_000, 100_000] {
        // Half-overlapping views: the typical mid-reduction shape.
        let a = view_of(0, 0, count);
        let b = view_of(1, count as u64 / 2, count);
        g.throughput(Throughput::Elements(count as u64 * 2));
        g.bench_with_input(
            BenchmarkId::new("merge_half_overlap", count),
            &count,
            |bch, _| {
                bch.iter_batched(
                    || (a.clone(), b.clone()),
                    |(a, b)| GlobalView::merge(a, b, 3, usize::MAX),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    g.finish();
}

fn bench_hmerge_top_f_selection(c: &mut Criterion) {
    // The F-threshold path: 100k entries truncated to F=2^14.
    let a = view_of(0, 0, 100_000);
    let b = view_of(1, 50_000, 100_000);
    let mut g = c.benchmark_group("hmerge_top_f");
    g.bench_function("merge_150k_to_16k", |bch| {
        bch.iter_batched(
            || (a.clone(), b.clone()),
            |(a, b)| GlobalView::merge(a, b, 3, 1 << 14),
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_view_lookup(c: &mut Criterion) {
    let view = view_of(0, 0, 1 << 17);
    let probes: Vec<Fingerprint> = (0..1024u64)
        .map(|i| Fingerprint::synthetic(i * 173 % (1 << 18)))
        .collect();
    let mut g = c.benchmark_group("view_lookup");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.bench_function("binary_search_128k_view", |b| {
        b.iter(|| probes.iter().filter(|fp| view.lookup(fp).is_some()).count())
    });
    g.finish();
}

fn bench_trace_overhead(c: &mut Criterion) {
    // Acceptance bar for the observability layer: a fully traced
    // coll-dedup dump must stay within 5% of an untraced one. Spans are
    // per-phase, not per-chunk — a traced dump performs a few dozen
    // Vec::pushes per rank, so the two bars should be indistinguishable.
    let n = 4u32;
    let bufs: Vec<Vec<u8>> = (0..n)
        .map(|r| {
            let mut b = buffer_with_dup_ratio(64, 32);
            b[0] ^= r as u8;
            b
        })
        .collect();
    let mut g = c.benchmark_group("dump_trace_overhead");
    g.throughput(Throughput::Bytes(bufs.iter().map(|b| b.len() as u64).sum()));
    for (label, cfg) in [
        ("tracing_disabled", WorldConfig::default()),
        ("tracing_enabled", WorldConfig::traced()),
    ] {
        g.bench_function(label, |bch| {
            bch.iter(|| {
                let cluster = Cluster::new(Placement::one_per_node(n));
                let repl = Replicator::builder(Strategy::CollDedup)
                    .cluster(&cluster)
                    .replication(2)
                    .chunk_size(4096)
                    .build()
                    .expect("valid config");
                cfg.launch(n, |comm| {
                    repl.dump(comm, 1, &bufs[comm.rank() as usize])
                        .expect("dump");
                })
                .expect_all()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_local_index,
    bench_hmerge,
    bench_hmerge_top_f_selection,
    bench_view_lookup,
    bench_trace_overhead
);
criterion_main!(benches);
