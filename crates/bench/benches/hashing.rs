//! Hashing kernels: the per-rank cost floor of every dedup strategy.
//!
//! Feeds the hash-time term of Figures 3(b)/(c) and Table I (the paper's
//! local-dedup baseline is hashing plus local lookup).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use replidedup_hash::{
    fingerprint_buffer, fnv1a_64, ChunkHasher, FnvChunkHasher, RabinHasher, Sha1, Sha1ChunkHasher,
};

fn page(seed: u8) -> Vec<u8> {
    (0..4096u32)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect()
}

fn bench_sha1(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha1");
    for size in [64usize, 4096, 65536] {
        let data = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("digest", size), &data, |b, d| {
            b.iter(|| Sha1::digest(std::hint::black_box(d)))
        });
    }
    g.finish();
}

fn bench_fnv(c: &mut Criterion) {
    let data = page(7);
    let mut g = c.benchmark_group("fnv");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("fnv1a_4k", |b| {
        b.iter(|| fnv1a_64(std::hint::black_box(&data)))
    });
    g.finish();
}

fn bench_chunk_hashers(c: &mut Criterion) {
    // The SHA-1 vs cheap-hash trade-off the paper mentions in Section IV.
    let data = page(3);
    let mut g = c.benchmark_group("chunk_hasher_page");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("sha1", |b| {
        b.iter(|| Sha1ChunkHasher.fingerprint(std::hint::black_box(&data)))
    });
    g.bench_function("fnv1a", |b| {
        b.iter(|| FnvChunkHasher.fingerprint(std::hint::black_box(&data)))
    });
    g.finish();
}

fn bench_buffer_fingerprinting(c: &mut Criterion) {
    // 1 MiB rank buffer → 256 pages, the unit of work per checkpoint MB.
    let buf: Vec<u8> = (0..256).flat_map(|s| page(s as u8)).collect();
    let mut g = c.benchmark_group("fingerprint_buffer");
    g.throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_function("sha1_1mib", |b| {
        b.iter(|| fingerprint_buffer(&Sha1ChunkHasher, std::hint::black_box(&buf), 4096))
    });
    g.finish();
}

fn bench_rabin_roll(c: &mut Criterion) {
    // Content-defined chunking alternative (related-work extension).
    let data: Vec<u8> = (0..65536u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
        .collect();
    let mut g = c.benchmark_group("rabin");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("roll_64k", |b| {
        b.iter(|| {
            let mut h = RabinHasher::new(48);
            let mut acc = 0u64;
            for &byte in &data {
                acc ^= h.roll(byte);
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sha1,
    bench_fnv,
    bench_chunk_hashers,
    bench_buffer_fingerprinting,
    bench_rabin_roll
);
criterion_main!(benches);
