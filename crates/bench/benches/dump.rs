//! End-to-end `DUMP_OUTPUT` benchmarks — the kernel behind Table I and
//! Figures 4(a)/5(a), run in-process at a fixed world size so the three
//! strategies and the shuffle ablation can be compared directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use replidedup_bench::experiments::dump_world;
use replidedup_bench::workloads::{make_buffers, AppKind};
use replidedup_core::{DumpConfig, Strategy};

const WORLD: u32 = 16;

fn bench_strategies(c: &mut Criterion) {
    // Table I kernel: one dump per strategy over identical HPCCG buffers.
    let buffers = make_buffers(AppKind::hpccg(), WORLD);
    let bytes: u64 = buffers.iter().map(|b| b.len() as u64).sum();
    let mut g = c.benchmark_group("dump_hpccg16");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bytes));
    for strategy in [Strategy::NoDedup, Strategy::LocalDedup, Strategy::CollDedup] {
        let cfg = DumpConfig::paper_defaults(strategy);
        g.bench_with_input(
            BenchmarkId::new("strategy", strategy.label()),
            &cfg,
            |b, cfg| b.iter(|| dump_world(std::hint::black_box(&buffers), *cfg)),
        );
    }
    g.finish();
}

fn bench_replication_factor(c: &mut Criterion) {
    // Figures 4(a)/5(a) kernel: coll-dedup cost versus K.
    let buffers = make_buffers(AppKind::cm1(), WORLD);
    let mut g = c.benchmark_group("dump_cm1_k");
    g.sample_size(10);
    for k in [2u32, 4, 6] {
        let cfg = DumpConfig::paper_defaults(Strategy::CollDedup).with_replication(k);
        g.bench_with_input(BenchmarkId::new("coll_dedup", k), &cfg, |b, cfg| {
            b.iter(|| dump_world(std::hint::black_box(&buffers), *cfg))
        });
    }
    g.finish();
}

fn bench_shuffle_ablation(c: &mut Criterion) {
    // Figures 4(c)/5(c) kernel: same dump with and without Algorithm 2.
    let buffers = make_buffers(AppKind::cm1(), WORLD);
    let mut g = c.benchmark_group("dump_shuffle");
    g.sample_size(10);
    for (label, shuffle) in [("no_shuffle", false), ("shuffle", true)] {
        let cfg = DumpConfig::paper_defaults(Strategy::CollDedup)
            .with_replication(4)
            .with_shuffle(shuffle);
        g.bench_with_input(BenchmarkId::new("coll_dedup", label), &cfg, |b, cfg| {
            b.iter(|| dump_world(std::hint::black_box(&buffers), *cfg))
        });
    }
    g.finish();
}

fn bench_f_threshold(c: &mut Criterion) {
    // Sensitivity to the reduction threshold F (design-choice ablation
    // from DESIGN.md): tiny F degrades dedup but caps reduction cost.
    let buffers = make_buffers(AppKind::hpccg(), WORLD);
    let mut g = c.benchmark_group("dump_f_threshold");
    g.sample_size(10);
    for f in [64usize, 1 << 10, 1 << 17] {
        let cfg = DumpConfig::paper_defaults(Strategy::CollDedup).with_f_threshold(f);
        g.bench_with_input(BenchmarkId::new("coll_dedup", f), &cfg, |b, cfg| {
            b.iter(|| dump_world(std::hint::black_box(&buffers), *cfg))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_strategies,
    bench_replication_factor,
    bench_shuffle_ablation,
    bench_f_threshold
);
criterion_main!(benches);
