//! Partner-selection and offset-planning kernels (Algorithms 2 and 3).
//!
//! These run on every rank between the load allgather and the window
//! exchange, so they must be cheap even at full scale; benchmarked at the
//! paper's 408 ranks. Feeds Figures 4(c)/5(c) (shuffle ablation cost side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use replidedup_core::{identity_shuffle, rank_shuffle, window_plan};

fn skewed_loads(n: usize, k: u32, seed: u64) -> Vec<Vec<u64>> {
    let mut state = seed | 1;
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|i| {
            let heavy = i % 7 == 0;
            let mut l = vec![rand() % 100];
            for _ in 1..k {
                l.push(if heavy {
                    500 + rand() % 500
                } else {
                    rand() % 50
                });
            }
            l
        })
        .collect()
}

fn bench_rank_shuffle(c: &mut Criterion) {
    let mut g = c.benchmark_group("rank_shuffle");
    for n in [34usize, 408, 4096] {
        let loads = skewed_loads(n, 3, 42);
        g.bench_with_input(BenchmarkId::new("k3", n), &loads, |b, loads| {
            b.iter(|| rank_shuffle(std::hint::black_box(loads), 3))
        });
    }
    g.finish();
}

fn bench_window_plan(c: &mut Criterion) {
    let mut g = c.benchmark_group("window_plan");
    for k in [2u32, 3, 6] {
        let loads = skewed_loads(408, k, 7);
        let shuffle = rank_shuffle(&loads, k);
        g.bench_with_input(BenchmarkId::new("n408", k), &k, |b, &k| {
            b.iter(|| {
                window_plan(
                    std::hint::black_box(&shuffle),
                    std::hint::black_box(&loads),
                    k,
                )
            })
        });
    }
    g.finish();
}

fn bench_plan_naive_vs_shuffled(c: &mut Criterion) {
    // Full planning cost with and without the shuffle — the ablation's
    // CPU-side price (the win is in traffic, the cost is here).
    let loads = skewed_loads(408, 3, 99);
    let mut g = c.benchmark_group("planning_total");
    g.bench_function("naive", |b| {
        b.iter(|| {
            let s = identity_shuffle(408);
            window_plan(&s, std::hint::black_box(&loads), 3)
        })
    });
    g.bench_function("load_aware", |b| {
        b.iter(|| {
            let s = rank_shuffle(std::hint::black_box(&loads), 3);
            window_plan(&s, &loads, 3)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_rank_shuffle,
    bench_window_plan,
    bench_plan_naive_vs_shuffled
);
criterion_main!(benches);
