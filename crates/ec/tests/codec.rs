//! Reed-Solomon encode/decode round-trips: every loss pattern of at most
//! `m` shards must reconstruct the payload byte-exactly, and every
//! unsatisfiable or malformed request must fail with a typed error.

use bytes::Bytes;
use proptest::prelude::*;
use replidedup_ec::{EcError, RsCode};

fn payload(len: usize, seed: u64) -> Bytes {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.push(state as u8);
    }
    Bytes::from(out)
}

fn survivors(shards: &[Bytes], lost: u32) -> Vec<(u8, &[u8])> {
    shards
        .iter()
        .enumerate()
        .filter(|(i, _)| lost & (1 << i) == 0)
        .map(|(i, s)| (i as u8, s.as_ref()))
        .collect()
}

/// Exhaustive: for several geometries, every loss pattern of `<= m`
/// shards decodes back to the exact payload — including recovering each
/// individual lost shard for repair.
#[test]
fn every_tolerated_loss_pattern_round_trips() {
    for (k, m) in [(2u8, 1u8), (3, 2), (4, 2), (5, 3)] {
        let code = RsCode::new(k, m).unwrap();
        let n = code.shards() as u32;
        // Lengths straddling shard alignment: empty, sub-shard, unaligned, aligned.
        for len in [0usize, 1, 7, k as usize * 37, k as usize * 64 - 3] {
            let data = payload(len, u64::from(k) * 1000 + u64::from(m) + len as u64);
            let shards = code.encode(&data);
            assert_eq!(shards.len(), n as usize);
            for j in 0..k {
                assert_eq!(&shards[j as usize][..], &data[code.data_range(j, len)]);
            }
            for lost in 0u32..(1 << n) {
                if lost.count_ones() > u32::from(m) {
                    continue;
                }
                let have = survivors(&shards, lost);
                let decoded = code
                    .decode(&have, len)
                    .unwrap_or_else(|e| panic!("k={k} m={m} len={len} lost={lost:#b}: {e}"));
                assert_eq!(decoded, data, "k={k} m={m} len={len} lost={lost:#b}");
                // Repair primitive: each lost shard is rebuilt bit-exactly.
                for i in 0..n as u8 {
                    if lost & (1 << i) != 0 {
                        let rebuilt = code.reconstruct_shard(&have, i, len).unwrap();
                        assert_eq!(rebuilt, shards[i as usize], "shard {i} lost={lost:#b}");
                    }
                }
            }
        }
    }
}

#[test]
fn more_than_m_losses_is_a_typed_failure() {
    let code = RsCode::new(4, 2).unwrap();
    let data = payload(1000, 7);
    let shards = code.encode(&data);
    // Lose 3 shards: only 3 survive, 4 needed.
    let have = survivors(&shards, 0b000111);
    assert_eq!(
        code.decode(&have, 1000),
        Err(EcError::NotEnoughShards { have: 3, need: 4 })
    );
    assert_eq!(
        code.reconstruct_shard(&have, 0, 1000),
        Err(EcError::NotEnoughShards { have: 3, need: 4 })
    );
}

#[test]
fn malformed_inputs_are_typed_failures_not_panics() {
    let code = RsCode::new(3, 2).unwrap();
    let data = payload(300, 1);
    let shards = code.encode(&data);
    let mut have = survivors(&shards, 0);
    // Out-of-range index.
    have[0].0 = 200;
    assert_eq!(
        code.decode(&have, 300),
        Err(EcError::ShardIndexOutOfRange {
            index: 200,
            shards: 5
        })
    );
    // Duplicate index.
    have[0].0 = 1;
    assert_eq!(
        code.decode(&have, 300),
        Err(EcError::DuplicateShard { index: 1 })
    );
    // Wrong geometry: a shard of the wrong length.
    let mut have = survivors(&shards, 0);
    have[1].1 = &have[1].1[..50];
    assert_eq!(
        code.decode(&have, 300),
        Err(EcError::ShardLengthMismatch {
            index: 1,
            len: 50,
            expected: 100
        })
    );
    // Wrong recovery target.
    let have = survivors(&shards, 0);
    assert_eq!(
        code.reconstruct_shard(&have, 9, 300),
        Err(EcError::ShardIndexOutOfRange {
            index: 9,
            shards: 5
        })
    );
}

#[test]
fn invalid_geometries_are_rejected() {
    assert_eq!(
        RsCode::new(0, 2),
        Err(EcError::InvalidParams { k: 0, m: 2 })
    );
    assert_eq!(
        RsCode::new(4, 0),
        Err(EcError::InvalidParams { k: 4, m: 0 })
    );
    assert_eq!(
        RsCode::new(200, 56),
        Err(EcError::InvalidParams { k: 200, m: 56 })
    );
    assert!(RsCode::new(200, 55).is_ok(), "k + m == 255 is the ceiling");
}

#[test]
fn shard_geometry_accessors_agree_with_encode() {
    let code = RsCode::new(4, 2).unwrap();
    for len in [0usize, 1, 9, 100, 128] {
        let data = payload(len, len as u64);
        let shards = code.encode(&data);
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.len(), code.true_len(i as u8, len), "len={len} shard {i}");
        }
        let l = code.shard_len(len);
        assert_eq!(l, len.div_ceil(4));
        for parity in shards.iter().skip(4) {
            assert_eq!(parity.len(), l, "parity is always full length");
        }
    }
}

#[test]
fn stripe_placement_is_deterministic_and_distinct() {
    use replidedup_ec::{shard_node, shard_nodes};
    let nodes = shard_nodes(12345, 6, 8);
    assert_eq!(nodes.len(), 6);
    let mut sorted = nodes.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), 6, "6 shards over 8 nodes must be distinct");
    for (i, &nd) in nodes.iter().enumerate() {
        assert_eq!(shard_node(12345, i as u8, 8), Some(nd));
    }
    // Small clusters wrap instead of failing.
    let wrapped = shard_nodes(3, 6, 4);
    assert_eq!(wrapped.len(), 6);
    assert!(wrapped.iter().all(|&nd| nd < 4));
    assert!(shard_nodes(0, 4, 0).is_empty());
    assert_eq!(shard_node(0, 0, 0), None);
}

proptest! {
    /// Random payloads and geometries: encode → drop a random tolerated
    /// subset → decode is the identity.
    #[test]
    fn random_round_trip(seed in any::<u64>(), len in 0usize..2000, kx in 2u8..8, mx in 1u8..4) {
        let code = RsCode::new(kx, mx).unwrap();
        let data = payload(len, seed);
        let shards = code.encode(&data);
        // Seed-derived loss pattern of exactly m shards.
        let n = code.shards() as u32;
        let mut lost = 0u32;
        let mut s = seed;
        while lost.count_ones() < u32::from(mx) {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            lost |= 1 << (s % u64::from(n));
        }
        let have = survivors(&shards, lost);
        prop_assert_eq!(code.decode(&have, len).unwrap(), &data[..]);
    }
}
