//! GF(2^8) field axioms, property-tested over random elements.
//!
//! These are the load-bearing algebraic facts behind Reed-Solomon
//! decoding: if any of them fails, Gauss-Jordan elimination over the
//! field silently produces garbage instead of inverses.

use proptest::prelude::*;
use replidedup_ec::gf;

proptest! {
    #[test]
    fn addition_is_commutative_and_associative(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        prop_assert_eq!(gf::add(a, b), gf::add(b, a));
        prop_assert_eq!(gf::add(gf::add(a, b), c), gf::add(a, gf::add(b, c)));
    }

    #[test]
    fn addition_has_identity_and_self_inverse(a in any::<u8>()) {
        prop_assert_eq!(gf::add(a, 0), a);
        // Characteristic 2: every element is its own additive inverse.
        prop_assert_eq!(gf::add(a, a), 0);
    }

    #[test]
    fn multiplication_is_commutative_and_associative(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        prop_assert_eq!(gf::mul(a, b), gf::mul(b, a));
        prop_assert_eq!(gf::mul(gf::mul(a, b), c), gf::mul(a, gf::mul(b, c)));
    }

    #[test]
    fn multiplication_has_identity_and_annihilator(a in any::<u8>()) {
        prop_assert_eq!(gf::mul(a, 1), a);
        prop_assert_eq!(gf::mul(a, 0), 0);
    }

    #[test]
    fn multiplication_distributes_over_addition(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        prop_assert_eq!(
            gf::mul(a, gf::add(b, c)),
            gf::add(gf::mul(a, b), gf::mul(a, c))
        );
    }

    #[test]
    fn nonzero_elements_have_multiplicative_inverses(a in any::<u8>()) {
        if a == 0 {
            prop_assert_eq!(gf::inv(a), None);
        } else {
            let ai = gf::inv(a).unwrap();
            prop_assert_ne!(ai, 0);
            prop_assert_eq!(gf::mul(a, ai), 1);
        }
    }

    #[test]
    fn division_inverts_multiplication(a in any::<u8>(), b in any::<u8>()) {
        if b == 0 {
            prop_assert_eq!(gf::div(a, b), None);
        } else {
            prop_assert_eq!(gf::div(gf::mul(a, b), b), Some(a));
        }
    }

    #[test]
    fn no_zero_divisors(a in any::<u8>(), b in any::<u8>()) {
        if a != 0 && b != 0 {
            prop_assert_ne!(gf::mul(a, b), 0);
        }
    }
}

/// The field is closed and multiplication is a bijection per row: exhaustive
/// check that each non-zero row of the multiplication table is a permutation.
#[test]
fn nonzero_rows_are_permutations() {
    for a in 1..=255u8 {
        let mut seen = [false; 256];
        for b in 0..=255u8 {
            let p = gf::mul(a, b) as usize;
            assert!(!seen[p] || p == 0, "row {a} repeats {p}");
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s), "row {a} is not a permutation");
    }
}

/// Log/exp tables are mutually inverse on the non-zero elements.
#[test]
fn log_exp_tables_are_inverse() {
    for a in 1..=255u8 {
        assert_eq!(gf::EXP[gf::LOG[a as usize] as usize], a);
    }
    for i in 0..255usize {
        assert_eq!(gf::LOG[gf::EXP[i] as usize] as usize, i);
        assert_eq!(gf::EXP[i], gf::EXP[i + 255], "doubled table mirrors");
    }
}

/// `mul_acc` agrees with scalar multiply-accumulate, including the
/// short-source (logical zero-pad) case.
#[test]
fn mul_acc_matches_scalar_math() {
    let src = [3u8, 0, 250, 17];
    for coef in [0u8, 1, 2, 91, 255] {
        let mut dst = [9u8, 9, 9, 9, 9, 9];
        gf::mul_acc(&mut dst, &src, coef);
        for i in 0..6 {
            let s = if i < src.len() { src[i] } else { 0 };
            assert_eq!(dst[i], gf::add(9, gf::mul(coef, s)), "coef {coef} idx {i}");
        }
    }
}
