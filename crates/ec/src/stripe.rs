//! Stripe layout: deterministic shard-to-node placement.
//!
//! A stripe is one payload (a dedup chunk or a `no-dedup` blob) encoded
//! into `k + m` shards. Fault tolerance requires the shards to land on
//! distinct nodes, and every rank must agree on the placement without
//! negotiation — restore and repair re-derive it from the stripe's seed
//! (a fingerprint digest or an `(owner, dump)` pair) exactly like the
//! dump's offset planning re-derives window layouts.
//!
//! Placement is a rotation: shard `i` goes to node `(seed + i) mod N`.
//! Rotating by the seed spreads parity load across the cluster (stripe
//! seeds are hash-distributed), and consecutive shards are on distinct
//! nodes whenever `k + m <= N`. Smaller clusters wrap — the stripe still
//! encodes and decodes, with proportionally reduced loss tolerance.

/// Nodes assigned to the `shards` shards of the stripe seeded by `seed`,
/// in shard-index order. Empty when the cluster has no nodes.
pub fn shard_nodes(seed: u64, shards: u8, node_count: u32) -> Vec<u32> {
    if node_count == 0 {
        return Vec::new();
    }
    let start = (seed % u64::from(node_count)) as u32;
    (0..u32::from(shards))
        .map(|i| (start + i) % node_count)
        .collect()
}

/// Node of a single shard (same rotation as [`shard_nodes`]); `None` when
/// the cluster has no nodes.
pub fn shard_node(seed: u64, index: u8, node_count: u32) -> Option<u32> {
    if node_count == 0 {
        return None;
    }
    let start = (seed % u64::from(node_count)) as u32;
    Some((start + u32::from(index)) % node_count)
}
