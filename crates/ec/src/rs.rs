//! Systematic Reed-Solomon erasure coding: `k` data shards + `m` parity
//! shards, any `k` of the `k + m` recover the payload.
//!
//! The generator matrix is `[I_k ; C]` where `C` is the `m x k` Cauchy
//! matrix `C[p][j] = 1 / (x_p ^ y_j)` with `x_p = k + p` and `y_j = j`.
//! The two index sets are disjoint bytes, so every entry is well-defined,
//! and — the property replication cannot give you — **every** `k x k`
//! row-submatrix of `[I_k ; C]` is invertible: expanding the determinant
//! along the identity rows reduces it to a minor of `C`, and every square
//! submatrix of a Cauchy matrix is nonsingular. (The analogous
//! Vandermonde construction famously lacks this guarantee.) Decoding from
//! an arbitrary `k`-subset is therefore a Gauss-Jordan inversion in
//! GF(2^8) followed by one matrix-vector product per byte column.
//!
//! Shards carry their *true* lengths: the payload is cut into `k`
//! contiguous slices of `ceil(len / k)` bytes (the last one short, maybe
//! empty) and the zero padding that makes them equal-length for the field
//! arithmetic is purely logical — it is never stored or sent. Data shards
//! returned by [`RsCode::encode`] are zero-copy slices of the payload.
//!
//! Decode paths are panic-free by contract (enforced by a CI grep): every
//! failure mode is a typed [`EcError`].

use bytes::Bytes;

use crate::gf;

/// Typed failures of erasure encode/decode. Decoding never panics; every
/// malformed input or unsatisfiable request lands here.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EcError {
    /// Rejected `(k, m)` geometry: both must be at least 1 and
    /// `k + m <= 255` (shard indices must be distinct GF(2^8) points).
    InvalidParams {
        /// Requested data shard count.
        k: u8,
        /// Requested parity shard count.
        m: u8,
    },
    /// A shard index is outside `0..k+m`.
    ShardIndexOutOfRange {
        /// The offending index.
        index: u8,
        /// Total shards of this code (`k + m`).
        shards: u8,
    },
    /// The same shard index was supplied twice.
    DuplicateShard {
        /// The duplicated index.
        index: u8,
    },
    /// Fewer than `k` distinct shards survive: the stripe is unrecoverable.
    NotEnoughShards {
        /// Distinct shards available.
        have: usize,
        /// Shards required (`k`).
        need: u8,
    },
    /// A supplied shard's length does not match the stripe geometry.
    ShardLengthMismatch {
        /// The shard's index.
        index: u8,
        /// The length supplied.
        len: usize,
        /// The length the geometry requires.
        expected: usize,
    },
    /// The decode submatrix was singular. Unreachable for this code's
    /// Cauchy construction; kept as a typed error so decoding stays total.
    SingularMatrix,
}

impl std::fmt::Display for EcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EcError::InvalidParams { k, m } => {
                write!(
                    f,
                    "invalid RS geometry k={k} m={m} (need k,m >= 1 and k+m <= 255)"
                )
            }
            EcError::ShardIndexOutOfRange { index, shards } => {
                write!(
                    f,
                    "shard index {index} out of range (code has {shards} shards)"
                )
            }
            EcError::DuplicateShard { index } => write!(f, "shard index {index} supplied twice"),
            EcError::NotEnoughShards { have, need } => {
                write!(f, "only {have} shards survive, {need} needed")
            }
            EcError::ShardLengthMismatch {
                index,
                len,
                expected,
            } => {
                write!(
                    f,
                    "shard {index} is {len} bytes, geometry requires {expected}"
                )
            }
            EcError::SingularMatrix => write!(f, "decode submatrix is singular"),
        }
    }
}

impl std::error::Error for EcError {}

/// A validated `(k, m)` Reed-Solomon code with its precomputed Cauchy
/// parity matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsCode {
    k: u8,
    m: u8,
    /// `m x k` parity coefficients, row-major.
    parity: Vec<u8>,
}

impl RsCode {
    /// Build the code; rejects geometries whose shard indices would not be
    /// distinct field points.
    pub fn new(k: u8, m: u8) -> Result<Self, EcError> {
        if k == 0 || m == 0 || (k as usize) + (m as usize) > 255 {
            return Err(EcError::InvalidParams { k, m });
        }
        let mut parity = Vec::with_capacity(k as usize * m as usize);
        for p in 0..m {
            for j in 0..k {
                // x_p ^ y_j is non-zero (the index sets are disjoint), so
                // the inverse exists; the fallback keeps this panic-free.
                parity.push(gf::inv((k + p) ^ j).unwrap_or_default());
            }
        }
        Ok(Self { k, m, parity })
    }

    /// Data shard count.
    pub fn k(&self) -> u8 {
        self.k
    }

    /// Parity shard count (the number of simultaneous losses tolerated).
    pub fn m(&self) -> u8 {
        self.m
    }

    /// Total shards per stripe (`k + m`).
    pub fn shards(&self) -> u8 {
        self.k + self.m
    }

    /// Logical shard length for a payload of `total_len` bytes.
    pub fn shard_len(&self, total_len: usize) -> usize {
        total_len.div_ceil(self.k as usize)
    }

    /// Byte range of data shard `j` within the payload (empty for shards
    /// past the end of a short payload).
    pub fn data_range(&self, j: u8, total_len: usize) -> std::ops::Range<usize> {
        let l = self.shard_len(total_len);
        let start = (j as usize * l).min(total_len);
        let end = ((j as usize + 1) * l).min(total_len);
        start..end
    }

    /// True (stored) length of shard `index`: data shards carry their
    /// payload slice, parity shards are always full-length.
    pub fn true_len(&self, index: u8, total_len: usize) -> usize {
        if index < self.k {
            self.data_range(index, total_len).len()
        } else {
            self.shard_len(total_len)
        }
    }

    /// Encode a payload into `k + m` shards: the first `k` are zero-copy
    /// slices of `payload` (true lengths, logical zero-pad), the last `m`
    /// are freshly computed parity of `shard_len` bytes each.
    pub fn encode(&self, payload: &Bytes) -> Vec<Bytes> {
        let total = payload.len();
        let l = self.shard_len(total);
        let mut shards = Vec::with_capacity(self.shards() as usize);
        for j in 0..self.k {
            shards.push(payload.slice(self.data_range(j, total)));
        }
        for p in 0..self.m {
            let mut buf = vec![0u8; l];
            for j in 0..self.k {
                let coef = self.parity[p as usize * self.k as usize + j as usize];
                gf::mul_acc(&mut buf, &payload[self.data_range(j, total)], coef);
            }
            shards.push(Bytes::from(buf));
        }
        shards
    }

    /// The encoding row of shard `index`: a unit vector for data shards,
    /// the Cauchy row for parity shards.
    fn row_of(&self, index: u8) -> Vec<u8> {
        let mut row = vec![0u8; self.k as usize];
        if index < self.k {
            row[index as usize] = 1;
        } else {
            let p = (index - self.k) as usize;
            row.copy_from_slice(&self.parity[p * self.k as usize..(p + 1) * self.k as usize]);
        }
        row
    }

    /// Validate a survivor set and select the `k` lowest-indexed shards.
    /// Returns `(chosen_positions_into_input, inverse_matrix)` where the
    /// inverse maps the chosen shards back to the original data shards.
    fn decode_matrix(
        &self,
        shards: &[(u8, &[u8])],
        total_len: usize,
    ) -> Result<(Vec<usize>, Vec<u8>), EcError> {
        let kk = self.k as usize;
        let mut seen = [false; 256];
        for &(index, data) in shards {
            if index >= self.shards() {
                return Err(EcError::ShardIndexOutOfRange {
                    index,
                    shards: self.shards(),
                });
            }
            if seen[index as usize] {
                return Err(EcError::DuplicateShard { index });
            }
            seen[index as usize] = true;
            let expected = self.true_len(index, total_len);
            if data.len() != expected {
                return Err(EcError::ShardLengthMismatch {
                    index,
                    len: data.len(),
                    expected,
                });
            }
        }
        if shards.len() < kk {
            return Err(EcError::NotEnoughShards {
                have: shards.len(),
                need: self.k,
            });
        }
        // Deterministic choice: the k lowest shard indices among survivors.
        let mut order: Vec<usize> = (0..shards.len()).collect();
        order.sort_unstable_by_key(|&i| shards[i].0);
        order.truncate(kk);

        // Gauss-Jordan inversion of the chosen rows over GF(2^8).
        let mut mat = Vec::with_capacity(kk * kk);
        for &pos in &order {
            mat.extend_from_slice(&self.row_of(shards[pos].0));
        }
        let mut inv = vec![0u8; kk * kk];
        for i in 0..kk {
            inv[i * kk + i] = 1;
        }
        for col in 0..kk {
            let pivot = (col..kk)
                .find(|&r| mat[r * kk + col] != 0)
                .ok_or(EcError::SingularMatrix)?;
            if pivot != col {
                for c in 0..kk {
                    mat.swap(pivot * kk + c, col * kk + c);
                    inv.swap(pivot * kk + c, col * kk + c);
                }
            }
            let scale = gf::inv(mat[col * kk + col]).ok_or(EcError::SingularMatrix)?;
            for c in 0..kk {
                mat[col * kk + c] = gf::mul(mat[col * kk + c], scale);
                inv[col * kk + c] = gf::mul(inv[col * kk + c], scale);
            }
            for r in 0..kk {
                let factor = mat[r * kk + col];
                if r == col || factor == 0 {
                    continue;
                }
                for c in 0..kk {
                    mat[r * kk + c] = gf::add(mat[r * kk + c], gf::mul(factor, mat[col * kk + c]));
                    inv[r * kk + c] = gf::add(inv[r * kk + c], gf::mul(factor, inv[col * kk + c]));
                }
            }
        }
        Ok((order, inv))
    }

    /// Recover all `k` data shards (full `shard_len` bytes each, zero
    /// padding included) from any `k` survivors.
    fn data_shards(
        &self,
        shards: &[(u8, &[u8])],
        total_len: usize,
    ) -> Result<Vec<Vec<u8>>, EcError> {
        let (order, inv) = self.decode_matrix(shards, total_len)?;
        let kk = self.k as usize;
        let l = self.shard_len(total_len);
        let mut out = Vec::with_capacity(kk);
        for j in 0..kk {
            // Fast path: the survivor set contains data shard j itself.
            if let Some(&pos) = order.iter().find(|&&p| shards[p].0 as usize == j) {
                let mut buf = vec![0u8; l];
                let src = shards[pos].1;
                buf[..src.len()].copy_from_slice(src);
                out.push(buf);
                continue;
            }
            let mut buf = vec![0u8; l];
            for (i, &pos) in order.iter().enumerate() {
                gf::mul_acc(&mut buf, shards[pos].1, inv[j * kk + i]);
            }
            out.push(buf);
        }
        Ok(out)
    }

    /// Decode the original payload from any `k` of the `k + m` shards.
    /// `shards` are `(index, bytes)` pairs with true lengths; `total_len`
    /// is the payload length recorded at encode time.
    pub fn decode(&self, shards: &[(u8, &[u8])], total_len: usize) -> Result<Vec<u8>, EcError> {
        let data = self.data_shards(shards, total_len)?;
        let mut out = Vec::with_capacity(total_len);
        for (j, shard) in data.iter().enumerate() {
            let take = self.data_range(j as u8, total_len).len();
            out.extend_from_slice(&shard[..take]);
        }
        Ok(out)
    }

    /// Rebuild one lost shard (data or parity, true length) from any `k`
    /// survivors — the repair collective's primitive.
    pub fn reconstruct_shard(
        &self,
        shards: &[(u8, &[u8])],
        index: u8,
        total_len: usize,
    ) -> Result<Vec<u8>, EcError> {
        if index >= self.shards() {
            return Err(EcError::ShardIndexOutOfRange {
                index,
                shards: self.shards(),
            });
        }
        let data = self.data_shards(shards, total_len)?;
        if index < self.k {
            let mut shard = data.into_iter().nth(index as usize).unwrap_or_default();
            shard.truncate(self.true_len(index, total_len));
            Ok(shard)
        } else {
            let p = (index - self.k) as usize;
            let mut buf = vec![0u8; self.shard_len(total_len)];
            for (j, shard) in data.iter().enumerate() {
                gf::mul_acc(&mut buf, shard, self.parity[p * self.k as usize + j]);
            }
            Ok(buf)
        }
    }
}
