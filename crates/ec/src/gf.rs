//! Arithmetic in GF(2^8), the byte field of Reed-Solomon coding.
//!
//! Elements are bytes; addition is XOR (characteristic 2) and
//! multiplication is polynomial multiplication modulo the AES-adjacent
//! primitive polynomial `x^8 + x^4 + x^3 + x^2 + 1` (0x11d, the classic
//! RS-erasure choice). Multiplication and division go through log/exp
//! tables generated at compile time by a `const fn`, so the hot encode
//! loop is two lookups and an add.
//!
//! Every function in this module is total and panic-free: division and
//! inversion of zero return `None` instead of faulting, and the table
//! indices are bounded by construction (`log` of a non-zero byte is at
//! most 254, so `log[a] + log[b] <= 508 < 512`).

/// The field's primitive polynomial (x^8 + x^4 + x^3 + x^2 + 1).
pub const PRIMITIVE_POLY: u16 = 0x11d;

/// Number of elements in the field.
pub const FIELD_SIZE: usize = 256;

const fn build_tables() -> ([u8; FIELD_SIZE], [u8; 512]) {
    let mut log = [0u8; FIELD_SIZE];
    let mut exp = [0u8; 512];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= PRIMITIVE_POLY;
        }
        i += 1;
    }
    // Mirror the cycle so `exp[log[a] + log[b]]` never needs a mod 255.
    let mut j = 255;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (log, exp)
}

const TABLES: ([u8; FIELD_SIZE], [u8; 512]) = build_tables();
/// `LOG[a]` = discrete log of `a` to the generator (undefined at 0).
pub const LOG: [u8; FIELD_SIZE] = TABLES.0;
/// `EXP[i]` = generator to the `i`-th power, doubled up to 512 entries.
pub const EXP: [u8; 512] = TABLES.1;

/// Field addition (and subtraction — characteristic 2): XOR.
#[inline]
pub const fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication via log/exp tables.
#[inline]
pub const fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Multiplicative inverse; `None` for zero (which has none).
#[inline]
pub const fn inv(a: u8) -> Option<u8> {
    if a == 0 {
        None
    } else {
        Some(EXP[255 - LOG[a as usize] as usize])
    }
}

/// Field division `a / b`; `None` when `b` is zero.
#[inline]
pub const fn div(a: u8, b: u8) -> Option<u8> {
    if b == 0 {
        None
    } else if a == 0 {
        Some(0)
    } else {
        Some(EXP[LOG[a as usize] as usize + 255 - LOG[b as usize] as usize])
    }
}

/// XOR-accumulate `coef * src[i]` into `dst[i]` for every overlapping
/// index — the inner loop of systematic RS encoding. `src` and `dst` may
/// have different lengths (short data shards are logically zero-padded);
/// only the overlap is touched because the missing tail contributes zero.
#[inline]
pub fn mul_acc(dst: &mut [u8], src: &[u8], coef: u8) {
    if coef == 0 {
        return;
    }
    if coef == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= *s;
        }
        return;
    }
    let log_c = LOG[coef as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= EXP[log_c + LOG[*s as usize] as usize];
        }
    }
}
