//! `replidedup-ec` — Reed-Solomon erasure coding for the redundancy
//! policy engine.
//!
//! The paper replicates every chunk `K` times; erasure coding is the
//! other classic redundancy lever: `k` data shards plus `m` parity shards
//! survive any `m` losses at a storage cost of `(k + m) / k` instead of
//! `K`. This crate supplies the math and the layout — [`gf`] (GF(2^8)
//! log/exp arithmetic), [`RsCode`] (systematic Cauchy-matrix encode and
//! decode-from-any-`k`), and [`stripe`] (deterministic shard-to-node
//! rotation) — while `replidedup-core` decides *which* chunks get coded
//! and credits naturally duplicated chunks against stripe redundancy.
//!
//! Decode paths are panic-free by contract: every failure is a typed
//! [`EcError`], and CI greps this crate for stray `unwrap()`/`panic!`.

pub mod gf;
pub mod rs;
pub mod stripe;

pub use rs::{EcError, RsCode};
pub use stripe::{shard_node, shard_nodes};
