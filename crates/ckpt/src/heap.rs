//! Page-tracked heap: the AC-FTE / jemalloc substitute.
//!
//! The paper's prototype integrates with the AC-FTE fault-tolerance runtime,
//! which transparently captures "all memory pages that were allocated by the
//! application during its runtime" (via a jemalloc-based allocator) and
//! passes them to `DUMP_OUTPUT`; chunks are matched with 4 KiB memory pages.
//!
//! [`TrackedHeap`] reproduces that capture model: applications allocate
//! page-aligned regions from an arena, all writes go through the heap (which
//! tracks dirty pages at page granularity, like an `mprotect`-based
//! tracker), and [`TrackedHeap::snapshot_bytes`] serializes the allocation
//! table plus the raw arena — page-aligned, so chunk == page exactly as in
//! the paper.

/// Default page size (matches the paper's chunk size).
pub const PAGE_SIZE: usize = 4096;

/// Handle to an allocated region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionId(u32);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Region {
    /// Byte offset into the arena (page aligned).
    offset: u64,
    /// Requested length in bytes.
    len: u64,
    live: bool,
}

/// A page-granular arena with dirty tracking.
#[derive(Debug, Clone)]
pub struct TrackedHeap {
    page_size: usize,
    arena: Vec<u8>,
    regions: Vec<Region>,
    dirty: Vec<bool>,
}

impl Default for TrackedHeap {
    fn default() -> Self {
        Self::new(PAGE_SIZE)
    }
}

impl TrackedHeap {
    /// Empty heap with the given page size.
    ///
    /// # Panics
    /// If `page_size` is zero.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Self {
            page_size,
            arena: Vec::new(),
            regions: Vec::new(),
            dirty: Vec::new(),
        }
    }

    /// Page size of this heap.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Allocate a zero-filled region of `len` bytes (rounded up to whole
    /// pages in the arena). Returns a stable handle.
    pub fn alloc(&mut self, len: usize) -> RegionId {
        let offset = self.arena.len() as u64;
        let padded = len.div_ceil(self.page_size) * self.page_size;
        self.arena.resize(self.arena.len() + padded, 0);
        let pages = padded / self.page_size;
        self.dirty.extend(std::iter::repeat_n(true, pages));
        self.regions.push(Region {
            offset,
            len: len as u64,
            live: true,
        });
        RegionId(self.regions.len() as u32 - 1)
    }

    /// Free a region: its pages are zeroed (zero pages deduplicate well,
    /// which mirrors what a real allocator's madvised-away pages look like
    /// in a transparent checkpoint) and marked dead.
    ///
    /// # Panics
    /// If the region is already dead.
    pub fn free(&mut self, id: RegionId) {
        let r = &mut self.regions[id.0 as usize];
        assert!(r.live, "double free of {id:?}");
        r.live = false;
        let (offset, len) = (r.offset as usize, r.len as usize);
        let padded = len.div_ceil(self.page_size) * self.page_size;
        self.arena[offset..offset + padded].fill(0);
        self.mark_dirty(offset, padded);
    }

    fn region(&self, id: RegionId) -> &Region {
        let r = &self.regions[id.0 as usize];
        assert!(r.live, "use of freed region {id:?}");
        r
    }

    /// Immutable view of a region's bytes.
    pub fn read(&self, id: RegionId) -> &[u8] {
        let r = self.region(id);
        &self.arena[r.offset as usize..(r.offset + r.len) as usize]
    }

    /// Write `data` into the region at `offset`, marking touched pages dirty.
    ///
    /// # Panics
    /// On out-of-bounds writes.
    pub fn write(&mut self, id: RegionId, offset: usize, data: &[u8]) {
        let r = *self.region(id);
        assert!(
            offset + data.len() <= r.len as usize,
            "write of {} bytes at {offset} overruns region of {}",
            data.len(),
            r.len
        );
        let start = r.offset as usize + offset;
        self.arena[start..start + data.len()].copy_from_slice(data);
        self.mark_dirty(start, data.len().max(1));
    }

    /// Mutable access to the whole region; conservatively dirties all of
    /// its pages (page-granular tracking, like a write-protection fault
    /// would give a real runtime).
    pub fn as_mut_slice(&mut self, id: RegionId) -> &mut [u8] {
        let r = *self.region(id);
        let (start, len) = (r.offset as usize, r.len as usize);
        self.mark_dirty(start, len.max(1));
        &mut self.arena[start..start + len]
    }

    fn mark_dirty(&mut self, start: usize, len: usize) {
        let first = start / self.page_size;
        let last = (start + len - 1) / self.page_size;
        for p in first..=last {
            self.dirty[p] = true;
        }
    }

    /// Number of pages in the arena.
    pub fn page_count(&self) -> usize {
        self.dirty.len()
    }

    /// Number of pages written since the last [`Self::clear_dirty`].
    pub fn dirty_page_count(&self) -> usize {
        self.dirty.iter().filter(|&&d| d).count()
    }

    /// Reset dirty tracking (a checkpoint runtime calls this after a dump).
    pub fn clear_dirty(&mut self) {
        self.dirty.fill(false);
    }

    /// Raw arena bytes (page-aligned; what AC-FTE's transparent mode dumps).
    pub fn arena(&self) -> &[u8] {
        &self.arena
    }

    /// Serialize allocation table + arena into one page-aligned buffer.
    /// The metadata header occupies whole pages so the arena's page/chunk
    /// alignment is preserved inside the snapshot.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut meta = Vec::new();
        meta.extend_from_slice(&(self.page_size as u64).to_le_bytes());
        meta.extend_from_slice(&(self.regions.len() as u64).to_le_bytes());
        for r in &self.regions {
            meta.extend_from_slice(&r.offset.to_le_bytes());
            meta.extend_from_slice(&r.len.to_le_bytes());
            meta.push(u8::from(r.live));
        }
        let header_pages = meta.len().div_ceil(self.page_size).max(1);
        let mut out = vec![0u8; header_pages * self.page_size + self.arena.len()];
        // First 8 bytes: header page count, so restore knows where the
        // arena starts; then the metadata.
        out[..8].copy_from_slice(&(header_pages as u64).to_le_bytes());
        out[8..8 + meta.len()].copy_from_slice(&meta);
        out[header_pages * self.page_size..].copy_from_slice(&self.arena);
        out
    }

    /// Rebuild a heap from [`Self::snapshot_bytes`] output.
    ///
    /// # Errors
    /// Returns a message when the snapshot is malformed.
    pub fn restore_bytes(bytes: &[u8]) -> Result<Self, String> {
        let take8 = |b: &[u8], at: usize| -> Result<u64, String> {
            b.get(at..at + 8)
                .map(|s| u64::from_le_bytes(s.try_into().expect("8-byte slice")))
                .ok_or_else(|| "snapshot truncated".to_string())
        };
        let header_pages = take8(bytes, 0)? as usize;
        let page_size = take8(bytes, 8)? as usize;
        if page_size == 0 {
            return Err("snapshot has zero page size".into());
        }
        let region_count = take8(bytes, 16)? as usize;
        let mut regions = Vec::with_capacity(region_count);
        let mut at = 24;
        for _ in 0..region_count {
            let offset = take8(bytes, at)?;
            let len = take8(bytes, at + 8)?;
            let live = *bytes.get(at + 16).ok_or("snapshot truncated")? != 0;
            regions.push(Region { offset, len, live });
            at += 17;
        }
        let arena_start = header_pages * page_size;
        if arena_start > bytes.len() {
            return Err("snapshot header overruns buffer".into());
        }
        let arena = bytes[arena_start..].to_vec();
        for (i, r) in regions.iter().enumerate() {
            let padded = (r.len as usize).div_ceil(page_size) * page_size;
            if r.offset as usize + padded > arena.len() {
                return Err(format!("region {i} overruns restored arena"));
            }
        }
        let pages = arena.len() / page_size;
        Ok(Self {
            page_size,
            arena,
            regions,
            dirty: vec![false; pages],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_page_aligned_and_zeroed() {
        let mut h = TrackedHeap::new(16);
        let a = h.alloc(10);
        let b = h.alloc(17);
        assert_eq!(h.read(a), &[0; 10]);
        assert_eq!(h.read(b).len(), 17);
        assert_eq!(h.arena().len(), 16 + 32, "regions rounded to pages");
        assert_eq!(h.page_count(), 3);
    }

    #[test]
    fn write_and_read_roundtrip() {
        let mut h = TrackedHeap::new(16);
        let r = h.alloc(20);
        h.write(r, 3, &[1, 2, 3]);
        assert_eq!(&h.read(r)[3..6], &[1, 2, 3]);
        assert_eq!(&h.read(r)[..3], &[0, 0, 0]);
    }

    #[test]
    fn dirty_tracking_is_page_granular() {
        let mut h = TrackedHeap::new(16);
        let r = h.alloc(64); // 4 pages
        h.clear_dirty();
        assert_eq!(h.dirty_page_count(), 0);
        h.write(r, 0, &[1]);
        assert_eq!(h.dirty_page_count(), 1);
        h.write(r, 15, &[1, 1]); // straddles pages 0 and 1
        assert_eq!(h.dirty_page_count(), 2);
        h.as_mut_slice(r)[63] = 9;
        assert_eq!(h.dirty_page_count(), 4, "as_mut_slice dirties the region");
    }

    #[test]
    fn free_zeroes_pages() {
        let mut h = TrackedHeap::new(16);
        let r = h.alloc(16);
        h.write(r, 0, &[7; 16]);
        h.free(r);
        assert_eq!(&h.arena()[..16], &[0; 16]);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut h = TrackedHeap::new(16);
        let r = h.alloc(8);
        h.free(r);
        h.free(r);
    }

    #[test]
    #[should_panic(expected = "use of freed region")]
    fn use_after_free_panics() {
        let mut h = TrackedHeap::new(16);
        let r = h.alloc(8);
        h.free(r);
        h.read(r);
    }

    #[test]
    #[should_panic(expected = "overruns region")]
    fn out_of_bounds_write_panics() {
        let mut h = TrackedHeap::new(16);
        let r = h.alloc(8);
        h.write(r, 6, &[1, 2, 3]);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut h = TrackedHeap::new(16);
        let a = h.alloc(20);
        let b = h.alloc(5);
        h.write(a, 0, b"hello world");
        h.write(b, 0, b"abc");
        let freed = h.alloc(16);
        h.free(freed);
        let snap = h.snapshot_bytes();
        assert_eq!(snap.len() % 16, 0, "snapshot is page aligned");
        let restored = TrackedHeap::restore_bytes(&snap).unwrap();
        assert_eq!(restored.read(a), h.read(a));
        assert_eq!(restored.read(b), h.read(b));
        assert_eq!(restored.page_size(), 16);
        assert_eq!(restored.arena(), h.arena());
    }

    #[test]
    fn restored_heap_can_keep_allocating() {
        let mut h = TrackedHeap::new(16);
        let a = h.alloc(8);
        h.write(a, 0, &[9; 8]);
        let mut r = TrackedHeap::restore_bytes(&h.snapshot_bytes()).unwrap();
        let b = r.alloc(8);
        r.write(b, 0, &[1; 8]);
        assert_eq!(r.read(a), &[9; 8]);
        assert_eq!(r.read(b), &[1; 8]);
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(TrackedHeap::restore_bytes(&[]).is_err());
        assert!(TrackedHeap::restore_bytes(&[0; 12]).is_err());
        // Header page count pointing past the end.
        let mut h = TrackedHeap::new(16);
        h.alloc(8);
        let mut snap = h.snapshot_bytes();
        snap[0] = 0xFF;
        assert!(TrackedHeap::restore_bytes(&snap).is_err());
    }

    #[test]
    fn empty_heap_snapshot_roundtrips() {
        let h = TrackedHeap::new(32);
        let snap = h.snapshot_bytes();
        let r = TrackedHeap::restore_bytes(&snap).unwrap();
        assert_eq!(r.page_count(), 0);
        assert_eq!(r.page_size(), 32);
    }
}
