//! Checkpoint/restart driver: the glue between an application's
//! [`TrackedHeap`](crate::heap::TrackedHeap) and the collective dump.
//!
//! Mirrors how the paper uses AC-FTE: "we use the transparent mode to
//! capture all memory pages that were allocated by the application during
//! its runtime and then pass them to the DUMP_OUTPUT primitive when a
//! checkpoint is desired."

use replidedup_core::{DumpConfig, DumpError, DumpStats, ReplError, Replicator, RestoreError};
use replidedup_hash::ChunkHasher;
use replidedup_mpi::Comm;
use replidedup_storage::{Cluster, DumpId};

use crate::heap::TrackedHeap;

/// When to checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointSchedule {
    /// Checkpoint every `n` iterations (at iterations n, 2n, ...).
    Every(u64),
    /// Checkpoint exactly at the listed iteration (paper's HPCCG setup:
    /// one checkpoint at iteration 100 of 127).
    AtIteration(u64),
    /// Never checkpoint (the paper's "baseline" rows).
    Never,
}

impl CheckpointSchedule {
    /// Should a checkpoint be taken after iteration `iter` (1-based)?
    pub fn due(&self, iter: u64) -> bool {
        match *self {
            CheckpointSchedule::Every(n) => n > 0 && iter > 0 && iter.is_multiple_of(n),
            CheckpointSchedule::AtIteration(at) => iter == at,
            CheckpointSchedule::Never => false,
        }
    }
}

/// Per-rank checkpoint runtime.
pub struct CheckpointRuntime<'a> {
    cluster: &'a Cluster,
    hasher: &'a (dyn ChunkHasher + Sync),
    config: DumpConfig,
    next_dump: DumpId,
    /// Statistics of every checkpoint taken through this runtime.
    pub history: Vec<DumpStats>,
}

impl<'a> CheckpointRuntime<'a> {
    /// New runtime writing to `cluster` with `config`.
    pub fn new(
        cluster: &'a Cluster,
        hasher: &'a (dyn ChunkHasher + Sync),
        config: DumpConfig,
    ) -> Self {
        Self {
            cluster,
            hasher,
            config,
            next_dump: 1,
            history: Vec::new(),
        }
    }

    /// The dump configuration in use.
    pub fn config(&self) -> &DumpConfig {
        &self.config
    }

    /// Dump id of the most recent checkpoint (None before the first).
    pub fn latest_dump_id(&self) -> Option<DumpId> {
        (self.next_dump > 1).then(|| self.next_dump - 1)
    }

    /// The replication session this runtime drives (config is validated
    /// once per call; `new()` stays infallible for API compatibility).
    fn replicator(&self) -> Result<Replicator<'a>, DumpError> {
        Ok(Replicator::builder(self.config.strategy)
            .with_config(self.config)
            .cluster(self.cluster)
            .hasher(self.hasher)
            .build()?)
    }

    /// Collective: capture the heap and dump it with the configured
    /// strategy. All ranks must call together.
    pub fn checkpoint(
        &mut self,
        comm: &mut Comm,
        heap: &mut TrackedHeap,
    ) -> Result<DumpStats, DumpError> {
        let repl = self.replicator()?;
        let snapshot = heap.snapshot_bytes();
        comm.tracer().enter("ckpt_checkpoint");
        let result = repl.dump(comm, self.next_dump, &snapshot);
        comm.tracer().exit("ckpt_checkpoint");
        let stats = result.map_err(|e| match e {
            ReplError::Config(c) => DumpError::Config(c),
            ReplError::Dump(d) => d,
            // restore errors cannot come out of a dump
            other => panic!("unexpected dump failure: {other}"),
        })?;
        self.next_dump += 1;
        heap.clear_dirty();
        self.history.push(stats.clone());
        Ok(stats)
    }

    /// Collective: restore the heap from checkpoint `dump_id`.
    pub fn restart_from(
        &self,
        comm: &mut Comm,
        dump_id: DumpId,
    ) -> Result<TrackedHeap, RestartError> {
        let repl = match self.replicator() {
            Ok(r) => r,
            Err(DumpError::Config(c)) => return Err(RestartError::Config(c)),
            Err(other) => panic!("unexpected build failure: {other}"),
        };
        comm.tracer().enter("ckpt_restart");
        let bytes = repl.restore(comm, dump_id);
        comm.tracer().exit("ckpt_restart");
        let bytes = bytes.map_err(|e| match e {
            ReplError::Restore(r) => RestartError::Restore(r),
            other => panic!("unexpected restore failure: {other}"),
        })?;
        TrackedHeap::restore_bytes(&bytes).map_err(RestartError::Corrupt)
    }

    /// Collective: restore the heap from the most recent checkpoint.
    pub fn restart(&self, comm: &mut Comm) -> Result<TrackedHeap, RestartError> {
        let id = self.latest_dump_id().ok_or(RestartError::NoCheckpoint)?;
        self.restart_from(comm, id)
    }
}

/// Restart failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RestartError {
    /// No checkpoint has been taken yet.
    NoCheckpoint,
    /// The runtime's dump configuration is invalid.
    Config(replidedup_core::ConfigError),
    /// The collective restore failed.
    Restore(RestoreError),
    /// The restored bytes do not parse as a heap snapshot.
    Corrupt(String),
}

impl std::fmt::Display for RestartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestartError::NoCheckpoint => write!(f, "no checkpoint taken yet"),
            RestartError::Config(e) => write!(f, "invalid checkpoint config: {e}"),
            RestartError::Restore(e) => write!(f, "restore failed: {e}"),
            RestartError::Corrupt(msg) => write!(f, "corrupt heap snapshot: {msg}"),
        }
    }
}

impl std::error::Error for RestartError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RestartError::Config(e) => Some(e),
            RestartError::Restore(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RestoreError> for RestartError {
    fn from(e: RestoreError) -> Self {
        RestartError::Restore(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replidedup_core::Strategy;
    use replidedup_hash::Sha1ChunkHasher;
    use replidedup_mpi::WorldConfig;
    use replidedup_storage::Placement;

    #[test]
    fn schedule_every() {
        let s = CheckpointSchedule::Every(30);
        assert!(!s.due(0));
        assert!(!s.due(29));
        assert!(s.due(30));
        assert!(s.due(60));
        assert!(!s.due(61));
        assert!(!CheckpointSchedule::Every(0).due(5), "Every(0) never fires");
    }

    #[test]
    fn schedule_at_iteration_and_never() {
        let s = CheckpointSchedule::AtIteration(100);
        assert!(s.due(100));
        assert!(!s.due(99));
        assert!(!CheckpointSchedule::Never.due(100));
    }

    #[test]
    fn checkpoint_restart_roundtrip() {
        let cluster = Cluster::new(Placement::one_per_node(4));
        let cfg = DumpConfig::paper_defaults(Strategy::CollDedup)
            .with_replication(3)
            .with_chunk_size(64);
        let out = WorldConfig::default()
            .launch(4, |comm| {
                let mut heap = TrackedHeap::new(64);
                let r = heap.alloc(200);
                heap.write(r, 0, &[comm.rank() as u8 + 1; 200]);
                let mut rt = CheckpointRuntime::new(&cluster, &Sha1ChunkHasher, cfg);
                assert!(rt.latest_dump_id().is_none());
                let stats = rt.checkpoint(comm, &mut heap).unwrap();
                assert_eq!(rt.latest_dump_id(), Some(1));
                assert_eq!(heap.dirty_page_count(), 0, "checkpoint clears dirty bits");
                // Clobber the heap, then restart.
                heap.write(r, 0, &[0xFF; 200]);
                let restored = rt.restart(comm).unwrap();
                (stats.k, restored.read(r).to_vec(), comm.rank())
            })
            .expect_all();
        for (k, data, rank) in out.results {
            assert_eq!(k, 3);
            assert_eq!(data, vec![rank as u8 + 1; 200]);
        }
    }

    #[test]
    fn restart_without_checkpoint_errors() {
        let cluster = Cluster::new(Placement::one_per_node(2));
        let cfg = DumpConfig::paper_defaults(Strategy::LocalDedup).with_chunk_size(64);
        let out = WorldConfig::default()
            .launch(2, |comm| {
                let rt = CheckpointRuntime::new(&cluster, &Sha1ChunkHasher, cfg);
                rt.restart(comm).err()
            })
            .expect_all();
        assert!(out
            .results
            .iter()
            .all(|e| *e == Some(RestartError::NoCheckpoint)));
    }

    #[test]
    fn successive_checkpoints_get_fresh_dump_ids() {
        let cluster = Cluster::new(Placement::one_per_node(2));
        let cfg = DumpConfig::paper_defaults(Strategy::CollDedup)
            .with_replication(2)
            .with_chunk_size(64);
        let out = WorldConfig::default()
            .launch(2, |comm| {
                let mut heap = TrackedHeap::new(64);
                let r = heap.alloc(100);
                let mut rt = CheckpointRuntime::new(&cluster, &Sha1ChunkHasher, cfg);
                heap.write(r, 0, &[1; 100]);
                rt.checkpoint(comm, &mut heap).unwrap();
                heap.write(r, 0, &[2; 100]);
                rt.checkpoint(comm, &mut heap).unwrap();
                // Restore generation 1, not 2.
                let old = rt.restart_from(comm, 1).unwrap();
                let new = rt.restart(comm).unwrap();
                assert_eq!(rt.history.len(), 2);
                (old.read(r)[0], new.read(r)[0])
            })
            .expect_all();
        assert!(out.results.iter().all(|&(a, b)| a == 1 && b == 2));
    }

    #[test]
    fn restart_after_node_failure() {
        let cluster = Cluster::new(Placement::one_per_node(3));
        let cfg = DumpConfig::paper_defaults(Strategy::CollDedup)
            .with_replication(2)
            .with_chunk_size(64);
        let out = WorldConfig::default()
            .launch(3, |comm| {
                let mut heap = TrackedHeap::new(64);
                let r = heap.alloc(128);
                heap.write(r, 0, &[comm.rank() as u8 + 10; 128]);
                let mut rt = CheckpointRuntime::new(&cluster, &Sha1ChunkHasher, cfg);
                rt.checkpoint(comm, &mut heap).unwrap();
                comm.barrier();
                if comm.rank() == 0 {
                    cluster.fail_node(1);
                    cluster.revive_node(1);
                }
                comm.barrier();
                let restored = rt.restart(comm).unwrap();
                (comm.rank(), restored.read(r).to_vec())
            })
            .expect_all();
        for (rank, data) in out.results {
            assert_eq!(data, vec![rank as u8 + 10; 128]);
        }
    }
}
