//! AC-FTE-style checkpoint/restart runtime for `replidedup`.
//!
//! The paper demonstrates its collective replication library inside the
//! AC-FTE fault-tolerance runtime, which transparently captures all memory
//! pages an application allocated and hands them to `DUMP_OUTPUT` at
//! checkpoint time. This crate reproduces that integration:
//!
//! * [`TrackedHeap`] — a page-granular arena standing in for the
//!   jemalloc-based transparent capture (chunk == 4 KiB page),
//! * [`CheckpointRuntime`] — drives collective checkpoints and restarts
//!   against a [`replidedup_storage::Cluster`],
//! * [`CheckpointSchedule`] — when to checkpoint (the paper's experiments
//!   use fixed iteration counts).

pub mod heap;
pub mod runtime;

pub use heap::{RegionId, TrackedHeap, PAGE_SIZE};
pub use runtime::{CheckpointRuntime, CheckpointSchedule, RestartError};
