//! Per-rank traffic instrumentation.
//!
//! The paper's evaluation hinges on traffic measurements: Figures 4(b)/5(b)
//! plot the average and maximal amount of data each process sends to its
//! partners, and Figures 4(c)/5(c) the maximal receive size. The runtime
//! therefore byte-accounts every transfer, split by transport class, with
//! relaxed atomics (counters are monotonic and only read after a join or a
//! barrier, so no ordering is required).

use std::sync::atomic::{AtomicU64, Ordering};

/// Transport class of a transfer, for attribution in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Matched point-to-point send/recv.
    PointToPoint,
    /// Traffic generated inside a collective implementation.
    Collective,
    /// One-sided RMA `put`/`get`.
    Rma,
}

/// Atomic counters for one rank.
#[derive(Debug, Default)]
pub struct RankCounters {
    p2p_sent: AtomicU64,
    p2p_recv: AtomicU64,
    coll_sent: AtomicU64,
    coll_recv: AtomicU64,
    rma_put: AtomicU64,
    rma_got: AtomicU64,
    /// Bytes written into this rank's RMA windows by peers.
    rma_recv: AtomicU64,
    msgs_sent: AtomicU64,
}

impl RankCounters {
    pub(crate) fn count_send(&self, transport: Transport, bytes: u64) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        match transport {
            Transport::PointToPoint => self.p2p_sent.fetch_add(bytes, Ordering::Relaxed),
            Transport::Collective => self.coll_sent.fetch_add(bytes, Ordering::Relaxed),
            Transport::Rma => self.rma_put.fetch_add(bytes, Ordering::Relaxed),
        };
    }

    pub(crate) fn count_recv(&self, transport: Transport, bytes: u64) {
        match transport {
            Transport::PointToPoint => self.p2p_recv.fetch_add(bytes, Ordering::Relaxed),
            Transport::Collective => self.coll_recv.fetch_add(bytes, Ordering::Relaxed),
            Transport::Rma => self.rma_recv.fetch_add(bytes, Ordering::Relaxed),
        };
    }

    pub(crate) fn count_rma_get(&self, bytes: u64) {
        self.rma_got.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Snapshot into a plain struct.
    pub fn snapshot(&self) -> RankTraffic {
        RankTraffic {
            p2p_sent: self.p2p_sent.load(Ordering::Relaxed),
            p2p_recv: self.p2p_recv.load(Ordering::Relaxed),
            coll_sent: self.coll_sent.load(Ordering::Relaxed),
            coll_recv: self.coll_recv.load(Ordering::Relaxed),
            rma_put: self.rma_put.load(Ordering::Relaxed),
            rma_got: self.rma_got.load(Ordering::Relaxed),
            rma_recv: self.rma_recv.load(Ordering::Relaxed),
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter (used between measured phases).
    pub fn reset(&self) {
        self.p2p_sent.store(0, Ordering::Relaxed);
        self.p2p_recv.store(0, Ordering::Relaxed);
        self.coll_sent.store(0, Ordering::Relaxed);
        self.coll_recv.store(0, Ordering::Relaxed);
        self.rma_put.store(0, Ordering::Relaxed);
        self.rma_got.store(0, Ordering::Relaxed);
        self.rma_recv.store(0, Ordering::Relaxed);
        self.msgs_sent.store(0, Ordering::Relaxed);
    }
}

/// Immutable traffic snapshot for one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankTraffic {
    /// Bytes sent over matched point-to-point messages.
    pub p2p_sent: u64,
    /// Bytes received over matched point-to-point messages.
    pub p2p_recv: u64,
    /// Bytes this rank injected inside collectives.
    pub coll_sent: u64,
    /// Bytes this rank received inside collectives.
    pub coll_recv: u64,
    /// Bytes this rank `put` into remote windows.
    pub rma_put: u64,
    /// Bytes this rank `get` from remote windows.
    pub rma_got: u64,
    /// Bytes peers `put` into this rank's windows.
    pub rma_recv: u64,
    /// Message count (sends + puts).
    pub msgs_sent: u64,
}

impl RankTraffic {
    /// Total bytes leaving this rank.
    pub fn total_sent(&self) -> u64 {
        self.p2p_sent + self.coll_sent + self.rma_put
    }

    /// Total bytes arriving at this rank.
    pub fn total_recv(&self) -> u64 {
        self.p2p_recv + self.coll_recv + self.rma_recv + self.rma_got
    }
}

/// World-wide traffic report: one entry per rank.
#[derive(Debug, Clone, Default)]
pub struct TrafficReport {
    /// Per-rank snapshots, indexed by rank.
    pub ranks: Vec<RankTraffic>,
}

impl TrafficReport {
    /// Sum of bytes sent across all ranks.
    pub fn total_sent(&self) -> u64 {
        self.ranks.iter().map(RankTraffic::total_sent).sum()
    }

    /// Sum of bytes received across all ranks.
    pub fn total_recv(&self) -> u64 {
        self.ranks.iter().map(RankTraffic::total_recv).sum()
    }

    /// Largest per-rank sent volume (the "maximum send size" series).
    pub fn max_sent(&self) -> u64 {
        self.ranks
            .iter()
            .map(RankTraffic::total_sent)
            .max()
            .unwrap_or(0)
    }

    /// Largest per-rank received volume (the "maximal receive size" series
    /// of Figs. 4(c)/5(c)).
    pub fn max_recv(&self) -> u64 {
        self.ranks
            .iter()
            .map(RankTraffic::total_recv)
            .max()
            .unwrap_or(0)
    }

    /// Mean per-rank sent volume.
    pub fn avg_sent(&self) -> f64 {
        if self.ranks.is_empty() {
            0.0
        } else {
            self.total_sent() as f64 / self.ranks.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_by_transport() {
        let c = RankCounters::default();
        c.count_send(Transport::PointToPoint, 10);
        c.count_send(Transport::Collective, 20);
        c.count_send(Transport::Rma, 30);
        c.count_recv(Transport::PointToPoint, 1);
        c.count_recv(Transport::Rma, 3);
        c.count_rma_get(5);
        let s = c.snapshot();
        assert_eq!(s.p2p_sent, 10);
        assert_eq!(s.coll_sent, 20);
        assert_eq!(s.rma_put, 30);
        assert_eq!(s.p2p_recv, 1);
        assert_eq!(s.rma_recv, 3);
        assert_eq!(s.rma_got, 5);
        assert_eq!(s.msgs_sent, 3);
        assert_eq!(s.total_sent(), 60);
        assert_eq!(s.total_recv(), 9);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = RankCounters::default();
        c.count_send(Transport::PointToPoint, 10);
        c.reset();
        assert_eq!(c.snapshot(), RankTraffic::default());
    }

    #[test]
    fn report_aggregates() {
        let report = TrafficReport {
            ranks: vec![
                RankTraffic {
                    p2p_sent: 5,
                    p2p_recv: 2,
                    ..Default::default()
                },
                RankTraffic {
                    p2p_sent: 7,
                    p2p_recv: 10,
                    ..Default::default()
                },
            ],
        };
        assert_eq!(report.total_sent(), 12);
        assert_eq!(report.total_recv(), 12);
        assert_eq!(report.max_sent(), 7);
        assert_eq!(report.max_recv(), 10);
        assert!((report.avg_sent() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = TrafficReport::default();
        assert_eq!(r.max_sent(), 0);
        assert_eq!(r.max_recv(), 0);
        assert_eq!(r.avg_sent(), 0.0);
    }
}
