//! In-process message-passing runtime with MPI-style semantics.
//!
//! `replidedup` reproduces the IPDPS'15 collective-replication paper on a
//! single machine: each MPI rank becomes an OS thread, point-to-point
//! messaging uses matched `(source, tag)` channels with an
//! unexpected-message queue, and the collectives (`barrier`, `bcast`,
//! `reduce`, `allreduce` with a user operator, `gather`, `allgather`,
//! `alltoallv`) use the textbook algorithms a real MPI library would pick.
//! One-sided communication is provided through [`Window`]s mirroring
//! `MPI_Win_create` / `MPI_Put` / `MPI_Win_fence`, which is what the
//! paper's single-sided exchange phase uses.
//!
//! Every transfer is byte-accounted per rank ([`stats`]); the evaluation
//! harness feeds these exact counts to `replidedup-sim` to recover
//! cluster-scale timings.
//!
//! # Example
//!
//! ```
//! use replidedup_mpi::WorldConfig;
//!
//! let out = WorldConfig::default().launch(4, |comm| {
//!     let sum = comm.allreduce(u64::from(comm.rank()), |a, b| a + b);
//!     let all = comm.allgather(comm.rank());
//!     assert_eq!(all, vec![0, 1, 2, 3]);
//!     sum
//! }).expect_all();
//! assert!(out.results.iter().all(|&s| s == 6));
//! ```

pub mod collectives;
pub mod comm;
pub mod fault;
pub mod sched;
pub mod stats;
pub mod window;
pub mod wire;

pub use comm::{
    Comm, FaultRunOutput, Launch, Rank, RankOutcome, RunOutput, Tag, World, WorldConfig,
};
pub use fault::{
    CommError, CrashHook, Fault, FaultAction, FaultPlan, FaultSpecError, FaultTrigger,
    TransientHook,
};
pub use replidedup_trace::{Event, EventKind, PhaseAgg, RankTrace, Tracer, WorldTrace};
pub use sched::SchedSlot;
pub use stats::{RankTraffic, TrafficReport, Transport};
pub use window::Window;
pub use wire::{Chunk, Frame, FrameReader, FrameWriter, Wire, WireError, WireResult};
