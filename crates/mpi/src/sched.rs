//! Bounded worker-pool scheduler for rank execution.
//!
//! [`World`](crate::World) historically ran one OS thread per rank, so a
//! 408-rank world (the paper's scale) needed 408 simultaneously runnable
//! threads. This module multiplexes rank execution onto a bounded number of
//! *worker slots* instead: every rank still owns a thread (its stack is the
//! cheapest possible representation of suspended rank state — the zero-copy
//! `Chunk` payloads mean a parked rank pins no bulk buffers beyond what the
//! algorithm itself holds), but only `workers` of them are runnable at any
//! instant. A rank *parks* — releases its slot — whenever it blocks on a
//! collective or RMA edge (a matched receive, a window handshake, an
//! injected delay) and reacquires a slot before it resumes. Because every
//! blocking wait parks, slot capacity can never deadlock the world: a rank
//! holding a slot is by construction runnable.
//!
//! Scheduling changes only *when* ranks run, never *what* they compute:
//! message matching is by `(source, tag)`, so dump/restore results and
//! trace span sets are byte-identical to thread-per-rank execution (the
//! oversubscription proptests in `tests/` pin this down).
//!
//! This module is the only place in the workspace allowed to spawn OS
//! threads (`ci.sh` enforces that with a grep gate); one-off background
//! workers (e.g. a concurrent healer session) go through [`spawn`].

use std::num::NonZeroUsize;
use std::sync::{Arc, Condvar, Mutex};

/// Counting semaphore over worker slots. Plain `Mutex` + `Condvar`: slot
/// transitions happen only at blocking edges, so this is never on a
/// message-rate hot path.
#[derive(Debug)]
struct Gate {
    capacity: usize,
    running: Mutex<usize>,
    wakeup: Condvar,
}

impl Gate {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            running: Mutex::new(0),
            wakeup: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut running = self.running.lock().expect("scheduler gate poisoned");
        while *running >= self.capacity {
            running = self.wakeup.wait(running).expect("scheduler gate poisoned");
        }
        *running += 1;
    }

    fn release(&self) {
        let mut running = self.running.lock().expect("scheduler gate poisoned");
        debug_assert!(*running > 0, "slot released twice");
        *running = running.saturating_sub(1);
        drop(running);
        self.wakeup.notify_one();
    }
}

/// RAII worker slot held by a running task; dropping it (including during a
/// panic unwind, e.g. an injected crash) frees the slot for a parked peer.
struct Permit<'a>(&'a Gate);

impl<'a> Permit<'a> {
    fn acquire(gate: &'a Gate) -> Self {
        gate.acquire();
        Permit(gate)
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// Releases the slot on construction and reacquires it on drop: the shape
/// of a park. Reacquisition happens even if the blocking closure unwinds,
/// so the enclosing [`Permit`]'s release stays balanced.
struct ParkGuard<'a>(&'a Gate);

impl<'a> ParkGuard<'a> {
    fn park(gate: &'a Gate) -> Self {
        gate.release();
        ParkGuard(gate)
    }
}

impl Drop for ParkGuard<'_> {
    fn drop(&mut self) {
        self.0.acquire();
    }
}

/// A rank's handle onto the world's scheduler. Unpooled worlds (the
/// default, `workers: None`) carry a gate-less slot and every operation is
/// a no-op — the historical thread-per-rank behavior with zero overhead.
#[derive(Clone, Debug, Default)]
pub struct SchedSlot {
    gate: Option<Arc<Gate>>,
}

impl SchedSlot {
    /// A slot with no pooling: parking is free and never blocks.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Whether this slot belongs to a bounded pool.
    pub fn is_pooled(&self) -> bool {
        self.gate.is_some()
    }

    /// Run a blocking wait with the worker slot released: the rank parks,
    /// peers get to run, and the slot is reacquired before this returns
    /// (or before a panic from `wait` propagates).
    pub fn park_while<R>(&self, wait: impl FnOnce() -> R) -> R {
        match &self.gate {
            None => wait(),
            Some(gate) => {
                let _reacquire = ParkGuard::park(gate);
                wait()
            }
        }
    }
}

/// Run one closure per task on dedicated threads, at most `workers` of
/// which are runnable at once (`None` = unbounded, thread-per-rank). Each
/// closure receives the [`SchedSlot`] it must park through at blocking
/// edges. Returns per-task join results in task order; panics are carried
/// as `Err` payloads exactly as `JoinHandle::join` reports them.
pub fn run_tasks<T, F>(
    name_prefix: &str,
    workers: Option<NonZeroUsize>,
    tasks: Vec<F>,
) -> Vec<std::thread::Result<T>>
where
    F: FnOnce(SchedSlot) -> T + Send,
    T: Send,
{
    let gate = workers.map(|w| Arc::new(Gate::new(w.get())));
    std::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .into_iter()
            .enumerate()
            .map(|(i, task)| {
                let slot = SchedSlot { gate: gate.clone() };
                std::thread::Builder::new()
                    .name(format!("{name_prefix}-{i}"))
                    .spawn_scoped(scope, move || match &slot.gate {
                        None => task(slot.clone()),
                        Some(gate) => {
                            let _permit = Permit::acquire(gate);
                            task(slot.clone())
                        }
                    })
                    .expect("spawn task thread")
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    })
}

/// Spawn a named detached background thread (e.g. a concurrent healer
/// session racing a dump). The one sanctioned escape hatch from the
/// worker-pool world for `'static` work; join it via the returned handle.
pub fn spawn<T, F>(name: &str, f: F) -> std::thread::JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(f)
        .expect("spawn background thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    /// Tracks the high-water mark of concurrently running tasks.
    #[derive(Default)]
    struct Watermark {
        current: AtomicUsize,
        peak: AtomicUsize,
    }

    impl Watermark {
        fn enter(&self) {
            let now = self.current.fetch_add(1, Ordering::SeqCst) + 1;
            self.peak.fetch_max(now, Ordering::SeqCst);
        }

        fn exit(&self) {
            self.current.fetch_sub(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn pool_bounds_concurrency() {
        let mark = Watermark::default();
        let tasks: Vec<_> = (0..16)
            .map(|_| {
                |_slot: SchedSlot| {
                    mark.enter();
                    std::thread::sleep(Duration::from_millis(5));
                    mark.exit();
                }
            })
            .collect();
        run_tasks("wm", NonZeroUsize::new(3), tasks);
        assert!(mark.peak.load(Ordering::SeqCst) <= 3);
    }

    #[test]
    fn parked_tasks_free_their_slot() {
        // 4 tasks, 1 worker: each task parks once; if parking did not
        // release the slot, the peak would stay 1 but the parked section
        // could never overlap — verify parks overlap by counting parked
        // tasks at once.
        let parked = Watermark::default();
        let tasks: Vec<_> = (0..4)
            .map(|_| {
                |slot: SchedSlot| {
                    slot.park_while(|| {
                        parked.enter();
                        std::thread::sleep(Duration::from_millis(20));
                        parked.exit();
                    });
                }
            })
            .collect();
        run_tasks("park", NonZeroUsize::new(1), tasks);
        assert!(
            parked.peak.load(Ordering::SeqCst) > 1,
            "parking must release the slot so peers overlap"
        );
    }

    #[test]
    fn unlimited_slot_is_noop() {
        let slot = SchedSlot::unlimited();
        assert!(!slot.is_pooled());
        assert_eq!(slot.park_while(|| 7), 7);
    }

    #[test]
    fn results_keep_task_order() {
        let tasks: Vec<_> = (0..32).map(|i| move |_slot: SchedSlot| i * 3).collect();
        let out = run_tasks("ord", NonZeroUsize::new(2), tasks);
        let vals: Vec<_> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(vals, (0..32).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_task_releases_its_slot() {
        // 1 worker; the first task panics while holding the slot. The
        // remaining tasks must still run to completion.
        let mut tasks: Vec<Box<dyn FnOnce(SchedSlot) -> u32 + Send>> =
            vec![Box::new(|_| panic!("boom"))];
        for i in 0..3u32 {
            tasks.push(Box::new(move |_| i));
        }
        let out = run_tasks("crash", NonZeroUsize::new(1), tasks);
        assert!(out[0].is_err());
        assert!(out[1..].iter().all(|r| r.is_ok()));
    }

    #[test]
    fn spawn_runs_and_joins() {
        let h = spawn("bg-test", || 41 + 1);
        assert_eq!(h.join().unwrap(), 42);
    }
}
