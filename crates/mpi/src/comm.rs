//! The thread-rank world and per-rank communicator.
//!
//! `replidedup` runs each MPI-style rank as an OS thread inside one process.
//! Point-to-point messaging uses one unbounded crossbeam channel per rank
//! with MPI's matching semantics: a receive names `(source, tag)` and
//! messages that arrive before their matching receive are stashed in an
//! unexpected-message queue, exactly like an MPI implementation's UMQ.
//!
//! Why threads instead of real MPI: the reproduction target is the paper's
//! *algorithms and traffic*, not its wire protocol. An in-process runtime
//! executes the identical collective call sequence, measures exact per-rank
//! byte counts, and sidesteps the immature state of Rust MPI bindings; the
//! `replidedup-sim` crate converts measured traffic into cluster-scale
//! timings.

use std::collections::{HashMap, VecDeque};
use std::num::NonZeroUsize;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

use bytes::Bytes;
use replidedup_trace::{Tracer, WorldTrace};

use crate::fault::{
    CommError, Fault, FaultAction, FaultPlan, FaultRuntime, FaultTrigger, InjectedCrash,
};
use crate::sched::{self, SchedSlot};
use crate::stats::{RankCounters, TrafficReport, Transport};
use crate::window::WinBuf;
use crate::wire::{self, Chunk, Frame, Wire};

/// Rank index within a world (MPI `comm_rank`).
pub type Rank = u32;

/// Message tag. User tags must not have the top bit set; the runtime
/// reserves that space for collective-internal messages.
pub type Tag = u64;

/// Top bit marks runtime-internal tags.
pub(crate) const INTERNAL_TAG: Tag = 1 << 63;

/// Death-notice tag: a crashing rank posts one empty message with this tag
/// to every peer so blocked receives wake up and re-check the dead flags.
/// Never stashed in the unexpected-message queue, never user-visible.
pub(crate) const DEATH_TAG: Tag = INTERNAL_TAG | (1 << 62);

/// A matched point-to-point message. The payload is a scatter-gather
/// [`Frame`]: bulk segments stay zero-copy views of the sender's
/// allocations all the way into the receiver's hands.
#[derive(Debug, Clone)]
pub(crate) struct Message {
    pub src: Rank,
    pub tag: Tag,
    pub payload: Frame,
}

/// Out-of-band control messages (RMA window registration). Real MPI also
/// exchanges window handles out-of-band during `MPI_Win_create`.
#[derive(Clone)]
pub(crate) enum CtrlMsg {
    Win {
        src: Rank,
        seq: u64,
        handle: Arc<WinBuf>,
    },
    /// Death notice on the control channel (wakes `win_create` handshakes).
    Dead { src: Rank },
}

/// Configuration for a [`World`] run. The one launch entry point is
/// [`WorldConfig::launch`]; everything a run can vary — worker pool size,
/// fault schedule, tracing, receive timeout — lives here.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// How long a blocking receive may wait before the runtime declares the
    /// program deadlocked and panics. Generous default; tests lower it.
    pub recv_timeout: Duration,
    /// Record per-rank phase traces. Off by default: every rank then runs
    /// with the zero-cost no-op [`Tracer`].
    pub trace: bool,
    /// Deterministic fault schedule to enforce during the run. `None`
    /// (the default) keeps the fault machinery entirely out of the hot
    /// paths.
    pub faults: Option<FaultPlan>,
    /// Bound on simultaneously *runnable* ranks. `None` (the default) is
    /// classic thread-per-rank execution; `Some(w)` multiplexes all ranks
    /// onto `w` worker slots via [`crate::sched`], parking ranks at
    /// blocking collective/RMA edges. Results and trace span sets are
    /// identical either way — only wall-clock interleaving changes.
    pub workers: Option<NonZeroUsize>,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            recv_timeout: Duration::from_secs(120),
            trace: false,
            faults: None,
            workers: None,
        }
    }
}

impl WorldConfig {
    /// Default configuration with phase tracing switched on.
    pub fn traced() -> Self {
        Self {
            trace: true,
            ..Self::default()
        }
    }

    /// Override the deadlock timeout (fault tests use ~2 s instead of the
    /// generous 120 s default so failure paths resolve in seconds).
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = timeout;
        self
    }

    /// Install a fault schedule for the run.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Bound the worker pool to `workers` runnable ranks (clamped to ≥ 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = NonZeroUsize::new(workers.max(1));
        self
    }

    /// Launch `size` ranks running `f` under this configuration and wait
    /// for the world to finish. This is the single entry point behind the
    /// [`World::run`] family: injected crash faults surface as
    /// [`RankOutcome::Crashed`] values (never unwinds the caller), real
    /// panics from a rank propagate, and [`Launch::expect_all`] recovers
    /// the strict "every rank completed" contract.
    ///
    /// # Panics
    /// If `size == 0`, or if a rank panics for any reason other than an
    /// injected crash fault.
    pub fn launch<T, F>(&self, size: u32, f: F) -> Launch<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        launch_world(size, self, f)
    }
}

/// Result of a world run: one value per rank plus the traffic report.
#[derive(Debug)]
pub struct RunOutput<T> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<T>,
    /// Per-rank traffic snapshot taken after all ranks returned.
    pub traffic: TrafficReport,
    /// Per-rank phase traces when [`WorldConfig::trace`] was set.
    pub trace: Option<WorldTrace>,
}

/// How one rank's thread ended under [`World::run_faulty`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankOutcome<T> {
    /// The rank ran to completion and returned this value.
    Completed(T),
    /// The rank died to an injected crash fault.
    Crashed {
        /// The rank that crashed.
        rank: Rank,
    },
}

impl<T> RankOutcome<T> {
    /// The completed value, if the rank survived.
    pub fn completed(self) -> Option<T> {
        match self {
            RankOutcome::Completed(v) => Some(v),
            RankOutcome::Crashed { .. } => None,
        }
    }

    /// Borrow the completed value, if the rank survived.
    pub fn as_completed(&self) -> Option<&T> {
        match self {
            RankOutcome::Completed(v) => Some(v),
            RankOutcome::Crashed { .. } => None,
        }
    }

    /// Whether the rank died to an injected crash.
    pub fn is_crashed(&self) -> bool {
        matches!(self, RankOutcome::Crashed { .. })
    }
}

/// Result of a [`WorldConfig::launch`]: per-rank outcomes (a crashed rank
/// has no return value) plus traffic and traces. Crashed ranks' traces end
/// with their `fault.injected` span.
#[derive(Debug)]
pub struct Launch<T> {
    /// Per-rank outcomes, indexed by rank.
    pub outcomes: Vec<RankOutcome<T>>,
    /// Per-rank traffic snapshot taken after all ranks ended.
    pub traffic: TrafficReport,
    /// Per-rank phase traces when [`WorldConfig::trace`] was set.
    pub trace: Option<WorldTrace>,
}

/// Former name of [`Launch`], kept for one release for downstream readers;
/// in-repo callers all use `WorldConfig::launch` / [`Launch`].
pub type FaultRunOutput<T> = Launch<T>;

impl<T> Launch<T> {
    /// Ranks that died to injected crashes, ascending.
    pub fn crashed_ranks(&self) -> Vec<Rank> {
        self.outcomes
            .iter()
            .filter_map(|o| match o {
                RankOutcome::Crashed { rank } => Some(*rank),
                RankOutcome::Completed(_) => None,
            })
            .collect()
    }

    /// Demand that every rank completed, yielding plain per-rank results.
    ///
    /// # Panics
    /// If any rank died to an injected crash fault — use the
    /// [`Launch::outcomes`] directly to observe crashes as values.
    pub fn expect_all(self) -> RunOutput<T> {
        let results = self
            .outcomes
            .into_iter()
            .map(|o| match o {
                RankOutcome::Completed(v) => v,
                RankOutcome::Crashed { rank } => panic!(
                    "rank {rank} died to an injected crash fault; \
                     inspect Launch::outcomes to observe crashes"
                ),
            })
            .collect();
        RunOutput {
            results,
            traffic: self.traffic,
            trace: self.trace,
        }
    }
}

/// How one rank's closure ended, as carried back over `join`. The `Comm`
/// rides along so every rank's receiver stays alive until all threads have
/// joined — otherwise a fast-exiting rank's dropped channel would turn
/// peers' sends into spurious teardown errors.
enum ThreadEnd<T> {
    Done(T, Option<Vec<replidedup_trace::Event>>),
    Crashed(Rank, Option<Vec<replidedup_trace::Event>>),
    Panicked(Box<dyn std::any::Any + Send + 'static>),
}

/// Injected crashes unwind with a private payload; keep the default panic
/// hook from spamming stderr for them. Installed once, process-wide, and
/// delegates to the previous hook for every real panic.
fn silence_injected_crash_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedCrash>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Entry point: spawn `size` ranks and run `f` on each.
///
/// These free functions are thin delegating wrappers over the one real
/// entry point, [`WorldConfig::launch`]; they remain for one release (see
/// the README migration notes) and all in-repo callers use `launch`.
pub struct World;

impl World {
    /// Run `f` on `size` ranks with default configuration. Wrapper over
    /// `WorldConfig::default().launch(..).expect_all()`.
    ///
    /// # Panics
    /// Propagates a panic from any rank and panics if `size == 0`.
    pub fn run<T, F>(size: u32, f: F) -> RunOutput<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        WorldConfig::default().launch(size, f).expect_all()
    }

    /// Run `f` on `size` ranks with explicit configuration. Wrapper over
    /// [`WorldConfig::launch`] + [`Launch::expect_all`].
    ///
    /// # Panics
    /// Propagates any rank's panic; also panics if the configuration
    /// injects a crash fault that fires (use [`WorldConfig::launch`] to
    /// observe crashes as values).
    pub fn run_with<T, F>(size: u32, config: &WorldConfig, f: F) -> RunOutput<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        config.launch(size, f).expect_all()
    }

    /// Run `f` on `size` ranks, treating injected crash faults as data.
    /// Wrapper over [`WorldConfig::launch`].
    pub fn run_faulty<T, F>(size: u32, config: &WorldConfig, f: F) -> Launch<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        config.launch(size, f)
    }
}

/// The world launcher behind [`WorldConfig::launch`]: builds the per-rank
/// channel mesh, hands every rank body to the [`sched`] executor (bounded
/// worker pool when `config.workers` is set, thread-per-rank otherwise),
/// and assembles outcomes, traffic, and traces after all ranks ended.
fn launch_world<T, F>(size: u32, config: &WorldConfig, f: F) -> Launch<T>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    assert!(size > 0, "world size must be positive");
    let fault_rt: Option<Arc<FaultRuntime>> = config.faults.as_ref().map(|plan| {
        silence_injected_crash_panics();
        Arc::new(FaultRuntime::new(
            size,
            plan.on_crash.clone(),
            plan.on_transient.clone(),
        ))
    });
    let counters: Arc<Vec<RankCounters>> =
        Arc::new((0..size).map(|_| RankCounters::default()).collect());

    let mut data_senders = Vec::with_capacity(size as usize);
    let mut data_receivers = Vec::with_capacity(size as usize);
    let mut ctrl_senders = Vec::with_capacity(size as usize);
    let mut ctrl_receivers = Vec::with_capacity(size as usize);
    for _ in 0..size {
        let (ts, tr) = channel::<Message>();
        data_senders.push(ts);
        data_receivers.push(tr);
        let (cs, cr) = channel::<CtrlMsg>();
        ctrl_senders.push(cs);
        ctrl_receivers.push(cr);
    }
    let data_senders = Arc::new(data_senders);
    let ctrl_senders = Arc::new(ctrl_senders);

    let f = &f;
    let tasks: Vec<_> = data_receivers
        .into_iter()
        .zip(ctrl_receivers)
        .enumerate()
        .map(|(rank, (receiver, ctrl_receiver))| {
            let rank = rank as Rank;
            let data_senders = Arc::clone(&data_senders);
            let ctrl_senders = Arc::clone(&ctrl_senders);
            let counters = Arc::clone(&counters);
            let fault_rt = fault_rt.clone();
            let my_faults: Vec<Fault> = config
                .faults
                .as_ref()
                .map(|p| {
                    p.faults
                        .iter()
                        .filter(|ft| ft.rank == rank)
                        .cloned()
                        .collect()
                })
                .unwrap_or_default();
            let config = config.clone();
            move |slot: SchedSlot| {
                let mut comm = Comm {
                    rank,
                    size,
                    data_senders,
                    receiver,
                    ctrl_senders,
                    ctrl_receiver,
                    pending: HashMap::new(),
                    pending_ctrl: HashMap::new(),
                    counters,
                    op_seq: 0,
                    win_seq: 0,
                    recv_timeout: config.recv_timeout,
                    tracer: if config.trace {
                        Tracer::enabled()
                    } else {
                        Tracer::disabled()
                    },
                    fault_rt,
                    my_faults,
                    msg_ops: 0,
                    sched: slot,
                    tag_ns: 0,
                };
                let caught =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut comm)));
                let end = match caught {
                    Ok(v) => ThreadEnd::Done(v, comm.tracer.take_events()),
                    Err(payload) => match payload.downcast::<InjectedCrash>() {
                        Ok(crash) => ThreadEnd::Crashed(crash.rank, crash.events),
                        Err(other) => ThreadEnd::Panicked(other),
                    },
                };
                // Return the comm alongside the outcome: its receivers must
                // outlive every peer's last send.
                (end, comm)
            }
        })
        .collect();

    // All ranks end (and their channels stay alive) before run_tasks
    // returns, exactly like the scoped-join it replaces.
    let ends: Vec<ThreadEnd<T>> = sched::run_tasks("rank", config.workers, tasks)
        .into_iter()
        .map(|j| match j {
            Ok((end, _comm)) => end,
            // The task catches panics from `f`; reaching here means the
            // runtime itself failed (e.g. trace collection found a leaked
            // span). Re-raise as-is.
            Err(payload) => std::panic::resume_unwind(payload),
        })
        .collect();

    let mut outcomes = Vec::with_capacity(size as usize);
    let mut streams = Vec::with_capacity(size as usize);
    let mut panic_payload = None;
    for end in ends {
        match end {
            ThreadEnd::Done(v, ev) => {
                outcomes.push(RankOutcome::Completed(v));
                streams.push(ev.unwrap_or_default());
            }
            ThreadEnd::Crashed(rank, ev) => {
                outcomes.push(RankOutcome::Crashed { rank });
                streams.push(ev.unwrap_or_default());
            }
            ThreadEnd::Panicked(payload) => {
                if panic_payload.is_none() {
                    panic_payload = Some(payload);
                }
            }
        }
    }
    if let Some(payload) = panic_payload {
        // Re-raise with the original payload so callers (and
        // #[should_panic] tests) see the rank's own message.
        std::panic::resume_unwind(payload);
    }

    let traffic = TrafficReport {
        ranks: counters.iter().map(|c| c.snapshot()).collect(),
    };
    let trace = if config.trace {
        Some(WorldTrace::from_rank_events(streams))
    } else {
        None
    };
    Launch {
        outcomes,
        traffic,
        trace,
    }
}

/// Per-rank communicator handle. Not `Clone`: each rank owns exactly one.
pub struct Comm {
    rank: Rank,
    size: u32,
    data_senders: Arc<Vec<Sender<Message>>>,
    receiver: Receiver<Message>,
    ctrl_senders: Arc<Vec<Sender<CtrlMsg>>>,
    ctrl_receiver: Receiver<CtrlMsg>,
    /// Unexpected-message queue: messages that arrived before their receive.
    pending: HashMap<(Rank, Tag), VecDeque<Frame>>,
    pending_ctrl: HashMap<(Rank, u64), Arc<WinBuf>>,
    counters: Arc<Vec<RankCounters>>,
    /// Collective sequence number; SPMD programs call collectives in the
    /// same order on every rank, so this stays globally consistent and
    /// namespaces the internal tags of successive collectives.
    pub(crate) op_seq: u64,
    pub(crate) win_seq: u64,
    recv_timeout: Duration,
    /// Per-rank phase recorder (the no-op sink unless the world enabled
    /// tracing). Owned by this rank: recording never takes a lock.
    tracer: Tracer,
    /// Shared fault state for the world; `None` when no plan is installed,
    /// which keeps every fault check a single branch.
    fault_rt: Option<Arc<FaultRuntime>>,
    /// This rank's still-pending faults (removed once fired).
    my_faults: Vec<Fault>,
    /// Message operations (sends + receives, collective internals
    /// included) performed so far; drives `FaultTrigger::MessageCount`.
    msg_ops: u64,
    /// This rank's scheduler slot: blocking waits park through it so a
    /// bounded worker pool can run a peer. A no-op in unpooled worlds.
    sched: SchedSlot,
    /// Session tag namespace, pre-shifted into the reserved high bits
    /// (see [`crate::wire::session_tag`]). Folded into every user tag on
    /// send and receive so overlapping sessions on one communicator can
    /// never match each other's stale messages. 0 = default namespace.
    tag_ns: Tag,
}

impl Comm {
    /// This rank's index.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Borrow this rank's phase recorder (a no-op sink unless tracing was
    /// enabled via [`WorldConfig::trace`] or [`Comm::set_tracing`]).
    pub fn tracer(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Switch phase tracing on or off mid-run. Enabling starts a fresh
    /// recording; disabling discards anything not yet collected.
    ///
    /// # Panics
    /// If called while a span is open.
    pub fn set_tracing(&mut self, enabled: bool) {
        assert_eq!(
            self.tracer.depth(),
            0,
            "cannot toggle tracing inside an open span"
        );
        if enabled != self.tracer.is_enabled() {
            self.tracer = if enabled {
                Tracer::enabled()
            } else {
                Tracer::disabled()
            };
        }
    }

    /// Drain this rank's recorded trace events (empty when tracing is off).
    pub fn take_trace_events(&mut self) -> Vec<replidedup_trace::Event> {
        self.tracer.take_events().unwrap_or_default()
    }

    // ---- session tag namespaces ----

    /// Scope all subsequent user tags to session `ns`. Messages sent under
    /// one namespace are invisible to receives under another, so two
    /// sessions interleaved on this communicator (or a session started
    /// after a crashed one left stale messages queued) can never cross
    /// wires. Namespace 0 is the default (unlabeled) session.
    pub fn set_tag_namespace(&mut self, ns: u16) {
        self.tag_ns = wire::session_tag(ns, 0);
    }

    /// The session namespace user tags are currently scoped to.
    pub fn tag_namespace(&self) -> u16 {
        wire::tag_session(self.tag_ns)
    }

    /// Fold the active session namespace into a user tag.
    fn ns_tag(&self, tag: Tag) -> Tag {
        debug_assert_eq!(
            tag & wire::SESSION_TAG_MASK,
            0,
            "user tag {tag:#x} collides with the session namespace bits"
        );
        self.tag_ns | tag
    }

    /// Borrow the shared per-rank counters (used by [`crate::window`]).
    pub(crate) fn counters(&self) -> &Arc<Vec<RankCounters>> {
        &self.counters
    }

    /// Shared fault state, if a plan is installed (used by [`crate::window`]).
    pub(crate) fn fault_rt(&self) -> Option<&Arc<FaultRuntime>> {
        self.fault_rt.as_ref()
    }

    // ---- fault injection ----

    /// Ranks that have died to injected crashes, ascending. Empty without
    /// a fault plan.
    pub fn failed_ranks(&self) -> Vec<Rank> {
        self.fault_rt
            .as_ref()
            .map(|rt| rt.dead_ranks())
            .unwrap_or_default()
    }

    /// Ranks still alive, ascending (all ranks without a fault plan).
    pub fn live_ranks(&self) -> Vec<Rank> {
        match &self.fault_rt {
            Some(rt) => (0..self.size).filter(|&r| !rt.is_dead(r)).collect(),
            None => (0..self.size).collect(),
        }
    }

    /// Whether any rank has died so far.
    pub fn any_failed(&self) -> bool {
        self.fault_rt
            .as_ref()
            .is_some_and(|rt| rt.first_dead().is_some())
    }

    /// Open the phase span `name`, firing any `PhaseStart(name)` fault of
    /// this rank first (so a rank crashing "at the start of exchange"
    /// never opens the span). Pair with [`Comm::exit_phase`].
    pub fn enter_phase(&mut self, name: &'static str) {
        self.maybe_inject_phase(name, true);
        self.tracer.enter(name);
    }

    /// Close the phase span `name`, then fire any `PhaseEnd(name)` fault
    /// of this rank (the span stays balanced even when the rank dies at
    /// the boundary).
    pub fn exit_phase(&mut self, name: &'static str) {
        self.tracer.exit(name);
        self.maybe_inject_phase(name, false);
    }

    fn maybe_inject_phase(&mut self, name: &str, at_start: bool) {
        if self.my_faults.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.my_faults.len() {
            let hit = match (&mut self.my_faults[i].trigger, at_start) {
                (FaultTrigger::PhaseStart(p), true) => p == name,
                (FaultTrigger::PhaseEnd(p), false) => p == name,
                // Occurrence countdown held in the fault itself: each
                // matching phase start decrements in place, and the fault
                // fires on the opening that takes the count to zero.
                (FaultTrigger::PhaseStartNth(p, n), true) if p == name => {
                    *n = n.saturating_sub(1);
                    *n == 0
                }
                _ => false,
            };
            if hit {
                let fault = self.my_faults.remove(i);
                self.fire(fault.action);
            } else {
                i += 1;
            }
        }
    }

    /// Count one message operation and fire any `MessageCount` fault whose
    /// threshold it reaches.
    fn maybe_inject_msg(&mut self) {
        self.msg_ops += 1;
        if self.my_faults.is_empty() {
            return;
        }
        let ops = self.msg_ops;
        let mut i = 0;
        while i < self.my_faults.len() {
            if matches!(self.my_faults[i].trigger, FaultTrigger::MessageCount(n) if n <= ops) {
                let fault = self.my_faults.remove(i);
                self.fire(fault.action);
            } else {
                i += 1;
            }
        }
    }

    fn fire(&mut self, action: FaultAction) {
        match action {
            // A delayed rank is parked, not runnable: release the worker
            // slot so a pooled world keeps making progress underneath it.
            FaultAction::Delay(dur) => self.sched.park_while(|| std::thread::sleep(dur)),
            FaultAction::Crash => self.crash_now(),
            FaultAction::Transient(ops) => {
                // Storage degradation is the harness's job: hand the budget
                // to the plan's hook (a no-op without one — the runtime
                // owns no storage to make flaky).
                if let Some(hook) = self
                    .fault_rt
                    .as_ref()
                    .and_then(|rt| rt.on_transient.clone())
                {
                    hook(self.rank, ops);
                }
            }
        }
    }

    /// Kill this rank: record the death (flag first — peers that observe
    /// it are guaranteed to find every earlier message already queued),
    /// run the crash hook, wake every peer on both channels, balance the
    /// trace with a `fault.injected` span, and unwind with the private
    /// payload [`World::run_faulty`] catches.
    fn crash_now(&mut self) -> ! {
        let rank = self.rank;
        if let Some(rt) = &self.fault_rt {
            rt.mark_dead(rank);
            if let Some(hook) = &rt.on_crash {
                hook(rank);
            }
        }
        for dst in 0..self.size {
            if dst == rank {
                continue;
            }
            // A peer may already be gone; notices are best-effort wakeups.
            let _ = self.data_senders[dst as usize].send(Message {
                src: rank,
                tag: DEATH_TAG,
                payload: Frame::new(),
            });
            let _ = self.ctrl_senders[dst as usize].send(CtrlMsg::Dead { src: rank });
        }
        self.tracer.enter("fault.injected");
        self.tracer.exit("fault.injected");
        self.tracer.close_open_spans();
        let events = self.tracer.take_events();
        std::panic::panic_any(InjectedCrash { rank, events });
    }

    /// Collective entry guard: snapshot the death epoch, then refuse to
    /// start if any rank is already dead (ranks whose last collective
    /// diverged — some completed it, some errored — all fail here on the
    /// next one, keeping survivors in lockstep). Receives inside the
    /// collective pass the snapshot so deaths *during* it surface too.
    pub(crate) fn coll_entry_guard(&self) -> Result<Option<u64>, CommError> {
        match &self.fault_rt {
            Some(rt) => {
                let snap = rt.epoch();
                match rt.first_dead() {
                    Some(rank) => Err(CommError::RankFailed { rank }),
                    None => Ok(Some(snap)),
                }
            }
            None => Ok(None),
        }
    }

    /// Entry guard for group collectives (e.g. restore over survivors):
    /// only deaths of `group` members block entry.
    pub(crate) fn group_entry_guard(&self, group: &[Rank]) -> Result<Option<u64>, CommError> {
        match &self.fault_rt {
            Some(rt) => {
                let snap = rt.epoch();
                match group.iter().find(|&&r| rt.is_dead(r)) {
                    Some(&rank) => Err(CommError::RankFailed { rank }),
                    None => Ok(Some(snap)),
                }
            }
            None => Ok(None),
        }
    }

    pub(crate) fn ctrl_send(&self, dst: Rank, msg: CtrlMsg) {
        self.ctrl_senders[dst as usize]
            .send(msg)
            .expect("world torn down mid-operation");
    }

    /// Fallible window-handle handshake. `coll_epoch` as in
    /// [`Comm::try_recv_raw_guarded`].
    pub(crate) fn try_ctrl_recv_win(
        &mut self,
        src: Rank,
        seq: u64,
        coll_epoch: Option<u64>,
    ) -> Result<Arc<WinBuf>, CommError> {
        if let Some(handle) = self.pending_ctrl.remove(&(src, seq)) {
            return Ok(handle);
        }
        let deadline = Instant::now() + self.recv_timeout;
        loop {
            // Drain queued ctrl messages before consulting death flags: a
            // handle sent before the sender died is already queued.
            loop {
                match self.ctrl_receiver.try_recv() {
                    Ok(msg) => {
                        if let Some(handle) = self.absorb_ctrl(msg, src, seq) {
                            return Ok(handle);
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        return Err(CommError::WorldTornDown { rank: self.rank })
                    }
                }
            }
            if let Some(rt) = &self.fault_rt {
                if rt.is_dead(src) {
                    return Err(CommError::RankFailed { rank: src });
                }
                if let Some(snap) = coll_epoch {
                    if let Some(rank) = rt.newly_dead(snap) {
                        return Err(CommError::RankFailed { rank });
                    }
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(CommError::DeadlockSuspected {
                    rank: self.rank,
                    src,
                    tag: INTERNAL_TAG | seq,
                    waited: self.recv_timeout,
                });
            }
            // Blocking RMA-handshake edge: park the worker slot while the
            // control channel sleeps so a pooled peer can run.
            let received = {
                let (sched, ctrl_receiver) = (&self.sched, &self.ctrl_receiver);
                sched.park_while(|| ctrl_receiver.recv_timeout(deadline - now))
            };
            match received {
                Ok(msg) => {
                    if let Some(handle) = self.absorb_ctrl(msg, src, seq) {
                        return Ok(handle);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(CommError::DeadlockSuspected {
                        rank: self.rank,
                        src,
                        tag: INTERNAL_TAG | seq,
                        waited: self.recv_timeout,
                    })
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::WorldTornDown { rank: self.rank })
                }
            }
        }
    }

    /// Match or stash one ctrl message; death notices are pure wakeups.
    fn absorb_ctrl(&mut self, msg: CtrlMsg, src: Rank, seq: u64) -> Option<Arc<WinBuf>> {
        match msg {
            CtrlMsg::Win {
                src: s,
                seq: q,
                handle,
            } => {
                if s == src && q == seq {
                    return Some(handle);
                }
                self.pending_ctrl.insert((s, q), handle);
                None
            }
            CtrlMsg::Dead { src: dead } => {
                debug_assert!(self.fault_rt.as_ref().is_some_and(|rt| rt.is_dead(dead)));
                None
            }
        }
    }

    /// Snapshot this rank's traffic counters.
    pub fn traffic(&self) -> crate::stats::RankTraffic {
        self.counters[self.rank as usize].snapshot()
    }

    /// Reset traffic counters of this rank (call from every rank around a
    /// barrier to scope measurements to one phase).
    pub fn reset_traffic(&self) {
        self.counters[self.rank as usize].reset();
    }

    // ---- point-to-point ----

    /// Send an owned buffer without copying.
    pub fn send_bytes(&mut self, dst: Rank, tag: Tag, payload: Bytes) {
        self.try_send_bytes(dst, tag, payload)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`Comm::send_bytes`].
    pub fn try_send_bytes(&mut self, dst: Rank, tag: Tag, payload: Bytes) -> Result<(), CommError> {
        self.try_send_frame(dst, tag, Frame::single(payload))
    }

    /// Send a [`Chunk`] without copying: the receiver's
    /// [`Comm::recv_chunk`] observes the very same allocation.
    pub fn send_chunk(&mut self, dst: Rank, tag: Tag, payload: Chunk) {
        self.try_send_chunk(dst, tag, payload)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`Comm::send_chunk`].
    pub fn try_send_chunk(&mut self, dst: Rank, tag: Tag, payload: Chunk) -> Result<(), CommError> {
        self.try_send_bytes(dst, tag, payload.into_bytes())
    }

    /// Send a scatter-gather [`Frame`]: header segments and attached
    /// payloads travel as-is, with no coalescing memcpy on either side.
    pub fn send_frame(&mut self, dst: Rank, tag: Tag, frame: Frame) {
        self.try_send_frame(dst, tag, frame)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`Comm::send_frame`].
    pub fn try_send_frame(&mut self, dst: Rank, tag: Tag, frame: Frame) -> Result<(), CommError> {
        assert_eq!(
            tag & INTERNAL_TAG,
            0,
            "tag {tag:#x} uses the reserved internal bit"
        );
        let tag = self.ns_tag(tag);
        self.try_send_frame_raw(dst, tag, frame, Transport::PointToPoint)
    }

    /// Encode and send a typed value.
    pub fn send_val<T: Wire>(&mut self, dst: Rank, tag: Tag, value: &T) {
        self.send_bytes(dst, tag, value.to_bytes());
    }

    /// Fallible [`Comm::send_val`].
    pub fn try_send_val<T: Wire>(
        &mut self,
        dst: Rank,
        tag: Tag,
        value: &T,
    ) -> Result<(), CommError> {
        self.try_send_bytes(dst, tag, value.to_bytes())
    }

    pub(crate) fn try_send_raw(
        &mut self,
        dst: Rank,
        tag: Tag,
        payload: Bytes,
        transport: Transport,
    ) -> Result<(), CommError> {
        self.try_send_frame_raw(dst, tag, Frame::single(payload), transport)
    }

    pub(crate) fn try_send_frame_raw(
        &mut self,
        dst: Rank,
        tag: Tag,
        payload: Frame,
        transport: Transport,
    ) -> Result<(), CommError> {
        self.maybe_inject_msg();
        if let Some(rt) = &self.fault_rt {
            if rt.is_dead(dst) {
                return Err(CommError::RankFailed { rank: dst });
            }
        }
        let bytes = payload.len() as u64;
        self.counters[self.rank as usize].count_send(transport, bytes);
        self.data_senders[dst as usize]
            .send(Message {
                src: self.rank,
                tag,
                payload,
            })
            .map_err(|_| CommError::WorldTornDown { rank: self.rank })
    }

    /// Blocking matched receive from `(src, tag)`, flattened to contiguous
    /// [`Bytes`]. Zero-copy when the sender's frame had a single segment
    /// (every `send_bytes`/`send_chunk`); a multi-segment frame is
    /// coalesced here (recorded) — use [`Comm::recv_frame`] to avoid that.
    ///
    /// # Panics
    /// On reserved tags and on any [`CommError`] (dead source, deadlock
    /// timeout, torn-down world).
    pub fn recv(&mut self, src: Rank, tag: Tag) -> Bytes {
        self.try_recv(src, tag).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Comm::recv`]: returns [`CommError::RankFailed`] if `src`
    /// is (or dies while we wait) a crashed rank, and
    /// [`CommError::DeadlockSuspected`] instead of panicking on timeout.
    pub fn try_recv(&mut self, src: Rank, tag: Tag) -> Result<Bytes, CommError> {
        Ok(self.try_recv_frame(src, tag)?.gather())
    }

    /// Blocking matched receive as a zero-copy [`Chunk`]: the chunk shares
    /// the sender's allocation when it was sent via [`Comm::send_chunk`] /
    /// [`Comm::send_bytes`].
    pub fn recv_chunk(&mut self, src: Rank, tag: Tag) -> Chunk {
        self.try_recv_chunk(src, tag)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Comm::recv_chunk`].
    pub fn try_recv_chunk(&mut self, src: Rank, tag: Tag) -> Result<Chunk, CommError> {
        Ok(Chunk::from(self.try_recv_frame(src, tag)?.gather()))
    }

    /// Blocking matched receive of a scatter-gather [`Frame`] exactly as
    /// the sender shaped it.
    pub fn recv_frame(&mut self, src: Rank, tag: Tag) -> Frame {
        self.try_recv_frame(src, tag)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Comm::recv_frame`].
    pub fn try_recv_frame(&mut self, src: Rank, tag: Tag) -> Result<Frame, CommError> {
        assert_eq!(
            tag & INTERNAL_TAG,
            0,
            "tag {tag:#x} uses the reserved internal bit"
        );
        let tag = self.ns_tag(tag);
        self.try_recv_frame_guarded(src, tag, Transport::PointToPoint, None)
    }

    /// Receive and decode a typed value.
    ///
    /// # Panics
    /// If the payload does not decode as `T` — a type mismatch is a
    /// programming error in an SPMD program, not a recoverable condition.
    pub fn recv_val<T: Wire>(&mut self, src: Rank, tag: Tag) -> T {
        let bytes = self.recv(src, tag);
        Self::decode_or_panic(self.rank, src, tag, &bytes)
    }

    /// Fallible [`Comm::recv_val`] (decode failures still panic; only
    /// communication errors are values).
    pub fn try_recv_val<T: Wire>(&mut self, src: Rank, tag: Tag) -> Result<T, CommError> {
        let bytes = self.try_recv(src, tag)?;
        Ok(Self::decode_or_panic(self.rank, src, tag, &bytes))
    }

    fn decode_or_panic<T: Wire>(rank: Rank, src: Rank, tag: Tag, bytes: &Bytes) -> T {
        T::from_bytes(bytes).unwrap_or_else(|e| {
            panic!("rank {rank} failed to decode message from {src} tag {tag}: {e}")
        })
    }

    /// Guarded matched receive. `coll_epoch` is the death-epoch snapshot a
    /// collective took at entry: when set, *any* new death fails the
    /// receive (the collective's communication pattern is broken even if
    /// this particular source is alive).
    ///
    /// Ordering argument for the death guards: a crashing rank marks its
    /// dead flag only after every message it ever sent is already queued,
    /// so "drain the queue non-blockingly, then check the flags" cannot
    /// miss a message that happened-before the death.
    pub(crate) fn try_recv_raw_guarded(
        &mut self,
        src: Rank,
        tag: Tag,
        transport: Transport,
        coll_epoch: Option<u64>,
    ) -> Result<Bytes, CommError> {
        Ok(self
            .try_recv_frame_guarded(src, tag, transport, coll_epoch)?
            .gather())
    }

    pub(crate) fn try_recv_frame_guarded(
        &mut self,
        src: Rank,
        tag: Tag,
        transport: Transport,
        coll_epoch: Option<u64>,
    ) -> Result<Frame, CommError> {
        self.maybe_inject_msg();
        // Unexpected-message-queue fast path: an already-matched message
        // predates any death and is always delivered.
        if let Some(queue) = self.pending.get_mut(&(src, tag)) {
            if let Some(payload) = queue.pop_front() {
                if queue.is_empty() {
                    self.pending.remove(&(src, tag));
                }
                self.counters[self.rank as usize].count_recv(transport, payload.len() as u64);
                return Ok(payload);
            }
        }
        let deadline = Instant::now() + self.recv_timeout;
        loop {
            // Drain everything already queued before consulting the flags.
            loop {
                match self.receiver.try_recv() {
                    Ok(msg) => {
                        if let Some(payload) = self.absorb(msg, src, tag, transport) {
                            return Ok(payload);
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        return Err(CommError::WorldTornDown { rank: self.rank })
                    }
                }
            }
            if let Some(rt) = &self.fault_rt {
                if rt.is_dead(src) {
                    return Err(CommError::RankFailed { rank: src });
                }
                if let Some(snap) = coll_epoch {
                    if let Some(rank) = rt.newly_dead(snap) {
                        return Err(CommError::RankFailed { rank });
                    }
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(CommError::DeadlockSuspected {
                    rank: self.rank,
                    src,
                    tag,
                    waited: self.recv_timeout,
                });
            }
            // Blocking collective/p2p edge: park the worker slot while the
            // data channel sleeps so a pooled peer can run.
            let received = {
                let (sched, receiver) = (&self.sched, &self.receiver);
                sched.park_while(|| receiver.recv_timeout(deadline - now))
            };
            match received {
                Ok(msg) => {
                    if let Some(payload) = self.absorb(msg, src, tag, transport) {
                        return Ok(payload);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(CommError::DeadlockSuspected {
                        rank: self.rank,
                        src,
                        tag,
                        waited: self.recv_timeout,
                    })
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::WorldTornDown { rank: self.rank })
                }
            }
        }
    }

    /// Match, stash, or discard one incoming message. Death notices wake
    /// the caller's guard loop and are never stashed.
    fn absorb(&mut self, msg: Message, src: Rank, tag: Tag, transport: Transport) -> Option<Frame> {
        if msg.tag == DEATH_TAG {
            debug_assert!(self.fault_rt.as_ref().is_some_and(|rt| rt.is_dead(msg.src)));
            return None;
        }
        if msg.src == src && msg.tag == tag {
            self.counters[self.rank as usize].count_recv(transport, msg.payload.len() as u64);
            return Some(msg.payload);
        }
        self.pending
            .entry((msg.src, msg.tag))
            .or_default()
            .push_back(msg.payload);
        None
    }

    /// Internal tag for round `round` of the collective numbered `op_seq`.
    pub(crate) fn coll_tag(op_seq: u64, round: u32) -> Tag {
        INTERNAL_TAG | (op_seq << 16) | u64::from(round)
    }

    /// Bump and return the collective sequence number.
    pub(crate) fn next_op(&mut self) -> u64 {
        self.op_seq += 1;
        self.op_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world_runs() {
        let out = World::run(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            42u32
        });
        assert_eq!(out.results, vec![42]);
        assert_eq!(out.traffic.total_sent(), 0);
    }

    #[test]
    fn results_are_rank_ordered() {
        let out = World::run(8, |comm| comm.rank() * 10);
        assert_eq!(out.results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn ping_pong() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 7, Bytes::from_static(b"ping"));
                comm.recv(1, 8).to_vec()
            } else {
                let m = comm.recv(0, 7);
                assert_eq!(&m[..], b"ping");
                comm.send_bytes(0, 8, Bytes::from_static(b"pong"));
                m.to_vec()
            }
        });
        assert_eq!(out.results[0], b"pong");
        assert_eq!(out.results[1], b"ping");
        assert_eq!(out.traffic.total_sent(), 8);
        assert_eq!(out.traffic.total_recv(), 8);
    }

    #[test]
    fn out_of_order_tags_are_matched() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 1, Bytes::from_static(b"first"));
                comm.send_bytes(1, 2, Bytes::from_static(b"second"));
                0
            } else {
                // Receive in the opposite order of sending.
                let b = comm.recv(0, 2);
                let a = comm.recv(0, 1);
                assert_eq!(&a[..], b"first");
                assert_eq!(&b[..], b"second");
                1
            }
        });
        assert_eq!(out.results, vec![0, 1]);
    }

    #[test]
    fn same_tag_messages_keep_fifo_order() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..10u8 {
                    comm.send_bytes(1, 5, Bytes::from(vec![i]));
                }
                Vec::new()
            } else {
                (0..10).map(|_| comm.recv(0, 5)[0]).collect::<Vec<u8>>()
            }
        });
        assert_eq!(out.results[1], (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn typed_send_recv() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_val(1, 3, &vec![(1u32, 2u64), (3, 4)]);
                Vec::new()
            } else {
                comm.recv_val::<Vec<(u32, u64)>>(0, 3)
            }
        });
        assert_eq!(out.results[1], vec![(1, 2), (3, 4)]);
    }

    #[test]
    fn traffic_is_conserved() {
        let out = World::run(4, |comm| {
            let dst = (comm.rank() + 1) % comm.size();
            let src = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send_bytes(dst, 1, Bytes::from_static(&[0u8; 100]));
            comm.recv(src, 1);
        });
        assert_eq!(out.traffic.total_sent(), out.traffic.total_recv());
        assert_eq!(out.traffic.total_sent(), 400);
    }

    #[test]
    #[should_panic(expected = "reserved internal bit")]
    fn internal_tag_rejected_for_users() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, INTERNAL_TAG | 1, Bytes::from_static(b"nope"));
            } else {
                // Rank 1 must not block forever while rank 0 panics.
            }
        });
    }

    #[test]
    #[should_panic(expected = "timed out")]
    fn deadlock_is_detected() {
        let config = WorldConfig {
            recv_timeout: Duration::from_millis(100),
            ..Default::default()
        };
        World::run_with(1, &config, |comm| {
            // Receive that can never be matched.
            comm.recv(0, 1);
        });
    }

    #[test]
    fn many_ranks_spawn() {
        let out = World::run(128, |comm| comm.rank());
        assert_eq!(out.results.len(), 128);
        assert_eq!(out.results[127], 127);
    }

    #[test]
    fn pooled_world_matches_thread_per_rank() {
        let body = |comm: &mut Comm| {
            let sum = comm.allreduce(u64::from(comm.rank()), |a, b| a + b);
            let dst = (comm.rank() + 1) % comm.size();
            let src = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send_val(dst, 4, &comm.rank());
            let from = comm.recv_val::<Rank>(src, 4);
            (sum, from)
        };
        let unpooled = WorldConfig::default().launch(32, body).expect_all();
        let pooled = WorldConfig::default()
            .with_workers(3)
            .launch(32, body)
            .expect_all();
        assert_eq!(unpooled.results, pooled.results);
        assert_eq!(
            unpooled.traffic.total_sent(),
            pooled.traffic.total_sent(),
            "scheduling must not change traffic"
        );
    }

    #[test]
    fn oversubscribed_pool_completes_heavy_collectives() {
        // 64 ranks on 2 workers: every collective edge must park, or the
        // world deadlocks well before the recv timeout.
        let out = WorldConfig::default()
            .with_workers(2)
            .with_recv_timeout(Duration::from_secs(30))
            .launch(64, |comm| {
                let mut acc = 0u64;
                for round in 0..4 {
                    acc += comm.allreduce(u64::from(comm.rank()) + round, |a, b| a + b);
                    comm.barrier();
                }
                acc
            })
            .expect_all();
        let per_round: u64 = (0..64u64).sum();
        assert!(out.results.iter().all(|&v| v >= 4 * per_round));
    }

    #[test]
    fn pooled_world_observes_injected_crashes() {
        let plan = FaultPlan::new(1).crash(1, FaultTrigger::MessageCount(1));
        let out = fault_config(plan).with_workers(2).launch(8, |comm| {
            if comm.rank() == 1 {
                let _ = comm.try_send_bytes(0, 1, Bytes::from_static(b"boom"));
                unreachable!("rank 1 must crash on its first message op");
            }
            comm.rank()
        });
        assert_eq!(out.crashed_ranks(), vec![1]);
        assert_eq!(out.outcomes.len(), 8);
    }

    #[test]
    fn tag_namespaces_isolate_sessions() {
        let config = WorldConfig::default().with_recv_timeout(Duration::from_millis(100));
        let out = config.launch(2, |comm| {
            if comm.rank() == 0 {
                comm.set_tag_namespace(1);
                comm.send_bytes(1, 5, Bytes::from_static(b"session-one"));
                true
            } else {
                // A receive scoped to session 2 must never match session
                // 1's message, even though (src, user tag) agree.
                comm.set_tag_namespace(2);
                assert!(matches!(
                    comm.try_recv(0, 5),
                    Err(CommError::DeadlockSuspected { .. })
                ));
                // Rescoped to session 1, the stashed message matches.
                comm.set_tag_namespace(1);
                assert_eq!(&comm.recv(0, 5)[..], b"session-one");
                assert_eq!(comm.tag_namespace(), 1);
                true
            }
        });
        assert!(out.expect_all().results.iter().all(|&ok| ok));
    }

    fn fault_config(plan: FaultPlan) -> WorldConfig {
        WorldConfig::default()
            .with_recv_timeout(Duration::from_secs(2))
            .with_faults(plan)
    }

    #[test]
    fn try_recv_reports_deadlock_with_context() {
        let config = WorldConfig::default().with_recv_timeout(Duration::from_millis(50));
        let out = World::run_with(1, &config, |comm| comm.try_recv(0, 9));
        match &out.results[0] {
            Err(CommError::DeadlockSuspected { rank, src, tag, .. }) => {
                assert_eq!((*rank, *src, *tag), (0, 0, 9));
            }
            other => panic!("expected DeadlockSuspected, got {other:?}"),
        }
    }

    #[test]
    fn injected_crash_becomes_an_outcome() {
        let plan = FaultPlan::new(1).crash(1, FaultTrigger::MessageCount(1));
        let out = World::run_faulty(3, &fault_config(plan), |comm| {
            if comm.rank() == 1 {
                // First message op trips the fault before anything sends.
                let _ = comm.try_send_bytes(0, 1, Bytes::from_static(b"never arrives"));
                unreachable!("rank 1 must crash on its first message op");
            }
            comm.rank()
        });
        assert_eq!(out.crashed_ranks(), vec![1]);
        assert_eq!(out.outcomes[0], RankOutcome::Completed(0));
        assert_eq!(out.outcomes[1], RankOutcome::Crashed { rank: 1 });
        assert_eq!(out.outcomes[2], RankOutcome::Completed(2));
    }

    #[test]
    fn send_to_dead_rank_fails_fast() {
        let plan = FaultPlan::new(2).crash(1, FaultTrigger::PhaseStart("work".into()));
        let out = World::run_faulty(2, &fault_config(plan), |comm| {
            if comm.rank() == 1 {
                comm.enter_phase("work");
                comm.exit_phase("work");
                return Ok(());
            }
            // Wait for the death, then observe the typed failure.
            while !comm.any_failed() {
                std::thread::sleep(Duration::from_millis(1));
            }
            comm.try_send_bytes(1, 3, Bytes::from_static(b"too late"))
        });
        assert_eq!(out.crashed_ranks(), vec![1]);
        assert_eq!(
            out.outcomes[0].as_completed(),
            Some(&Err(CommError::RankFailed { rank: 1 }))
        );
    }

    #[test]
    fn nth_phase_start_fires_on_the_exact_occurrence() {
        let plan = FaultPlan::new(17).crash(1, FaultTrigger::PhaseStartNth("step".into(), 3));
        let out = World::run_faulty(2, &fault_config(plan), |comm| {
            let mut opened = 0u32;
            for _ in 0..5 {
                comm.enter_phase("step");
                opened += 1;
                comm.exit_phase("step");
            }
            (comm.rank(), opened)
        });
        assert_eq!(out.crashed_ranks(), vec![1]);
        // Rank 1 survived two full openings and died entering the third.
        assert_eq!(out.outcomes[0], RankOutcome::Completed((0, 5)));
        assert!(out.outcomes[1].is_crashed());
    }

    #[test]
    fn nth_phase_start_with_count_one_matches_plain_start() {
        let plan = FaultPlan::new(18).crash(0, FaultTrigger::PhaseStartNth("go".into(), 1));
        let out = World::run_faulty(1, &fault_config(plan), |comm| {
            comm.enter_phase("go");
            comm.exit_phase("go");
        });
        assert_eq!(out.crashed_ranks(), vec![0]);
    }

    #[test]
    fn recv_from_dying_rank_wakes_and_fails_fast() {
        let plan = FaultPlan::new(3).crash(1, FaultTrigger::PhaseEnd("prep".into()));
        let started = Instant::now();
        let out = World::run_faulty(2, &fault_config(plan), |comm| {
            if comm.rank() == 1 {
                std::thread::sleep(Duration::from_millis(50));
                comm.enter_phase("prep");
                comm.exit_phase("prep");
                return Ok(Bytes::new());
            }
            comm.try_recv(1, 4)
        });
        assert_eq!(
            out.outcomes[0].as_completed(),
            Some(&Err(CommError::RankFailed { rank: 1 }))
        );
        // The death notice wakes the receive long before the 2 s timeout.
        assert!(started.elapsed() < Duration::from_millis(1500));
    }

    #[test]
    fn message_sent_before_death_is_still_delivered() {
        let plan = FaultPlan::new(4).crash(1, FaultTrigger::PhaseEnd("send".into()));
        let out = World::run_faulty(2, &fault_config(plan), |comm| {
            if comm.rank() == 1 {
                comm.enter_phase("send");
                comm.send_bytes(0, 5, Bytes::from_static(b"last words"));
                comm.exit_phase("send");
                return Vec::new();
            }
            // Give the crash time to land first: the queued message must
            // still win over the death flag.
            while !comm.any_failed() {
                std::thread::sleep(Duration::from_millis(1));
            }
            comm.try_recv(1, 5).unwrap().to_vec()
        });
        assert_eq!(out.outcomes[0].as_completed().unwrap(), b"last words");
    }

    #[test]
    fn delay_fault_stalls_without_killing() {
        let plan =
            FaultPlan::new(5).delay(0, FaultTrigger::MessageCount(1), Duration::from_millis(80));
        let started = Instant::now();
        let out = World::run_faulty(2, &fault_config(plan), |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 6, Bytes::from_static(b"slow"));
            } else {
                assert_eq!(&comm.recv(0, 6)[..], b"slow");
            }
            comm.rank()
        });
        assert!(out.crashed_ranks().is_empty());
        assert_eq!(out.outcomes.len(), 2);
        assert!(started.elapsed() >= Duration::from_millis(80));
    }

    #[test]
    fn crash_hook_runs_on_dying_rank() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let died = Arc::new(AtomicU32::new(u32::MAX));
        let seen = Arc::clone(&died);
        let plan = FaultPlan::new(6)
            .crash(2, FaultTrigger::MessageCount(1))
            .on_crash(move |rank| seen.store(rank, Ordering::SeqCst));
        let out = World::run_faulty(3, &fault_config(plan), |comm| {
            if comm.rank() == 2 {
                let _ = comm.try_send_bytes(0, 1, Bytes::from_static(b"x"));
            }
            comm.rank()
        });
        assert_eq!(out.crashed_ranks(), vec![2]);
        assert_eq!(died.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn transient_hook_fires_with_budget_and_rank_survives() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let armed = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&armed);
        let plan = FaultPlan::new(8)
            .transient(1, FaultTrigger::PhaseStart("fetch".into()), 3)
            .on_transient(move |rank, ops| {
                seen.store((u64::from(rank) << 32) | u64::from(ops), Ordering::SeqCst)
            });
        let out = World::run_faulty(2, &fault_config(plan), |comm| {
            comm.enter_phase("fetch");
            comm.exit_phase("fetch");
            comm.rank()
        });
        assert!(out.crashed_ranks().is_empty(), "transient is not a crash");
        assert_eq!(armed.load(Ordering::SeqCst), (1 << 32) | 3);
    }

    #[test]
    fn live_and_failed_rank_views() {
        let plan = FaultPlan::new(7).crash(0, FaultTrigger::PhaseStart("go".into()));
        let out = World::run_faulty(3, &fault_config(plan), |comm| {
            if comm.rank() == 0 {
                comm.enter_phase("go");
                comm.exit_phase("go");
            }
            while !comm.any_failed() {
                std::thread::sleep(Duration::from_millis(1));
            }
            (comm.live_ranks(), comm.failed_ranks())
        });
        let (live, failed) = out.outcomes[1].as_completed().unwrap();
        assert_eq!(live, &vec![1, 2]);
        assert_eq!(failed, &vec![0]);
    }

    #[test]
    fn same_plan_replays_the_same_crashes() {
        let run = || {
            let plan = FaultPlan::seeded(99, 4, 2, &["a", "b"]);
            World::run_faulty(4, &fault_config(plan), |comm| {
                for p in ["a", "b"] {
                    comm.enter_phase(p);
                    comm.exit_phase(p);
                }
                comm.rank()
            })
            .crashed_ranks()
        };
        let first = run();
        assert_eq!(first.len(), 2);
        assert_eq!(first, run());
    }

    #[test]
    #[should_panic(expected = "died to an injected crash fault")]
    fn run_with_refuses_crashed_ranks() {
        let plan = FaultPlan::new(8).crash(0, FaultTrigger::MessageCount(1));
        World::run_with(1, &fault_config(plan), |comm| {
            let _ = comm.try_send_bytes(0, 1, Bytes::from_static(b"boom"));
        });
    }
}
