//! The thread-rank world and per-rank communicator.
//!
//! `replidedup` runs each MPI-style rank as an OS thread inside one process.
//! Point-to-point messaging uses one unbounded crossbeam channel per rank
//! with MPI's matching semantics: a receive names `(source, tag)` and
//! messages that arrive before their matching receive are stashed in an
//! unexpected-message queue, exactly like an MPI implementation's UMQ.
//!
//! Why threads instead of real MPI: the reproduction target is the paper's
//! *algorithms and traffic*, not its wire protocol. An in-process runtime
//! executes the identical collective call sequence, measures exact per-rank
//! byte counts, and sidesteps the immature state of Rust MPI bindings; the
//! `replidedup-sim` crate converts measured traffic into cluster-scale
//! timings.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use replidedup_trace::{Tracer, WorldTrace};

use crate::stats::{RankCounters, TrafficReport, Transport};
use crate::window::WinBuf;
use crate::wire::Wire;

/// Rank index within a world (MPI `comm_rank`).
pub type Rank = u32;

/// Message tag. User tags must not have the top bit set; the runtime
/// reserves that space for collective-internal messages.
pub type Tag = u64;

/// Top bit marks runtime-internal tags.
pub(crate) const INTERNAL_TAG: Tag = 1 << 63;

/// A matched point-to-point message.
#[derive(Debug, Clone)]
pub(crate) struct Message {
    pub src: Rank,
    pub tag: Tag,
    pub payload: Bytes,
}

/// Out-of-band control messages (RMA window registration). Real MPI also
/// exchanges window handles out-of-band during `MPI_Win_create`.
#[derive(Clone)]
pub(crate) enum CtrlMsg {
    Win {
        src: Rank,
        seq: u64,
        handle: Arc<WinBuf>,
    },
}

/// Configuration for a [`World`] run.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// How long a blocking receive may wait before the runtime declares the
    /// program deadlocked and panics. Generous default; tests lower it.
    pub recv_timeout: Duration,
    /// Record per-rank phase traces. Off by default: every rank then runs
    /// with the zero-cost no-op [`Tracer`].
    pub trace: bool,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            recv_timeout: Duration::from_secs(120),
            trace: false,
        }
    }
}

impl WorldConfig {
    /// Default configuration with phase tracing switched on.
    pub fn traced() -> Self {
        Self {
            trace: true,
            ..Self::default()
        }
    }
}

/// Result of a world run: one value per rank plus the traffic report.
#[derive(Debug)]
pub struct RunOutput<T> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<T>,
    /// Per-rank traffic snapshot taken after all ranks returned.
    pub traffic: TrafficReport,
    /// Per-rank phase traces when [`WorldConfig::trace`] was set.
    pub trace: Option<WorldTrace>,
}

/// Entry point: spawn `size` ranks and run `f` on each.
pub struct World;

impl World {
    /// Run `f` on `size` ranks with default configuration.
    ///
    /// # Panics
    /// Propagates a panic from any rank and panics if `size == 0`.
    pub fn run<T, F>(size: u32, f: F) -> RunOutput<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        Self::run_with(size, &WorldConfig::default(), f)
    }

    /// Run `f` on `size` ranks with explicit configuration.
    pub fn run_with<T, F>(size: u32, config: &WorldConfig, f: F) -> RunOutput<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        assert!(size > 0, "world size must be positive");
        let counters: Arc<Vec<RankCounters>> =
            Arc::new((0..size).map(|_| RankCounters::default()).collect());

        let mut data_senders = Vec::with_capacity(size as usize);
        let mut data_receivers = Vec::with_capacity(size as usize);
        let mut ctrl_senders = Vec::with_capacity(size as usize);
        let mut ctrl_receivers = Vec::with_capacity(size as usize);
        for _ in 0..size {
            let (ts, tr) = channel::<Message>();
            data_senders.push(ts);
            data_receivers.push(tr);
            let (cs, cr) = channel::<CtrlMsg>();
            ctrl_senders.push(cs);
            ctrl_receivers.push(cr);
        }
        let data_senders = Arc::new(data_senders);
        let ctrl_senders = Arc::new(ctrl_senders);

        let (results, traces): (Vec<T>, Vec<Option<Vec<replidedup_trace::Event>>>) =
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(size as usize);
                // Drain receivers in reverse so rank 0 pops the front.
                let mut receivers: Vec<_> = data_receivers.into_iter().collect();
                let mut ctrl_rx: Vec<_> = ctrl_receivers.into_iter().collect();
                for rank in (0..size).rev() {
                    let receiver = receivers.pop().expect("one receiver per rank");
                    let ctrl_receiver = ctrl_rx.pop().expect("one ctrl receiver per rank");
                    let data_senders = Arc::clone(&data_senders);
                    let ctrl_senders = Arc::clone(&ctrl_senders);
                    let counters = Arc::clone(&counters);
                    let f = &f;
                    let config = config.clone();
                    handles.push(
                        std::thread::Builder::new()
                            .name(format!("rank-{rank}"))
                            .spawn_scoped(scope, move || {
                                let mut comm = Comm {
                                    rank,
                                    size,
                                    data_senders,
                                    receiver,
                                    ctrl_senders,
                                    ctrl_receiver,
                                    pending: HashMap::new(),
                                    pending_ctrl: HashMap::new(),
                                    counters,
                                    op_seq: 0,
                                    win_seq: 0,
                                    recv_timeout: config.recv_timeout,
                                    tracer: if config.trace {
                                        Tracer::enabled()
                                    } else {
                                        Tracer::disabled()
                                    },
                                };
                                let result = f(&mut comm);
                                (result, comm.tracer.take_events())
                            })
                            .expect("spawn rank thread"),
                    );
                }
                // handles were pushed for ranks size-1..0; reverse to rank order.
                handles.reverse();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(v) => v,
                        // Re-raise with the original payload so callers (and
                        // #[should_panic] tests) see the rank's own message.
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            });

        let traffic = TrafficReport {
            ranks: counters.iter().map(|c| c.snapshot()).collect(),
        };
        let trace = if config.trace {
            Some(WorldTrace::from_rank_events(
                traces.into_iter().map(|t| t.unwrap_or_default()).collect(),
            ))
        } else {
            None
        };
        RunOutput {
            results,
            traffic,
            trace,
        }
    }
}

/// Per-rank communicator handle. Not `Clone`: each rank owns exactly one.
pub struct Comm {
    rank: Rank,
    size: u32,
    data_senders: Arc<Vec<Sender<Message>>>,
    receiver: Receiver<Message>,
    ctrl_senders: Arc<Vec<Sender<CtrlMsg>>>,
    ctrl_receiver: Receiver<CtrlMsg>,
    /// Unexpected-message queue: messages that arrived before their receive.
    pending: HashMap<(Rank, Tag), VecDeque<Bytes>>,
    pending_ctrl: HashMap<(Rank, u64), Arc<WinBuf>>,
    counters: Arc<Vec<RankCounters>>,
    /// Collective sequence number; SPMD programs call collectives in the
    /// same order on every rank, so this stays globally consistent and
    /// namespaces the internal tags of successive collectives.
    pub(crate) op_seq: u64,
    pub(crate) win_seq: u64,
    recv_timeout: Duration,
    /// Per-rank phase recorder (the no-op sink unless the world enabled
    /// tracing). Owned by this rank: recording never takes a lock.
    tracer: Tracer,
}

impl Comm {
    /// This rank's index.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Borrow this rank's phase recorder (a no-op sink unless tracing was
    /// enabled via [`WorldConfig::trace`] or [`Comm::set_tracing`]).
    pub fn tracer(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Switch phase tracing on or off mid-run. Enabling starts a fresh
    /// recording; disabling discards anything not yet collected.
    ///
    /// # Panics
    /// If called while a span is open.
    pub fn set_tracing(&mut self, enabled: bool) {
        assert_eq!(
            self.tracer.depth(),
            0,
            "cannot toggle tracing inside an open span"
        );
        if enabled != self.tracer.is_enabled() {
            self.tracer = if enabled {
                Tracer::enabled()
            } else {
                Tracer::disabled()
            };
        }
    }

    /// Drain this rank's recorded trace events (empty when tracing is off).
    pub fn take_trace_events(&mut self) -> Vec<replidedup_trace::Event> {
        self.tracer.take_events().unwrap_or_default()
    }

    /// Borrow the shared per-rank counters (used by [`crate::window`]).
    pub(crate) fn counters(&self) -> &Arc<Vec<RankCounters>> {
        &self.counters
    }

    pub(crate) fn ctrl_send(&self, dst: Rank, msg: CtrlMsg) {
        self.ctrl_senders[dst as usize]
            .send(msg)
            .expect("world torn down mid-operation");
    }

    pub(crate) fn ctrl_recv_win(&mut self, src: Rank, seq: u64) -> Arc<WinBuf> {
        if let Some(handle) = self.pending_ctrl.remove(&(src, seq)) {
            return handle;
        }
        loop {
            match self.ctrl_receiver.recv_timeout(self.recv_timeout) {
                Ok(CtrlMsg::Win {
                    src: s,
                    seq: q,
                    handle,
                }) => {
                    if s == src && q == seq {
                        return handle;
                    }
                    self.pending_ctrl.insert((s, q), handle);
                }
                Err(_) => panic!(
                    "rank {} timed out waiting for window handle from rank {src} (seq {seq})",
                    self.rank
                ),
            }
        }
    }

    /// Snapshot this rank's traffic counters.
    pub fn traffic(&self) -> crate::stats::RankTraffic {
        self.counters[self.rank as usize].snapshot()
    }

    /// Reset traffic counters of this rank (call from every rank around a
    /// barrier to scope measurements to one phase).
    pub fn reset_traffic(&self) {
        self.counters[self.rank as usize].reset();
    }

    // ---- point-to-point ----

    /// Send raw bytes to `dst` with `tag`.
    ///
    /// # Panics
    /// If `tag` uses the reserved internal bit or `dst` is out of range.
    pub fn send(&self, dst: Rank, tag: Tag, payload: &[u8]) {
        assert_eq!(
            tag & INTERNAL_TAG,
            0,
            "tag {tag:#x} uses the reserved internal bit"
        );
        self.send_raw(
            dst,
            tag,
            Bytes::copy_from_slice(payload),
            Transport::PointToPoint,
        );
    }

    /// Send an owned buffer without copying.
    pub fn send_bytes(&self, dst: Rank, tag: Tag, payload: Bytes) {
        assert_eq!(
            tag & INTERNAL_TAG,
            0,
            "tag {tag:#x} uses the reserved internal bit"
        );
        self.send_raw(dst, tag, payload, Transport::PointToPoint);
    }

    /// Encode and send a typed value.
    pub fn send_val<T: Wire>(&self, dst: Rank, tag: Tag, value: &T) {
        self.send_bytes(dst, tag, value.to_bytes());
    }

    pub(crate) fn send_raw(&self, dst: Rank, tag: Tag, payload: Bytes, transport: Transport) {
        let bytes = payload.len() as u64;
        self.counters[self.rank as usize].count_send(transport, bytes);
        self.data_senders[dst as usize]
            .send(Message {
                src: self.rank,
                tag,
                payload,
            })
            .expect("world torn down mid-send");
    }

    /// Blocking matched receive from `(src, tag)`.
    pub fn recv(&mut self, src: Rank, tag: Tag) -> Bytes {
        assert_eq!(
            tag & INTERNAL_TAG,
            0,
            "tag {tag:#x} uses the reserved internal bit"
        );
        self.recv_raw(src, tag, Transport::PointToPoint)
    }

    /// Receive and decode a typed value.
    ///
    /// # Panics
    /// If the payload does not decode as `T` — a type mismatch is a
    /// programming error in an SPMD program, not a recoverable condition.
    pub fn recv_val<T: Wire>(&mut self, src: Rank, tag: Tag) -> T {
        let bytes = self.recv(src, tag);
        T::from_bytes(&bytes).unwrap_or_else(|e| {
            panic!(
                "rank {} failed to decode message from {src} tag {tag}: {e}",
                self.rank
            )
        })
    }

    pub(crate) fn recv_raw(&mut self, src: Rank, tag: Tag, transport: Transport) -> Bytes {
        if let Some(queue) = self.pending.get_mut(&(src, tag)) {
            if let Some(payload) = queue.pop_front() {
                if queue.is_empty() {
                    self.pending.remove(&(src, tag));
                }
                self.counters[self.rank as usize].count_recv(transport, payload.len() as u64);
                return payload;
            }
        }
        loop {
            match self.receiver.recv_timeout(self.recv_timeout) {
                Ok(msg) => {
                    if msg.src == src && msg.tag == tag {
                        self.counters[self.rank as usize]
                            .count_recv(transport, msg.payload.len() as u64);
                        return msg.payload;
                    }
                    self.pending
                        .entry((msg.src, msg.tag))
                        .or_default()
                        .push_back(msg.payload);
                }
                Err(RecvTimeoutError::Timeout) => panic!(
                    "rank {} timed out after {:?} waiting for message from rank {src} tag {tag:#x} \
                     (likely deadlock: mismatched send/recv or collective ordering)",
                    self.rank, self.recv_timeout
                ),
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("rank {}: world torn down mid-receive", self.rank)
                }
            }
        }
    }

    /// Internal tag for round `round` of the collective numbered `op_seq`.
    pub(crate) fn coll_tag(op_seq: u64, round: u32) -> Tag {
        INTERNAL_TAG | (op_seq << 16) | u64::from(round)
    }

    /// Bump and return the collective sequence number.
    pub(crate) fn next_op(&mut self) -> u64 {
        self.op_seq += 1;
        self.op_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world_runs() {
        let out = World::run(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            42u32
        });
        assert_eq!(out.results, vec![42]);
        assert_eq!(out.traffic.total_sent(), 0);
    }

    #[test]
    fn results_are_rank_ordered() {
        let out = World::run(8, |comm| comm.rank() * 10);
        assert_eq!(out.results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn ping_pong() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, b"ping");
                comm.recv(1, 8).to_vec()
            } else {
                let m = comm.recv(0, 7);
                assert_eq!(&m[..], b"ping");
                comm.send(0, 8, b"pong");
                m.to_vec()
            }
        });
        assert_eq!(out.results[0], b"pong");
        assert_eq!(out.results[1], b"ping");
        assert_eq!(out.traffic.total_sent(), 8);
        assert_eq!(out.traffic.total_recv(), 8);
    }

    #[test]
    fn out_of_order_tags_are_matched() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, b"first");
                comm.send(1, 2, b"second");
                0
            } else {
                // Receive in the opposite order of sending.
                let b = comm.recv(0, 2);
                let a = comm.recv(0, 1);
                assert_eq!(&a[..], b"first");
                assert_eq!(&b[..], b"second");
                1
            }
        });
        assert_eq!(out.results, vec![0, 1]);
    }

    #[test]
    fn same_tag_messages_keep_fifo_order() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..10u8 {
                    comm.send(1, 5, &[i]);
                }
                Vec::new()
            } else {
                (0..10).map(|_| comm.recv(0, 5)[0]).collect::<Vec<u8>>()
            }
        });
        assert_eq!(out.results[1], (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn typed_send_recv() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_val(1, 3, &vec![(1u32, 2u64), (3, 4)]);
                Vec::new()
            } else {
                comm.recv_val::<Vec<(u32, u64)>>(0, 3)
            }
        });
        assert_eq!(out.results[1], vec![(1, 2), (3, 4)]);
    }

    #[test]
    fn traffic_is_conserved() {
        let out = World::run(4, |comm| {
            let dst = (comm.rank() + 1) % comm.size();
            let src = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(dst, 1, &[0u8; 100]);
            comm.recv(src, 1);
        });
        assert_eq!(out.traffic.total_sent(), out.traffic.total_recv());
        assert_eq!(out.traffic.total_sent(), 400);
    }

    #[test]
    #[should_panic(expected = "reserved internal bit")]
    fn internal_tag_rejected_for_users() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, INTERNAL_TAG | 1, b"nope");
            } else {
                // Rank 1 must not block forever while rank 0 panics.
            }
        });
    }

    #[test]
    #[should_panic(expected = "timed out")]
    fn deadlock_is_detected() {
        let config = WorldConfig {
            recv_timeout: Duration::from_millis(100),
            ..Default::default()
        };
        World::run_with(1, &config, |comm| {
            // Receive that can never be matched.
            comm.recv(0, 1);
        });
    }

    #[test]
    fn many_ranks_spawn() {
        let out = World::run(128, |comm| comm.rank());
        assert_eq!(out.results.len(), 128);
        assert_eq!(out.results[127], 127);
    }
}
