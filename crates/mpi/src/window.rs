//! One-sided communication (MPI-style RMA windows).
//!
//! The paper's exchange phase avoids receive-side buffering by having every
//! partner `put` its chunks directly at a precomputed offset in the
//! target's window ("expose a designated memory region to each partner in a
//! consistent fashion"). The window is sized exactly from the gathered load
//! information, "avoiding any waste" — important because the application
//! occupies most of the memory at checkpoint time.
//!
//! Semantics mirror `MPI_Win_create` / `MPI_Put` / `MPI_Win_fence`:
//! creation is collective (handles are exchanged out-of-band, as a real MPI
//! implementation registers memory out-of-band), `put` is one-sided and
//! completes at the next fence, and local reads are only valid after a
//! fence. In this runtime a `put` is a locked `memcpy` into the target
//! buffer, so the fence reduces to a barrier.

use std::sync::{Arc, Mutex};

use bytes::Bytes;
use replidedup_buf::{global_pool, Chunk};

use crate::comm::{Comm, CtrlMsg, Rank};
use crate::fault::{CommError, FaultRuntime};

/// Shared backing buffer of one rank's window. Backed by the global
/// [`BufferPool`](replidedup_buf::BufferPool): creation takes a recycled
/// buffer, and dropping the window returns it — unless
/// [`Window::take_local`] already froze it into long-lived [`Bytes`].
pub struct WinBuf {
    data: Mutex<Vec<u8>>,
    size: usize,
}

impl Drop for WinBuf {
    fn drop(&mut self) {
        if let Ok(buf) = self.data.get_mut() {
            global_pool().put_back(std::mem::take(buf));
        }
    }
}

impl std::fmt::Debug for WinBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WinBuf").field("size", &self.size).finish()
    }
}

/// A collectively created RMA window: every rank exposes `local_size` bytes
/// and can `put` into (or `get` from) any peer's exposure.
pub struct Window {
    rank: Rank,
    handles: Vec<Arc<WinBuf>>,
    counters: Arc<Vec<crate::stats::RankCounters>>,
    fault_rt: Option<Arc<FaultRuntime>>,
}

impl std::fmt::Debug for Window {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Window")
            .field("rank", &self.rank)
            .field("world", &self.handles.len())
            .finish()
    }
}

impl Comm {
    /// Collectively create a window exposing `local_size` bytes on this
    /// rank (sizes may differ per rank). Must be called by every rank.
    pub fn win_create(&mut self, local_size: usize) -> Window {
        self.try_win_create(local_size)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Comm::win_create`]: the handle handshake and the opening
    /// fence detect rank deaths and fail with [`CommError`] instead of
    /// timing out.
    pub fn try_win_create(&mut self, local_size: usize) -> Result<Window, CommError> {
        self.enter_phase("win_create");
        let out = self.try_win_create_inner(local_size);
        self.exit_phase("win_create");
        out
    }

    fn try_win_create_inner(&mut self, local_size: usize) -> Result<Window, CommError> {
        self.tracer()
            .gauge_bytes("win_local_bytes", local_size as u64);
        // Window and collective sequence numbers must advance exactly once
        // per call on every rank, even when this rank bails out early:
        // survivors that fail at different points must still agree on the
        // tag namespace of their next operation.
        self.win_seq += 1;
        let seq = self.win_seq;
        let epoch = match self.coll_entry_guard() {
            Ok(epoch) => epoch,
            Err(e) => {
                self.next_op(); // the closing fence's sequence slot
                return Err(e);
            }
        };
        let me = self.rank();
        let n = self.size();
        // Pool-backed exposure: recycled buffers arrive cleared, so the
        // resize zero-fills and every window starts all-zero (put offsets
        // may leave gaps that readers expect to be zero).
        let mut backing = global_pool().take(local_size);
        backing.resize(local_size, 0);
        let mine = Arc::new(WinBuf {
            data: Mutex::new(backing),
            size: local_size,
        });
        for dst in 0..n {
            if dst != me {
                self.ctrl_send(
                    dst,
                    CtrlMsg::Win {
                        src: me,
                        seq,
                        handle: Arc::clone(&mine),
                    },
                );
            }
        }
        let mut handles: Vec<Option<Arc<WinBuf>>> = (0..n).map(|_| None).collect();
        handles[me as usize] = Some(mine);
        for src in 0..n {
            if src != me {
                match self.try_ctrl_recv_win(src, seq, epoch) {
                    Ok(h) => handles[src as usize] = Some(h),
                    Err(e) => {
                        self.next_op(); // the closing fence's sequence slot
                        return Err(e);
                    }
                }
            }
        }
        let window = Window {
            rank: me,
            handles: handles
                .into_iter()
                .map(|h| h.expect("all handles collected"))
                .collect(),
            counters: Arc::clone(self.counters()),
            fault_rt: self.fault_rt().cloned(),
        };
        // Opening fence: no rank may put before every rank has exposed.
        self.try_barrier()?;
        Ok(window)
    }
}

impl Window {
    /// Size of `rank`'s exposure in bytes.
    pub fn size_of(&self, rank: Rank) -> usize {
        self.handles[rank as usize].size
    }

    /// Size of the local exposure.
    pub fn local_size(&self) -> usize {
        self.size_of(self.rank)
    }

    /// One-sided write of `data` into `target`'s window at `offset`.
    ///
    /// # Panics
    /// If the write would overrun the target's exposure — an out-of-bounds
    /// RMA access corrupts unrelated memory on real hardware, so the
    /// simulated runtime fails fast instead.
    pub fn put(&self, target: Rank, offset: usize, data: &[u8]) {
        self.try_put(target, offset, data)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`Window::put`]: a put to a crashed rank's exposure fails
    /// fast with [`CommError::RankFailed`] (the memory behind a dead
    /// node's window is gone).
    pub fn try_put(&self, target: Rank, offset: usize, data: &[u8]) -> Result<(), CommError> {
        self.try_put_vectored(target, offset, &[data])
    }

    /// One-sided write of a [`Chunk`] into `target`'s window at `offset`.
    /// The local side performs no staging copy: the chunk's bytes are the
    /// RMA transfer's source buffer.
    pub fn put_chunk(&self, target: Rank, offset: usize, chunk: &Chunk) {
        self.try_put_chunk(target, offset, chunk)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`Window::put_chunk`].
    pub fn try_put_chunk(
        &self,
        target: Rank,
        offset: usize,
        chunk: &Chunk,
    ) -> Result<(), CommError> {
        self.try_put_vectored(target, offset, &[chunk])
    }

    /// Scatter-gather one-sided write: `parts` land back-to-back at
    /// `offset` in `target`'s window under a single exposure lock. This is
    /// how a record header on the stack and a payload still inside the
    /// application buffer travel as *one* RMA transfer with no local
    /// coalescing copy.
    pub fn put_vectored(&self, target: Rank, offset: usize, parts: &[&[u8]]) {
        self.try_put_vectored(target, offset, parts)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`Window::put_vectored`].
    pub fn try_put_vectored(
        &self,
        target: Rank,
        offset: usize,
        parts: &[&[u8]],
    ) -> Result<(), CommError> {
        if let Some(rt) = &self.fault_rt {
            if rt.is_dead(target) {
                return Err(CommError::RankFailed { rank: target });
            }
        }
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let buf = &self.handles[target as usize];
        assert!(
            offset + total <= buf.size,
            "rank {}: put of {total} bytes at offset {offset} overruns window of {} on rank {target}",
            self.rank,
            buf.size
        );
        let mut guard = buf.data.lock().unwrap();
        let mut at = offset;
        for part in parts {
            guard[at..at + part.len()].copy_from_slice(part);
            at += part.len();
        }
        drop(guard);
        if target != self.rank {
            self.counters[self.rank as usize]
                .count_send(crate::stats::Transport::Rma, total as u64);
            self.counters[target as usize].count_recv(crate::stats::Transport::Rma, total as u64);
        }
        Ok(())
    }

    /// One-sided read of `len` bytes from `target`'s window at `offset` as
    /// an owned [`Chunk`]. The one memcpy out of the exposure *is* the
    /// modelled RMA transfer; no second local copy happens.
    pub fn get_chunk(&self, target: Rank, offset: usize, len: usize) -> Chunk {
        self.try_get_chunk(target, offset, len)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Window::get_chunk`].
    pub fn try_get_chunk(
        &self,
        target: Rank,
        offset: usize,
        len: usize,
    ) -> Result<Chunk, CommError> {
        self.get_vec(target, offset, len).map(Chunk::from)
    }

    fn get_vec(&self, target: Rank, offset: usize, len: usize) -> Result<Vec<u8>, CommError> {
        if let Some(rt) = &self.fault_rt {
            if rt.is_dead(target) {
                return Err(CommError::RankFailed { rank: target });
            }
        }
        let buf = &self.handles[target as usize];
        assert!(
            offset + len <= buf.size,
            "rank {}: get of {len} bytes at offset {offset} overruns window of {} on rank {target}",
            self.rank,
            buf.size
        );
        let out = buf.data.lock().unwrap()[offset..offset + len].to_vec();
        if target != self.rank {
            self.counters[self.rank as usize].count_rma_get(len as u64);
        }
        Ok(out)
    }

    /// Synchronization fence: completes all outstanding one-sided accesses
    /// in this epoch. Local reads of data put by peers are valid only after
    /// a fence. Must be called by every rank.
    pub fn fence(&self, comm: &mut Comm) {
        self.try_fence(comm).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`Window::fence`]: fails with [`CommError::RankFailed`]
    /// when a rank died before or during the fence.
    pub fn try_fence(&self, comm: &mut Comm) -> Result<(), CommError> {
        comm.enter_phase("win_fence");
        let out = comm.try_barrier();
        comm.exit_phase("win_fence");
        out
    }

    /// Steal the local exposure as frozen [`Bytes`] without copying (valid
    /// after the *closing* fence — no further puts may target this rank).
    /// The window's backing buffer moves into the returned `Bytes`; the
    /// exposure is left empty, so later RMA access to this rank's window
    /// is a bounds violation by construction.
    pub fn take_local(&self) -> Bytes {
        Bytes::from(std::mem::take(
            &mut *self.handles[self.rank as usize].data.lock().unwrap(),
        ))
    }

    /// Run `f` over the local exposure without copying (valid after fence).
    pub fn with_local<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(&self.handles[self.rank as usize].data.lock().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::WorldConfig;

    #[test]
    fn put_lands_at_offset() {
        let out = WorldConfig::default()
            .launch(2, |comm| {
                let win = comm.win_create(8);
                if comm.rank() == 0 {
                    win.put(1, 2, &[1, 2, 3]);
                }
                win.fence(comm);
                win.with_local(|d| d.to_vec())
            })
            .expect_all();
        assert_eq!(out.results[1], vec![0, 0, 1, 2, 3, 0, 0, 0]);
        assert_eq!(out.results[0], vec![0; 8]);
    }

    #[test]
    fn heterogeneous_window_sizes() {
        let out = WorldConfig::default()
            .launch(3, |comm| {
                let me = comm.rank() as usize;
                let win = comm.win_create(me * 4);
                assert_eq!(win.local_size(), me * 4);
                assert_eq!(win.size_of(2), 8);
                // Everyone writes one byte into rank 2's window, disjointly.
                if me < 2 {
                    win.put(2, me, &[me as u8 + 10]);
                }
                win.fence(comm);
                win.with_local(|d| d.to_vec())
            })
            .expect_all();
        assert_eq!(out.results[2][..2], [10, 11]);
    }

    #[test]
    fn disjoint_concurrent_puts_all_land() {
        let out = WorldConfig::default()
            .launch(8, |comm| {
                let n = comm.size() as usize;
                let win = comm.win_create(if comm.rank() == 0 { n } else { 0 });
                win.put(0, comm.rank() as usize, &[comm.rank() as u8 + 1]);
                win.fence(comm);
                win.with_local(|d| d.to_vec())
            })
            .expect_all();
        assert_eq!(out.results[0], (1..=8u8).collect::<Vec<_>>());
    }

    #[test]
    fn get_reads_remote_exposure() {
        let out = WorldConfig::default()
            .launch(2, |comm| {
                let win = comm.win_create(4);
                if comm.rank() == 1 {
                    win.put(1, 0, &[9, 8, 7, 6]); // local put
                }
                win.fence(comm);
                let data = if comm.rank() == 0 {
                    Vec::from(win.get_chunk(1, 1, 2))
                } else {
                    Vec::new()
                };
                win.fence(comm);
                data
            })
            .expect_all();
        assert_eq!(out.results[0], vec![8, 7]);
    }

    #[test]
    fn self_put_is_not_counted_as_traffic() {
        let out = WorldConfig::default()
            .launch(1, |comm| {
                let win = comm.win_create(4);
                win.put(0, 0, &[1, 2, 3, 4]);
                win.fence(comm);
                win.with_local(|d| d.to_vec())
            })
            .expect_all();
        assert_eq!(out.results[0], vec![1, 2, 3, 4]);
        assert_eq!(out.traffic.ranks[0].rma_put, 0);
        assert_eq!(out.traffic.ranks[0].rma_recv, 0);
    }

    #[test]
    fn rma_traffic_is_attributed_to_both_sides() {
        let out = WorldConfig::default()
            .launch(2, |comm| {
                let win = comm.win_create(100);
                if comm.rank() == 0 {
                    win.put(1, 0, &[0xAA; 64]);
                }
                win.fence(comm);
            })
            .expect_all();
        assert_eq!(out.traffic.ranks[0].rma_put, 64);
        assert_eq!(out.traffic.ranks[1].rma_recv, 64);
        assert_eq!(out.traffic.ranks[1].rma_put, 0);
    }

    #[test]
    fn successive_windows_do_not_cross_talk() {
        let out = WorldConfig::default()
            .launch(2, |comm| {
                let w1 = comm.win_create(2);
                let w2 = comm.win_create(2);
                if comm.rank() == 0 {
                    w1.put(1, 0, &[1, 1]);
                    w2.put(1, 0, &[2, 2]);
                }
                w1.fence(comm);
                w2.fence(comm);
                (w1.with_local(|d| d.to_vec()), w2.with_local(|d| d.to_vec()))
            })
            .expect_all();
        assert_eq!(out.results[1].0, vec![1, 1]);
        assert_eq!(out.results[1].1, vec![2, 2]);
    }

    #[test]
    fn with_local_avoids_copy() {
        let out = WorldConfig::default()
            .launch(1, |comm| {
                let win = comm.win_create(3);
                win.put(0, 0, &[5, 6, 7]);
                win.fence(comm);
                win.with_local(|d| d.iter().map(|&b| u32::from(b)).sum::<u32>())
            })
            .expect_all();
        assert_eq!(out.results[0], 18);
    }

    #[test]
    #[should_panic(expected = "overruns window")]
    fn out_of_bounds_put_panics() {
        WorldConfig::default()
            .launch(1, |comm| {
                let win = comm.win_create(4);
                win.put(0, 2, &[0; 4]);
            })
            .expect_all();
    }

    #[test]
    fn vectored_put_lands_parts_back_to_back() {
        let out = WorldConfig::default()
            .launch(2, |comm| {
                let win = comm.win_create(8);
                if comm.rank() == 0 {
                    win.put_vectored(1, 1, &[&[1, 2], &[3], &[4, 5]]);
                }
                win.fence(comm);
                win.with_local(|d| d.to_vec())
            })
            .expect_all();
        assert_eq!(out.results[1], vec![0, 1, 2, 3, 4, 5, 0, 0]);
        // The vectored put counts once, as the sum of its parts.
        assert_eq!(out.traffic.ranks[0].rma_put, 5);
        assert_eq!(out.traffic.ranks[1].rma_recv, 5);
    }

    #[test]
    fn chunk_put_and_get_roundtrip() {
        use replidedup_buf::Chunk;
        let out = WorldConfig::default()
            .launch(2, |comm| {
                let win = comm.win_create(4);
                if comm.rank() == 0 {
                    let app_buffer = Chunk::from(vec![7u8, 8, 9, 10]);
                    win.put_chunk(1, 0, &app_buffer.slice(1..3));
                }
                win.fence(comm);
                let got = if comm.rank() == 1 {
                    win.get_chunk(1, 0, 2)
                } else {
                    Chunk::new()
                };
                win.fence(comm);
                got.to_vec()
            })
            .expect_all();
        assert_eq!(out.results[1], vec![8, 9]);
    }

    #[test]
    fn take_local_is_zero_copy_and_empties_the_exposure() {
        let out = WorldConfig::default()
            .launch(1, |comm| {
                let win = comm.win_create(4);
                win.put(0, 0, &[1, 2, 3, 4]);
                win.fence(comm);
                let copied_before = replidedup_buf::thread_bytes_copied();
                let frozen = win.take_local();
                let copied = replidedup_buf::thread_bytes_copied() - copied_before;
                (frozen.to_vec(), win.with_local(|d| d.len()), copied)
            })
            .expect_all();
        let (frozen, left, copied_by_steal) = &out.results[0];
        assert_eq!(*frozen, vec![1, 2, 3, 4]);
        assert_eq!(*left, 0, "exposure stolen");
        // The steal records no copy: the backing Vec moves into the Bytes.
        assert_eq!(*copied_by_steal, 0);
    }

    #[test]
    fn dropped_windows_recycle_their_backing() {
        use replidedup_buf::global_pool;
        // Warm the shelf, then show a same-sized window reuses it.
        let size = 1 << 16;
        WorldConfig::default()
            .launch(1, |comm| {
                let win = comm.win_create(size);
                win.fence(comm);
            })
            .expect_all();
        let before = global_pool().stats();
        WorldConfig::default()
            .launch(1, |comm| {
                let win = comm.win_create(size);
                win.fence(comm);
            })
            .expect_all();
        let after = global_pool().stats();
        assert!(
            after.hits > before.hits,
            "second window must come from the pool shelf"
        );
    }

    #[test]
    fn zero_sized_window_is_legal() {
        let out = WorldConfig::default()
            .launch(2, |comm| {
                let win = comm.win_create(0);
                win.fence(comm);
                win.local_size()
            })
            .expect_all();
        assert_eq!(out.results, vec![0, 0]);
    }

    #[test]
    fn rma_to_dead_rank_fails_fast() {
        use crate::comm::WorldConfig;
        use crate::fault::{CommError, FaultPlan, FaultTrigger};
        use std::time::Duration;

        let plan = FaultPlan::new(21).crash(1, FaultTrigger::PhaseStart("doomed".into()));
        let config = WorldConfig::default()
            .with_recv_timeout(Duration::from_secs(2))
            .with_faults(plan);
        let out = config.launch(3, |comm| {
            let win = comm.try_win_create(8).expect("all ranks alive at create");
            if comm.rank() == 1 {
                // Wait for explicit acks so the crash strictly follows every
                // rank finishing win_create (otherwise a survivor still in
                // the opening fence would see the death and fail creation).
                comm.recv(0, 99);
                comm.recv(2, 99);
                comm.enter_phase("doomed");
                comm.exit_phase("doomed");
                return (Ok(()), Ok(()));
            }
            comm.send_bytes(1, 99, bytes::Bytes::from_static(b"ok"));
            while !comm.any_failed() {
                std::thread::sleep(Duration::from_millis(1));
            }
            let put = win.try_put(1, 0, &[1, 2]);
            let fence = win.try_fence(comm);
            (put, fence)
        });
        assert_eq!(out.crashed_ranks(), vec![1]);
        for rank in [0usize, 2] {
            let (put, fence) = out.outcomes[rank].as_completed().unwrap();
            assert_eq!(*put, Err(CommError::RankFailed { rank: 1 }), "rank {rank}");
            assert_eq!(
                *fence,
                Err(CommError::RankFailed { rank: 1 }),
                "rank {rank}"
            );
        }
    }
}
