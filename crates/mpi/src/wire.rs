//! Minimal binary wire codec for message payloads.
//!
//! The original prototype leans on Boost.MPI's automatic serialization of
//! data structures; this hand-rolled codec plays that role without pulling a
//! serde format crate. All integers are little-endian and fixed-width;
//! sequences are length-prefixed with a `u64`. Encoding is infallible;
//! decoding returns [`WireError`] on truncated or malformed input so a
//! corrupted message can never panic the runtime.

use bytes::Bytes;
use std::fmt;

pub use replidedup_buf::Chunk;

// ---------------------------------------------------------------------------
// Session tag namespaces
// ---------------------------------------------------------------------------

/// Bit position of the 16-bit session namespace inside a message tag.
/// Layout of a tag, most significant bits first: bit 63 marks
/// runtime-internal tags, bit 62 the death notice, bits 60..=45 the session
/// namespace, and everything below is the caller's tag space. User tags
/// must therefore stay below 2^45.
pub const SESSION_TAG_SHIFT: u32 = 45;

/// Mask selecting the session-namespace bits of a tag.
pub const SESSION_TAG_MASK: u64 = 0xFFFF << SESSION_TAG_SHIFT;

/// Scope `tag` to session namespace `session`. Tags scoped to different
/// sessions never compare equal, so concurrent (or crash-interleaved)
/// sessions multiplexed over one communicator cannot match each other's
/// messages.
///
/// # Panics
/// Debug-asserts that `tag` does not already carry namespace bits.
pub fn session_tag(session: u16, tag: u64) -> u64 {
    debug_assert_eq!(
        tag & SESSION_TAG_MASK,
        0,
        "tag {tag:#x} already carries session bits"
    );
    (u64::from(session) << SESSION_TAG_SHIFT) | tag
}

/// The session namespace a tag is scoped to (0 = default session).
pub fn tag_session(tag: u64) -> u16 {
    ((tag & SESSION_TAG_MASK) >> SESSION_TAG_SHIFT) as u16
}

/// Strip the session namespace, recovering the caller's original tag.
pub fn user_tag(tag: u64) -> u64 {
    tag & !SESSION_TAG_MASK
}

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    Truncated {
        /// What was being decoded.
        what: &'static str,
    },
    /// A length prefix or discriminant had an impossible value.
    Malformed {
        /// What was being decoded.
        what: &'static str,
    },
    /// Bytes were left over after the top-level value was decoded.
    TrailingBytes {
        /// Number of unread bytes.
        remaining: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what } => write!(f, "truncated input while decoding {what}"),
            WireError::Malformed { what } => write!(f, "malformed encoding of {what}"),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decode")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Result alias for decoding.
pub type WireResult<T> = Result<T, WireError>;

/// Types that can cross the wire.
pub trait Wire: Sized {
    /// Append the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decode a value from the front of `input`, advancing it.
    fn decode(input: &mut &[u8]) -> WireResult<Self>;

    /// Encode into a fresh, frozen buffer.
    fn to_bytes(&self) -> Bytes {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        Bytes::from(buf)
    }

    /// Decode a complete value, rejecting trailing bytes.
    fn from_bytes(mut input: &[u8]) -> WireResult<Self> {
        let v = Self::decode(&mut input)?;
        if input.is_empty() {
            Ok(v)
        } else {
            Err(WireError::TrailingBytes {
                remaining: input.len(),
            })
        }
    }
}

fn take<'a>(input: &mut &'a [u8], n: usize, what: &'static str) -> WireResult<&'a [u8]> {
    if input.len() < n {
        return Err(WireError::Truncated { what });
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(input: &mut &[u8]) -> WireResult<Self> {
                let raw = take(input, std::mem::size_of::<$t>(), stringify!($t))?;
                Ok(<$t>::from_le_bytes(raw.try_into().unwrap()))
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Wire for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u64).encode(buf);
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        let v = u64::decode(input)?;
        usize::try_from(v).map_err(|_| WireError::Malformed { what: "usize" })
    }
}

impl Wire for f64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        let raw = take(input, 8, "f64")?;
        Ok(f64::from_le_bytes(raw.try_into().unwrap()))
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        match take(input, 1, "bool")?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed { what: "bool" }),
        }
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.len().encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        let len = usize::decode(input)?;
        let raw = take(input, len, "String")?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::Malformed { what: "String" })
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.len().encode(buf);
        for item in self {
            item.encode(buf);
        }
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        let len = usize::decode(input)?;
        // Guard capacity against hostile length prefixes: never reserve more
        // than the remaining input could possibly encode (1 byte/element min).
        let mut out = Vec::with_capacity(len.min(input.len()));
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        match take(input, 1, "Option")?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            _ => Err(WireError::Malformed { what: "Option" }),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        Ok((A::decode(input)?, B::decode(input)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        Ok((A::decode(input)?, B::decode(input)?, C::decode(input)?))
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
        self.3.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        Ok((
            A::decode(input)?,
            B::decode(input)?,
            C::decode(input)?,
            D::decode(input)?,
        ))
    }
}

impl<const N: usize> Wire for [u8; N] {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self);
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        let raw = take(input, N, "byte array")?;
        Ok(raw.try_into().unwrap())
    }
}

impl Wire for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}

    fn decode(_input: &mut &[u8]) -> WireResult<Self> {
        Ok(())
    }
}

impl Wire for replidedup_hash::Fingerprint {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self.as_bytes());
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        let raw = take(input, Self::SIZE, "Fingerprint")?;
        Ok(Self::from_bytes(raw.try_into().unwrap()))
    }
}

// ---------------------------------------------------------------------------
// Scatter-gather frames
// ---------------------------------------------------------------------------

/// A scatter-gather message body: an ordered sequence of [`Bytes`] segments
/// that is *logically* one contiguous byte stream but is never coalesced on
/// the send path. Headers live in small owned segments; bulk payloads ride
/// along as zero-copy [`Bytes`] views of whatever allocation the sender
/// already holds (an application buffer, a stored chunk). Concatenating the
/// segments yields the frame's canonical contiguous encoding, so a frame
/// that *does* get flattened (e.g. by [`Frame::gather`]) decodes
/// identically to one that stayed scattered.
#[derive(Debug, Clone, Default)]
pub struct Frame {
    segments: Vec<Bytes>,
}

impl Frame {
    /// Empty frame.
    pub fn new() -> Self {
        Self::default()
    }

    /// Frame of a single contiguous segment (the shape every pre-frame
    /// message had).
    pub fn single(payload: Bytes) -> Self {
        Self {
            segments: vec![payload],
        }
    }

    /// Append a segment (zero-copy).
    pub fn push(&mut self, segment: Bytes) {
        self.segments.push(segment);
    }

    /// Total logical length: the sum over all segments.
    pub fn len(&self) -> usize {
        self.segments.iter().map(Bytes::len).sum()
    }

    /// Whether the frame carries no bytes at all.
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(Bytes::is_empty)
    }

    /// The underlying segments.
    pub fn segments(&self) -> &[Bytes] {
        &self.segments
    }

    /// Flatten into one contiguous [`Bytes`]. Zero-copy when the frame has
    /// at most one segment; otherwise the segments are coalesced into a
    /// fresh buffer and the memcpy is recorded against the copy accounting
    /// ([`replidedup_buf::record_copy`]).
    pub fn gather(mut self) -> Bytes {
        match self.segments.len() {
            0 => Bytes::new(),
            1 => self.segments.pop().expect("one segment"),
            _ => {
                let total = self.len();
                replidedup_buf::record_copy(total);
                let mut out = Vec::with_capacity(total);
                for seg in &self.segments {
                    out.extend_from_slice(seg);
                }
                Bytes::from(out)
            }
        }
    }
}

impl From<Bytes> for Frame {
    fn from(payload: Bytes) -> Self {
        Self::single(payload)
    }
}

impl From<Vec<u8>> for Frame {
    /// Zero-copy: the vector becomes the single segment's allocation.
    fn from(v: Vec<u8>) -> Self {
        Self::single(Bytes::from(v))
    }
}

/// Builds a [`Frame`] by interleaving [`Wire`]-encoded header fields with
/// zero-copy payload attachments.
///
/// `put` appends to the current header segment; [`FrameWriter::attach`]
/// writes the payload's `u64` length into the header, seals it, and appends
/// the payload as its own segment — so the payload bytes are never copied,
/// yet the concatenation of all segments is a self-describing contiguous
/// encoding that [`FrameReader`] can replay from either shape.
#[derive(Debug, Default)]
pub struct FrameWriter {
    done: Vec<Bytes>,
    header: Vec<u8>,
}

impl FrameWriter {
    /// Fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encode a header value into the current header segment.
    pub fn put<T: Wire>(&mut self, value: &T) {
        value.encode(&mut self.header);
    }

    /// Attach a bulk payload without copying it: its length goes into the
    /// header, the bytes ride as their own segment.
    pub fn attach(&mut self, payload: impl Into<Bytes>) {
        let payload = payload.into();
        (payload.len() as u64).encode(&mut self.header);
        if !self.header.is_empty() {
            self.done
                .push(Bytes::from(std::mem::take(&mut self.header)));
        }
        self.done.push(payload);
    }

    /// Seal the writer into a [`Frame`].
    pub fn finish(mut self) -> Frame {
        if !self.header.is_empty() {
            self.done.push(Bytes::from(self.header));
        }
        Frame {
            segments: self.done,
        }
    }
}

/// Replays a [`Frame`] written by [`FrameWriter`]: header values via
/// [`FrameReader::get`], payloads via [`FrameReader::take_payload`].
///
/// Works on both shapes of the same logical stream — a still-scattered
/// frame (payloads are whole segments, taken zero-copy) and a contiguous
/// one (payloads are zero-copy sub-slices of the single segment). Neither
/// path copies payload bytes; a debug assertion enforces this.
#[derive(Debug)]
pub struct FrameReader {
    segments: Vec<Bytes>,
    /// Index of the segment the cursor is in.
    seg: usize,
    /// Byte offset inside that segment.
    off: usize,
}

impl FrameReader {
    /// Start reading `frame` from the beginning.
    pub fn new(frame: Frame) -> Self {
        Self {
            segments: frame.segments,
            seg: 0,
            off: 0,
        }
    }

    /// Advance past exhausted segments.
    fn normalize(&mut self) {
        while self.seg < self.segments.len() && self.off >= self.segments[self.seg].len() {
            debug_assert_eq!(self.off, self.segments[self.seg].len());
            self.seg += 1;
            self.off = 0;
        }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        let mut total = 0;
        if self.seg < self.segments.len() {
            total += self.segments[self.seg].len() - self.off;
            for s in &self.segments[self.seg + 1..] {
                total += s.len();
            }
        }
        total
    }

    /// Decode a header value. Header fields never span segment boundaries
    /// in writer-produced frames; a value that would is reported as
    /// truncated.
    pub fn get<T: Wire>(&mut self) -> WireResult<T> {
        self.normalize();
        let Some(seg) = self.segments.get(self.seg) else {
            return Err(WireError::Truncated {
                what: "frame header",
            });
        };
        let mut input = &seg[self.off..];
        let before = input.len();
        let v = T::decode(&mut input)?;
        self.off += before - input.len();
        Ok(v)
    }

    /// Take the next attached payload as a zero-copy [`Chunk`].
    pub fn take_payload(&mut self) -> WireResult<Chunk> {
        let len = usize::try_from(self.get::<u64>()?).map_err(|_| WireError::Malformed {
            what: "payload length",
        })?;
        self.normalize();
        if len == 0 {
            return Ok(Chunk::new());
        }
        let Some(seg) = self.segments.get(self.seg) else {
            return Err(WireError::Truncated {
                what: "frame payload",
            });
        };
        let avail = seg.len() - self.off;
        if avail >= len {
            // Contiguous case: the payload is a zero-copy sub-slice of the
            // current segment (for a flattened frame, of the whole frame).
            let payload = seg.slice(self.off..self.off + len);
            debug_assert!(
                payload.shares_allocation_with(seg),
                "contiguous frame decode must not copy the payload"
            );
            self.off += len;
            return Ok(Chunk::from(payload));
        }
        // Scattered payload straddling segments: only reachable for frames
        // assembled outside FrameWriter. Coalesce (recorded).
        if self.remaining() < len {
            return Err(WireError::Truncated {
                what: "frame payload",
            });
        }
        replidedup_buf::record_copy(len);
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            self.normalize();
            let seg = &self.segments[self.seg];
            let want = (len - out.len()).min(seg.len() - self.off);
            out.extend_from_slice(&seg[self.off..self.off + want]);
            self.off += want;
        }
        Ok(Chunk::from(out))
    }

    /// Assert the whole frame was consumed.
    pub fn finish(mut self) -> WireResult<()> {
        self.normalize();
        match self.remaining() {
            0 => Ok(()),
            remaining => Err(WireError::TrailingBytes { remaining }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn session_tags_partition_the_tag_space() {
        assert_eq!(session_tag(0, 7), 7);
        let a = session_tag(1, 7);
        let b = session_tag(2, 7);
        assert_ne!(a, b);
        assert_eq!(tag_session(a), 1);
        assert_eq!(tag_session(b), 2);
        assert_eq!(user_tag(a), 7);
        assert_eq!(user_tag(b), 7);
        // The namespace stays clear of the runtime-internal bits 62/63.
        let top = session_tag(u16::MAX, (1 << SESSION_TAG_SHIFT) - 1);
        assert_eq!(top & (1 << 63), 0);
        assert_eq!(top & (1 << 62), 0);
        assert_eq!(tag_session(top), u16::MAX);
        assert_eq!(user_tag(top), (1 << SESSION_TAG_SHIFT) - 1);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0x1234u16);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(-5i32);
        roundtrip(i64::MIN);
        roundtrip(3.5f64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(123usize);
        roundtrip(());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip("hello".to_string());
        roundtrip(Some(7u32));
        roundtrip(None::<u32>);
        roundtrip((1u32, "x".to_string()));
        roundtrip((1u8, 2u16, vec![3u32]));
        roundtrip((1u8, 2u16, 3u32, "d".to_string()));
        roundtrip([1u8, 2, 3, 4]);
        roundtrip(vec![vec![1u8], vec![], vec![2, 3]]);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let bytes = 0x1234_5678u32.to_bytes();
        assert!(matches!(
            u32::from_bytes(&bytes[..3]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 7u8.to_bytes().to_vec();
        bytes.push(9);
        assert_eq!(
            u8::from_bytes(&bytes),
            Err(WireError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn malformed_bool_rejected() {
        assert!(matches!(
            bool::from_bytes(&[2]),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn hostile_length_prefix_does_not_allocate() {
        // A Vec claiming u64::MAX elements with an empty body must error,
        // not OOM trying to reserve.
        let bytes = u64::MAX.to_bytes();
        assert!(Vec::<u64>::from_bytes(&bytes).is_err());
    }

    #[test]
    fn invalid_utf8_string_rejected() {
        let mut buf = Vec::new();
        2usize.encode(&mut buf);
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            String::from_bytes(&buf),
            Err(WireError::Malformed { what: "String" })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = WireError::Truncated { what: "u32" };
        assert!(e.to_string().contains("u32"));
        assert!(WireError::TrailingBytes { remaining: 3 }
            .to_string()
            .contains('3'));
        assert!(WireError::Malformed { what: "bool" }
            .to_string()
            .contains("bool"));
    }

    #[test]
    fn frame_writer_payloads_are_zero_copy() {
        let big = Chunk::from(vec![0xAB; 4096]);
        let mut w = FrameWriter::new();
        w.put(&7u32);
        w.attach(big.clone());
        w.put(&"tail".to_string());
        let frame = w.finish();
        // The payload segment IS the chunk's allocation, not a copy.
        assert!(frame
            .segments()
            .iter()
            .any(|s| s.shares_allocation_with(big.as_bytes())));

        let mut r = FrameReader::new(frame);
        assert_eq!(r.get::<u32>().unwrap(), 7);
        let payload = r.take_payload().unwrap();
        assert!(payload.shares_allocation_with(&big));
        assert_eq!(r.get::<String>().unwrap(), "tail");
        r.finish().unwrap();
    }

    #[test]
    fn gathered_frame_decodes_identically_and_slices_zero_copy() {
        let mut w = FrameWriter::new();
        w.put(&1u8);
        w.attach(Chunk::from(vec![9u8; 100]));
        w.attach(Chunk::from(vec![8u8; 50]));
        let flat = w.finish().gather();
        let mut r = FrameReader::new(Frame::single(flat.clone()));
        assert_eq!(r.get::<u8>().unwrap(), 1);
        let a = r.take_payload().unwrap();
        let b = r.take_payload().unwrap();
        assert_eq!(*a, vec![9u8; 100]);
        assert_eq!(*b, vec![8u8; 50]);
        // Contiguous decode: payloads are sub-slices of the flat buffer.
        assert!(a.as_bytes().shares_allocation_with(&flat));
        assert!(b.as_bytes().shares_allocation_with(&flat));
        r.finish().unwrap();
    }

    #[test]
    fn frame_len_and_gather_single_segment() {
        let payload = Bytes::from(vec![1u8, 2, 3]);
        let frame = Frame::single(payload.clone());
        assert_eq!(frame.len(), 3);
        assert!(!frame.is_empty());
        let gathered = frame.gather();
        assert!(gathered.shares_allocation_with(&payload));
        assert!(Frame::new().is_empty());
        assert!(Frame::new().gather().is_empty());
    }

    #[test]
    fn empty_payload_attach_roundtrips() {
        let mut w = FrameWriter::new();
        w.attach(Chunk::new());
        w.put(&42u64);
        let mut r = FrameReader::new(w.finish());
        assert!(r.take_payload().unwrap().is_empty());
        assert_eq!(r.get::<u64>().unwrap(), 42);
        r.finish().unwrap();
    }

    #[test]
    fn truncated_frame_errors_not_panics() {
        let mut r = FrameReader::new(Frame::new());
        assert!(matches!(r.get::<u32>(), Err(WireError::Truncated { .. })));
        // A header claiming a longer payload than present.
        let mut w = FrameWriter::new();
        w.put(&(1000u64)); // masquerades as a payload length
        let mut r = FrameReader::new(w.finish());
        assert!(matches!(r.take_payload(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn unconsumed_frame_reports_trailing() {
        let mut w = FrameWriter::new();
        w.put(&5u32);
        let r = FrameReader::new(w.finish());
        assert_eq!(r.finish(), Err(WireError::TrailingBytes { remaining: 4 }));
    }

    proptest! {
        #[test]
        fn prop_frame_roundtrip_shares_allocations(
            payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..8),
            heads in proptest::collection::vec(any::<u64>(), 1..8),
        ) {
            let chunks: Vec<Chunk> = payloads.into_iter().map(Chunk::from).collect();
            let mut w = FrameWriter::new();
            for (i, c) in chunks.iter().enumerate() {
                w.put(&heads[i % heads.len()]);
                w.attach(c.clone());
            }
            let mut r = FrameReader::new(w.finish());
            for (i, c) in chunks.iter().enumerate() {
                prop_assert_eq!(r.get::<u64>().unwrap(), heads[i % heads.len()]);
                let got = r.take_payload().unwrap();
                prop_assert_eq!(&got, c);
                // Non-empty payloads must share the sender's allocation.
                if !c.is_empty() {
                    prop_assert!(got.shares_allocation_with(c));
                }
            }
            r.finish().unwrap();
        }

        #[test]
        fn prop_vec_u64_roundtrip(v in proptest::collection::vec(any::<u64>(), 0..200)) {
            let bytes = v.to_bytes();
            prop_assert_eq!(Vec::<u64>::from_bytes(&bytes).unwrap(), v);
        }

        #[test]
        fn prop_nested_roundtrip(v in proptest::collection::vec(
            (any::<u32>(), proptest::collection::vec(any::<u16>(), 0..8)), 0..50)
        ) {
            let bytes = v.to_bytes();
            prop_assert_eq!(Vec::<(u32, Vec<u16>)>::from_bytes(&bytes).unwrap(), v);
        }

        #[test]
        fn prop_string_roundtrip(s in ".*") {
            let bytes = s.clone().to_bytes();
            prop_assert_eq!(String::from_bytes(&bytes).unwrap(), s);
        }

        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            // Arbitrary bytes must decode or error, never panic.
            let _ = Vec::<u64>::from_bytes(&bytes);
            let _ = String::from_bytes(&bytes);
            let _ = Option::<(u32, String)>::from_bytes(&bytes);
        }
    }
}
