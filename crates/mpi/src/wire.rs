//! Minimal binary wire codec for message payloads.
//!
//! The original prototype leans on Boost.MPI's automatic serialization of
//! data structures; this hand-rolled codec plays that role without pulling a
//! serde format crate. All integers are little-endian and fixed-width;
//! sequences are length-prefixed with a `u64`. Encoding is infallible;
//! decoding returns [`WireError`] on truncated or malformed input so a
//! corrupted message can never panic the runtime.

use bytes::Bytes;
use std::fmt;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    Truncated {
        /// What was being decoded.
        what: &'static str,
    },
    /// A length prefix or discriminant had an impossible value.
    Malformed {
        /// What was being decoded.
        what: &'static str,
    },
    /// Bytes were left over after the top-level value was decoded.
    TrailingBytes {
        /// Number of unread bytes.
        remaining: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what } => write!(f, "truncated input while decoding {what}"),
            WireError::Malformed { what } => write!(f, "malformed encoding of {what}"),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decode")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Result alias for decoding.
pub type WireResult<T> = Result<T, WireError>;

/// Types that can cross the wire.
pub trait Wire: Sized {
    /// Append the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decode a value from the front of `input`, advancing it.
    fn decode(input: &mut &[u8]) -> WireResult<Self>;

    /// Encode into a fresh, frozen buffer.
    fn to_bytes(&self) -> Bytes {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        Bytes::from(buf)
    }

    /// Decode a complete value, rejecting trailing bytes.
    fn from_bytes(mut input: &[u8]) -> WireResult<Self> {
        let v = Self::decode(&mut input)?;
        if input.is_empty() {
            Ok(v)
        } else {
            Err(WireError::TrailingBytes {
                remaining: input.len(),
            })
        }
    }
}

fn take<'a>(input: &mut &'a [u8], n: usize, what: &'static str) -> WireResult<&'a [u8]> {
    if input.len() < n {
        return Err(WireError::Truncated { what });
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(input: &mut &[u8]) -> WireResult<Self> {
                let raw = take(input, std::mem::size_of::<$t>(), stringify!($t))?;
                Ok(<$t>::from_le_bytes(raw.try_into().unwrap()))
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Wire for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u64).encode(buf);
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        let v = u64::decode(input)?;
        usize::try_from(v).map_err(|_| WireError::Malformed { what: "usize" })
    }
}

impl Wire for f64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        let raw = take(input, 8, "f64")?;
        Ok(f64::from_le_bytes(raw.try_into().unwrap()))
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        match take(input, 1, "bool")?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed { what: "bool" }),
        }
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.len().encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        let len = usize::decode(input)?;
        let raw = take(input, len, "String")?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::Malformed { what: "String" })
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.len().encode(buf);
        for item in self {
            item.encode(buf);
        }
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        let len = usize::decode(input)?;
        // Guard capacity against hostile length prefixes: never reserve more
        // than the remaining input could possibly encode (1 byte/element min).
        let mut out = Vec::with_capacity(len.min(input.len()));
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        match take(input, 1, "Option")?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            _ => Err(WireError::Malformed { what: "Option" }),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        Ok((A::decode(input)?, B::decode(input)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        Ok((A::decode(input)?, B::decode(input)?, C::decode(input)?))
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
        self.3.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        Ok((
            A::decode(input)?,
            B::decode(input)?,
            C::decode(input)?,
            D::decode(input)?,
        ))
    }
}

impl<const N: usize> Wire for [u8; N] {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self);
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        let raw = take(input, N, "byte array")?;
        Ok(raw.try_into().unwrap())
    }
}

impl Wire for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}

    fn decode(_input: &mut &[u8]) -> WireResult<Self> {
        Ok(())
    }
}

impl Wire for replidedup_hash::Fingerprint {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self.as_bytes());
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        let raw = take(input, Self::SIZE, "Fingerprint")?;
        Ok(Self::from_bytes(raw.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0x1234u16);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(-5i32);
        roundtrip(i64::MIN);
        roundtrip(3.5f64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(123usize);
        roundtrip(());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip("hello".to_string());
        roundtrip(Some(7u32));
        roundtrip(None::<u32>);
        roundtrip((1u32, "x".to_string()));
        roundtrip((1u8, 2u16, vec![3u32]));
        roundtrip((1u8, 2u16, 3u32, "d".to_string()));
        roundtrip([1u8, 2, 3, 4]);
        roundtrip(vec![vec![1u8], vec![], vec![2, 3]]);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let bytes = 0x1234_5678u32.to_bytes();
        assert!(matches!(
            u32::from_bytes(&bytes[..3]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 7u8.to_bytes().to_vec();
        bytes.push(9);
        assert_eq!(
            u8::from_bytes(&bytes),
            Err(WireError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn malformed_bool_rejected() {
        assert!(matches!(
            bool::from_bytes(&[2]),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn hostile_length_prefix_does_not_allocate() {
        // A Vec claiming u64::MAX elements with an empty body must error,
        // not OOM trying to reserve.
        let bytes = u64::MAX.to_bytes();
        assert!(Vec::<u64>::from_bytes(&bytes).is_err());
    }

    #[test]
    fn invalid_utf8_string_rejected() {
        let mut buf = Vec::new();
        2usize.encode(&mut buf);
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            String::from_bytes(&buf),
            Err(WireError::Malformed { what: "String" })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = WireError::Truncated { what: "u32" };
        assert!(e.to_string().contains("u32"));
        assert!(WireError::TrailingBytes { remaining: 3 }
            .to_string()
            .contains('3'));
        assert!(WireError::Malformed { what: "bool" }
            .to_string()
            .contains("bool"));
    }

    proptest! {
        #[test]
        fn prop_vec_u64_roundtrip(v in proptest::collection::vec(any::<u64>(), 0..200)) {
            let bytes = v.to_bytes();
            prop_assert_eq!(Vec::<u64>::from_bytes(&bytes).unwrap(), v);
        }

        #[test]
        fn prop_nested_roundtrip(v in proptest::collection::vec(
            (any::<u32>(), proptest::collection::vec(any::<u16>(), 0..8)), 0..50)
        ) {
            let bytes = v.to_bytes();
            prop_assert_eq!(Vec::<(u32, Vec<u16>)>::from_bytes(&bytes).unwrap(), v);
        }

        #[test]
        fn prop_string_roundtrip(s in ".*") {
            let bytes = s.clone().to_bytes();
            prop_assert_eq!(String::from_bytes(&bytes).unwrap(), s);
        }

        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            // Arbitrary bytes must decode or error, never panic.
            let _ = Vec::<u64>::from_bytes(&bytes);
            let _ = String::from_bytes(&bytes);
            let _ = Option::<(u32, String)>::from_bytes(&bytes);
        }
    }
}
