//! Deterministic fault injection for the thread-rank runtime.
//!
//! The paper's premise is that node-local storage fails; a reproduction is
//! only credible if it can *exercise* that failure mid-collective, not just
//! between completed operations. A [`FaultPlan`] describes, ahead of time
//! and reproducibly, which ranks die (or stall) and *when*: at a named
//! phase boundary (the Algorithm-1 phases the tracer already knows about)
//! or after a fixed number of message operations. The plan is handed to
//! [`crate::WorldConfig`] and enforced by the communicator itself, so the
//! injected schedule is a pure function of the seed and the program — the
//! same seed replays the identical fault schedule.
//!
//! A crashed rank stops participating: its thread unwinds with a private
//! payload the [`crate::World`] runner catches, a shared per-world
//! [`FaultRuntime`] marks it dead, and every peer is woken with a death
//! notice so blocked receives fail fast with a typed [`CommError`] instead
//! of waiting out the deadlock timeout.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::comm::{Rank, Tag};

/// When a planned fault fires on its rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Immediately before the named phase span opens on the rank
    /// (phases are the names passed to [`crate::Comm::enter_phase`]).
    PhaseStart(String),
    /// Immediately after the named phase span closes on the rank.
    PhaseEnd(String),
    /// Immediately before the n-th (1-based) opening of the named phase
    /// span on the rank. Incremental collectives such as healing re-enter
    /// the same phase every step; this trigger picks a specific occurrence
    /// (e.g. "kill the healer the second time it starts transferring").
    /// `PhaseStartNth(p, 1)` behaves exactly like `PhaseStart(p)`.
    PhaseStartNth(String, u32),
    /// When the rank's cumulative count of message operations (sends plus
    /// receives, collective internals included) reaches this value.
    MessageCount(u64),
}

impl fmt::Display for FaultTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTrigger::PhaseStart(p) => write!(f, "start:{p}"),
            FaultTrigger::PhaseEnd(p) => write!(f, "end:{p}"),
            FaultTrigger::PhaseStartNth(p, n) => write!(f, "start:{p}#{n}"),
            FaultTrigger::MessageCount(n) => write!(f, "msg:{n}"),
        }
    }
}

/// What happens when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The rank dies: it stops participating in every subsequent operation.
    Crash,
    /// Straggler injection: the rank sleeps once for this long, then
    /// continues normally.
    Delay(Duration),
    /// Transient storage-failure injection: the plan's `on_transient` hook
    /// fires on the rank's thread with this budget of operations. The hook
    /// typically arms the rank's storage node to fail its next N reads
    /// recoverably, exercising retry paths; without a hook the action is a
    /// no-op (the runtime itself has no storage to degrade).
    Transient(u32),
}

/// One planned fault: an action on a rank at a trigger point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// The rank the fault is injected on.
    pub rank: Rank,
    /// When it fires.
    pub trigger: FaultTrigger,
    /// What it does.
    pub action: FaultAction,
}

/// Callback invoked on the dying rank's thread at the instant of an
/// injected crash, before any peer can observe the death. Tests use it to
/// fail the rank's storage node atomically with the process death.
pub type CrashHook = Arc<dyn Fn(Rank) + Send + Sync>;

/// Callback invoked on a rank's thread when a [`FaultAction::Transient`]
/// fault fires, with the rank and the planned operation budget. Tests use
/// it to arm the rank's storage node with that many transient read
/// failures (`Cluster::inject_transient` in `replidedup-storage`).
pub type TransientHook = Arc<dyn Fn(Rank, u32) + Send + Sync>;

/// A deterministic fault schedule for one world run.
///
/// Equality and `Debug` ignore the crash hook: two plans with the same seed
/// and fault list describe the same schedule.
#[derive(Clone, Default)]
pub struct FaultPlan {
    /// Seed that generated (or labels) this plan; replaying with an equal
    /// plan reproduces the identical schedule.
    pub seed: u64,
    /// The planned faults, in no particular order (each fires on its own
    /// rank at its own trigger).
    pub faults: Vec<Fault>,
    pub(crate) on_crash: Option<CrashHook>,
    pub(crate) on_transient: Option<TransientHook>,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("faults", &self.faults)
            .field("on_crash", &self.on_crash.as_ref().map(|_| ".."))
            .field("on_transient", &self.on_transient.as_ref().map(|_| ".."))
            .finish()
    }
}

impl PartialEq for FaultPlan {
    fn eq(&self, other: &Self) -> bool {
        self.seed == other.seed && self.faults == other.faults
    }
}

impl Eq for FaultPlan {}

/// SplitMix64: tiny, high-quality, dependency-free generator; the standard
/// choice for seeding deterministic test schedules.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Empty plan labeled with `seed`; add faults with the builder methods.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Add one fault.
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Add a crash of `rank` at `trigger`.
    pub fn crash(self, rank: Rank, trigger: FaultTrigger) -> Self {
        self.with_fault(Fault {
            rank,
            trigger,
            action: FaultAction::Crash,
        })
    }

    /// Add a one-shot delay of `rank` at `trigger`.
    pub fn delay(self, rank: Rank, trigger: FaultTrigger, dur: Duration) -> Self {
        self.with_fault(Fault {
            rank,
            trigger,
            action: FaultAction::Delay(dur),
        })
    }

    /// Add a transient-storage fault on `rank` at `trigger` with an `ops`
    /// budget (delivered to the `on_transient` hook when it fires).
    pub fn transient(self, rank: Rank, trigger: FaultTrigger, ops: u32) -> Self {
        self.with_fault(Fault {
            rank,
            trigger,
            action: FaultAction::Transient(ops),
        })
    }

    /// Install a callback that runs on the dying rank's thread at the
    /// instant of each injected crash (e.g. to fail the rank's storage
    /// node). The hook does not participate in equality.
    pub fn on_crash(mut self, hook: impl Fn(Rank) + Send + Sync + 'static) -> Self {
        self.on_crash = Some(Arc::new(hook));
        self
    }

    /// Install a callback that runs on the faulted rank's thread when a
    /// [`FaultAction::Transient`] fires (e.g. to arm the rank's storage
    /// node with that many recoverable read failures). The hook does not
    /// participate in equality.
    pub fn on_transient(mut self, hook: impl Fn(Rank, u32) + Send + Sync + 'static) -> Self {
        self.on_transient = Some(Arc::new(hook));
        self
    }

    /// Derive a plan of `crashes` distinct rank crashes from `seed`: each
    /// victim rank and its phase boundary (start or end of one of `phases`)
    /// are chosen by a SplitMix64 stream, so the same
    /// `(seed, world, crashes, phases)` always yields the same plan.
    pub fn seeded(seed: u64, world: u32, crashes: u32, phases: &[&str]) -> Self {
        assert!(world > 0, "world size must be positive");
        assert!(!phases.is_empty(), "seeded plan needs phase names");
        let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
        let crashes = crashes.min(world);
        // Fisher–Yates prefix: the first `crashes` entries are a uniform
        // sample of distinct ranks.
        let mut ranks: Vec<Rank> = (0..world).collect();
        for i in 0..crashes as usize {
            let j = i + (splitmix64(&mut state) as usize) % (world as usize - i);
            ranks.swap(i, j);
        }
        let mut plan = Self::new(seed);
        for &rank in &ranks[..crashes as usize] {
            let phase = phases[(splitmix64(&mut state) as usize) % phases.len()].to_string();
            let trigger = if splitmix64(&mut state) & 1 == 0 {
                FaultTrigger::PhaseStart(phase)
            } else {
                FaultTrigger::PhaseEnd(phase)
            };
            plan = plan.crash(rank, trigger);
        }
        plan
    }

    /// Parse the `--fault-plan` CLI syntax: `SEED[:ITEM[;ITEM]...]` where
    /// each `ITEM` is
    ///
    /// * `crash:RANK@TRIGGER` — crash `RANK` at `TRIGGER`,
    /// * `delay:RANK:MILLIS@TRIGGER` — stall `RANK` once for `MILLIS` ms,
    /// * `transient:RANK:OPS@TRIGGER` — arm `RANK`'s storage with `OPS`
    ///   recoverable read failures (via the `on_transient` hook),
    ///
    /// and `TRIGGER` is `start:PHASE`, `end:PHASE` or `msg:N`. A bare
    /// `SEED` yields an empty plan (callers typically combine it with
    /// [`FaultPlan::seeded`]).
    pub fn parse(spec: &str) -> Result<Self, FaultSpecError> {
        let bad = |what: &str| FaultSpecError(format!("{what} in fault plan {spec:?}"));
        let (seed_str, rest) = match spec.split_once(':') {
            Some((s, r)) => (s, Some(r)),
            None => (spec, None),
        };
        let seed: u64 = seed_str
            .parse()
            .map_err(|_| bad("seed must be an unsigned integer"))?;
        let mut plan = Self::new(seed);
        let Some(rest) = rest else { return Ok(plan) };
        for item in rest.split(';').filter(|i| !i.is_empty()) {
            let (action_str, trigger_str) = item
                .split_once('@')
                .ok_or_else(|| bad("fault item needs ACTION@TRIGGER"))?;
            let trigger = match trigger_str.split_once(':') {
                Some(("start", p)) if !p.is_empty() => match p.split_once('#') {
                    Some((phase, nth)) if !phase.is_empty() => FaultTrigger::PhaseStartNth(
                        phase.to_string(),
                        nth.parse()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| bad("start:PHASE#N needs an occurrence >= 1"))?,
                    ),
                    Some(_) => return Err(bad("start:PHASE#N needs a phase name")),
                    None => FaultTrigger::PhaseStart(p.to_string()),
                },
                Some(("end", p)) if !p.is_empty() => FaultTrigger::PhaseEnd(p.to_string()),
                Some(("msg", n)) => FaultTrigger::MessageCount(
                    n.parse().map_err(|_| bad("msg trigger needs a count"))?,
                ),
                _ => {
                    return Err(bad(
                        "trigger must be start:PHASE, start:PHASE#N, end:PHASE or msg:N",
                    ))
                }
            };
            let parts: Vec<&str> = action_str.split(':').collect();
            let fault = match parts.as_slice() {
                ["crash", r] => Fault {
                    rank: r.parse().map_err(|_| bad("crash needs a rank"))?,
                    trigger,
                    action: FaultAction::Crash,
                },
                ["delay", r, ms] => Fault {
                    rank: r.parse().map_err(|_| bad("delay needs a rank"))?,
                    trigger,
                    action: FaultAction::Delay(Duration::from_millis(
                        ms.parse().map_err(|_| bad("delay needs milliseconds"))?,
                    )),
                },
                ["transient", r, ops] => Fault {
                    rank: r.parse().map_err(|_| bad("transient needs a rank"))?,
                    trigger,
                    action: FaultAction::Transient(
                        ops.parse()
                            .map_err(|_| bad("transient needs an op count"))?,
                    ),
                },
                _ => {
                    return Err(bad(
                        "action must be crash:RANK, delay:RANK:MS or transient:RANK:OPS",
                    ))
                }
            };
            plan.faults.push(fault);
        }
        Ok(plan)
    }
}

/// A `--fault-plan` specification that did not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(pub String);

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

/// Typed communication failures: what the runtime returns from the `try_*`
/// operations instead of panicking (the infallible wrappers panic with the
/// same message).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CommError {
    /// The operation involves a rank that has crashed (injected fault).
    RankFailed {
        /// The dead rank.
        rank: Rank,
    },
    /// A blocking receive exhausted the deadlock timeout.
    DeadlockSuspected {
        /// The rank whose receive timed out.
        rank: Rank,
        /// The awaited source rank.
        src: Rank,
        /// The awaited tag.
        tag: Tag,
        /// How long the receive waited.
        waited: Duration,
    },
    /// A peer's channel disappeared mid-operation (the world is being torn
    /// down, e.g. because another rank panicked for real).
    WorldTornDown {
        /// The rank that observed the teardown.
        rank: Rank,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::RankFailed { rank } => write!(f, "rank {rank} has failed"),
            CommError::DeadlockSuspected {
                rank,
                src,
                tag,
                waited,
            } => write!(
                f,
                "rank {rank} timed out after {waited:?} waiting for message from rank {src} \
                 tag {tag:#x} (likely deadlock: mismatched send/recv or collective ordering)"
            ),
            CommError::WorldTornDown { rank } => {
                write!(f, "rank {rank}: world torn down mid-operation")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Shared per-world fault state. The atomic dead flags are the ground
/// truth; the death notices the dying rank posts on every channel are pure
/// wakeups (the flag is set *before* any notice is sent, so a woken
/// receiver always observes the flag).
pub(crate) struct FaultRuntime {
    dead: Vec<AtomicBool>,
    /// Number of deaths so far; collectives snapshot this at entry and
    /// treat a later increase as a failure of the operation.
    epoch: AtomicU64,
    /// Ranks in death order; `death_log[e..]` are the deaths newer than
    /// epoch snapshot `e`.
    death_log: Mutex<Vec<Rank>>,
    pub(crate) on_crash: Option<CrashHook>,
    pub(crate) on_transient: Option<TransientHook>,
}

impl FaultRuntime {
    pub(crate) fn new(
        world: u32,
        on_crash: Option<CrashHook>,
        on_transient: Option<TransientHook>,
    ) -> Self {
        Self {
            dead: (0..world).map(|_| AtomicBool::new(false)).collect(),
            epoch: AtomicU64::new(0),
            death_log: Mutex::new(Vec::new()),
            on_crash,
            on_transient,
        }
    }

    pub(crate) fn is_dead(&self, rank: Rank) -> bool {
        self.dead[rank as usize].load(Ordering::Acquire)
    }

    /// Record `rank`'s death: flag first (ground truth), then the log and
    /// the epoch bump that collectives poll.
    pub(crate) fn mark_dead(&self, rank: Rank) {
        self.dead[rank as usize].store(true, Ordering::Release);
        self.death_log.lock().unwrap().push(rank);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The lowest dead rank, if any.
    pub(crate) fn first_dead(&self) -> Option<Rank> {
        (0..self.dead.len() as u32).find(|&r| self.is_dead(r))
    }

    /// The first death recorded after epoch snapshot `since`.
    pub(crate) fn newly_dead(&self, since: u64) -> Option<Rank> {
        self.death_log.lock().unwrap().get(since as usize).copied()
    }

    /// All dead ranks, ascending.
    pub(crate) fn dead_ranks(&self) -> Vec<Rank> {
        (0..self.dead.len() as u32)
            .filter(|&r| self.is_dead(r))
            .collect()
    }
}

/// Panic payload of an injected crash; `World` catches it and turns the
/// rank's outcome into [`crate::RankOutcome::Crashed`] instead of
/// propagating the unwind.
pub(crate) struct InjectedCrash {
    pub(crate) rank: Rank,
    pub(crate) events: Option<Vec<replidedup_trace::Event>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let phases = ["alpha", "beta", "gamma"];
        let a = FaultPlan::seeded(42, 8, 2, &phases);
        let b = FaultPlan::seeded(42, 8, 2, &phases);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 2);
        // Distinct victims.
        assert_ne!(a.faults[0].rank, a.faults[1].rank);
        assert!(a.faults.iter().all(|f| f.rank < 8));
        assert!(a.faults.iter().all(|f| f.action == FaultAction::Crash));
    }

    #[test]
    fn different_seeds_usually_differ() {
        let phases = ["alpha", "beta", "gamma", "delta"];
        let plans: Vec<FaultPlan> = (0..16)
            .map(|s| FaultPlan::seeded(s, 16, 3, &phases))
            .collect();
        let distinct = plans
            .iter()
            .filter(|p| plans.iter().filter(|q| q == p).count() == 1)
            .count();
        assert!(distinct > 8, "seeded plans barely vary: {distinct}/16");
    }

    #[test]
    fn crash_count_is_clamped_to_world() {
        let plan = FaultPlan::seeded(1, 3, 10, &["p"]);
        assert_eq!(plan.faults.len(), 3);
    }

    #[test]
    fn parse_roundtrips_the_cli_syntax() {
        let plan = FaultPlan::parse("42:crash:3@end:exchange;delay:1:250@start:commit").unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(
            plan.faults,
            vec![
                Fault {
                    rank: 3,
                    trigger: FaultTrigger::PhaseEnd("exchange".into()),
                    action: FaultAction::Crash,
                },
                Fault {
                    rank: 1,
                    trigger: FaultTrigger::PhaseStart("commit".into()),
                    action: FaultAction::Delay(Duration::from_millis(250)),
                },
            ]
        );
        let msg = FaultPlan::parse("7:crash:0@msg:100").unwrap();
        assert_eq!(
            msg.faults[0].trigger,
            FaultTrigger::MessageCount(100),
            "{msg:?}"
        );
    }

    #[test]
    fn parse_transient_action() {
        let plan = FaultPlan::parse("9:transient:2:5@start:restore.retry").unwrap();
        assert_eq!(
            plan.faults,
            vec![Fault {
                rank: 2,
                trigger: FaultTrigger::PhaseStart("restore.retry".into()),
                action: FaultAction::Transient(5),
            }]
        );
        assert!(FaultPlan::parse("9:transient:2@start:p").is_err());
        assert!(FaultPlan::parse("9:transient:2:x@start:p").is_err());
    }

    #[test]
    fn parse_nth_phase_start_trigger() {
        let plan = FaultPlan::parse("3:crash:1@start:heal.transfer#2").unwrap();
        assert_eq!(
            plan.faults,
            vec![Fault {
                rank: 1,
                trigger: FaultTrigger::PhaseStartNth("heal.transfer".into(), 2),
                action: FaultAction::Crash,
            }]
        );
        assert_eq!(
            plan.faults[0].trigger.to_string(),
            "start:heal.transfer#2",
            "Display round-trips the CLI syntax"
        );
        for bad in [
            "3:crash:1@start:p#0",
            "3:crash:1@start:p#",
            "3:crash:1@start:#2",
            "3:crash:1@start:p#x",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parse_bare_seed_is_empty_plan() {
        let plan = FaultPlan::parse("1234").unwrap();
        assert_eq!(plan.seed, 1234);
        assert!(plan.faults.is_empty());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "x",
            "1:crash:0",
            "1:crash@start:p",
            "1:crash:0@never:p",
            "1:delay:0@start:p",
            "1:boom:0@start:p",
            "1:crash:0@msg:many",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn plan_equality_ignores_the_hook() {
        let a = FaultPlan::new(5).crash(0, FaultTrigger::MessageCount(1));
        let b = a.clone().on_crash(|_| {});
        assert_eq!(a, b);
    }

    #[test]
    fn comm_error_display_keeps_timeout_wording() {
        // The infallible recv path panics with this Display; the runtime's
        // long-standing "timed out" deadlock wording must survive.
        let e = CommError::DeadlockSuspected {
            rank: 2,
            src: 0,
            tag: 7,
            waited: Duration::from_secs(1),
        };
        assert!(e.to_string().contains("timed out"));
        assert!(e.to_string().contains("rank 0"));
    }

    #[test]
    fn fault_runtime_tracks_deaths_in_order() {
        let rt = FaultRuntime::new(4, None, None);
        assert_eq!(rt.first_dead(), None);
        let snap = rt.epoch();
        rt.mark_dead(2);
        rt.mark_dead(0);
        assert!(rt.is_dead(2) && rt.is_dead(0) && !rt.is_dead(1));
        assert_eq!(rt.epoch(), 2);
        assert_eq!(rt.newly_dead(snap), Some(2));
        assert_eq!(rt.newly_dead(snap + 1), Some(0));
        assert_eq!(rt.newly_dead(snap + 2), None);
        assert_eq!(rt.dead_ranks(), vec![0, 2]);
        assert_eq!(rt.first_dead(), Some(0));
    }
}
