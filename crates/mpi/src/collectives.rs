//! MPI-style collectives built on matched point-to-point messages.
//!
//! The paper relies on three collectives: an `ALLREDUCE` with a user-defined
//! merge operator (the fingerprint reduction, "efficient — logarithmic in
//! the number of processes"), an `ALLGATHER` (load dissemination for the
//! rank shuffle), and an implicit barrier/fence around the RMA exchange.
//! These are implemented with the textbook algorithms an MPI library would
//! pick at these message sizes:
//!
//! * barrier — dissemination (⌈log₂ N⌉ rounds),
//! * broadcast — binomial tree,
//! * reduce/allreduce — recursive doubling with pre/post folding for
//!   non-power-of-two worlds,
//! * gather — flat tree (root-bound by construction),
//! * allgather — ring (exact N-1 steps, bandwidth-optimal),
//! * alltoallv — direct pairwise exchange.
//!
//! All internal messages are tagged under the reserved tag space and
//! namespaced by the per-rank collective sequence number, so a collective
//! can never consume a message belonging to an earlier or later operation.
//!
//! Every collective has a fallible `try_*` twin that surfaces rank deaths
//! as [`CommError`] instead of panicking. Failure semantics: at entry each
//! rank snapshots the death epoch and refuses to start if any relevant
//! rank is already dead; a death *during* the collective fails every
//! blocked receive. Survivors of an interrupted collective may diverge
//! (some completed it, some got an error — exactly like real MPI), but all
//! of them fail deterministically at the *next* collective's entry guard,
//! so divergence never propagates further than one operation.

use bytes::Bytes;

use crate::comm::{Comm, Rank};
use crate::fault::CommError;
use crate::stats::Transport;
use crate::wire::Wire;

impl Comm {
    /// Block until every rank has entered the barrier.
    pub fn barrier(&mut self) {
        self.try_barrier().unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`Comm::barrier`]: fails with [`CommError::RankFailed`]
    /// when a rank is dead at entry or dies while the barrier runs.
    pub fn try_barrier(&mut self) -> Result<(), CommError> {
        self.enter_phase("coll_barrier");
        let op = self.next_op();
        let out = self
            .coll_entry_guard()
            .and_then(|epoch| self.barrier_impl(op, epoch));
        self.exit_phase("coll_barrier");
        out
    }

    /// Broadcast `value` from `root` to every rank; `value` is only read at
    /// the root (other ranks pass `None`).
    ///
    /// # Panics
    /// If the root passes `None` or `root` is out of range.
    pub fn bcast<T: Wire>(&mut self, root: Rank, value: Option<T>) -> T {
        self.try_bcast(root, value)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Comm::bcast`].
    pub fn try_bcast<T: Wire>(&mut self, root: Rank, value: Option<T>) -> Result<T, CommError> {
        self.enter_phase("coll_bcast");
        let op = self.next_op();
        let out = self
            .coll_entry_guard()
            .and_then(|epoch| self.bcast_impl(root, value, op, epoch));
        self.exit_phase("coll_bcast");
        out
    }

    /// All-reduce with a user operator; see the `allreduce_impl` internals
    /// in this module for algorithm and determinism guarantees.
    pub fn allreduce<T, F>(&mut self, value: T, op: F) -> T
    where
        T: Wire,
        F: Fn(T, T) -> T,
    {
        self.try_allreduce(value, op)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Comm::allreduce`].
    pub fn try_allreduce<T, F>(&mut self, value: T, op: F) -> Result<T, CommError>
    where
        T: Wire,
        F: Fn(T, T) -> T,
    {
        self.enter_phase("coll_allreduce");
        let seq = self.next_op();
        let out = self
            .coll_entry_guard()
            .and_then(|epoch| self.allreduce_impl(value, op, seq, epoch));
        self.exit_phase("coll_allreduce");
        out
    }

    /// Gather one value per rank at `root` (rank order). Non-roots get `None`.
    pub fn gather<T: Wire>(&mut self, root: Rank, value: T) -> Option<Vec<T>> {
        self.try_gather(root, value)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Comm::gather`].
    pub fn try_gather<T: Wire>(
        &mut self,
        root: Rank,
        value: T,
    ) -> Result<Option<Vec<T>>, CommError> {
        self.enter_phase("coll_gather");
        let op = self.next_op();
        let out = self
            .coll_entry_guard()
            .and_then(|epoch| self.gather_impl(root, value, op, epoch));
        self.exit_phase("coll_gather");
        out
    }

    /// All-gather: every rank contributes one value and receives the full
    /// rank-ordered vector.
    pub fn allgather<T: Wire>(&mut self, value: T) -> Vec<T> {
        self.try_allgather(value).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Comm::allgather`].
    pub fn try_allgather<T: Wire>(&mut self, value: T) -> Result<Vec<T>, CommError> {
        self.enter_phase("coll_allgather");
        let op = self.next_op();
        let out = self
            .coll_entry_guard()
            .and_then(|epoch| self.allgather_impl(value, op, epoch));
        self.exit_phase("coll_allgather");
        out
    }

    /// Personalized all-to-all of raw buffers: `sends[d]` goes to rank `d`;
    /// returns the buffer received from each rank.
    pub fn alltoallv(&mut self, sends: Vec<Bytes>) -> Vec<Bytes> {
        self.try_alltoallv(sends).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Comm::alltoallv`].
    pub fn try_alltoallv(&mut self, sends: Vec<Bytes>) -> Result<Vec<Bytes>, CommError> {
        self.enter_phase("coll_alltoallv");
        let op = self.next_op();
        let out = self
            .coll_entry_guard()
            .and_then(|epoch| self.alltoallv_impl(sends, op, epoch));
        self.exit_phase("coll_alltoallv");
        out
    }

    /// Barrier over an explicit rank group (e.g. the survivors of a
    /// faulted dump). Every group member must call this with the same
    /// group, ascending and containing the caller; only deaths of group
    /// members fail it.
    pub fn try_barrier_group(&mut self, group: &[Rank]) -> Result<(), CommError> {
        self.enter_phase("coll_barrier");
        let op = self.next_op();
        let out = self
            .group_entry_guard(group)
            .and_then(|epoch| self.barrier_group_impl(group, op, epoch));
        self.exit_phase("coll_barrier");
        out
    }

    /// All-gather over an explicit rank group: returns one value per group
    /// member, in group order. Same calling convention as
    /// [`Comm::try_barrier_group`].
    pub fn try_allgather_group<T: Wire>(
        &mut self,
        group: &[Rank],
        value: T,
    ) -> Result<Vec<T>, CommError> {
        self.enter_phase("coll_allgather");
        let op = self.next_op();
        let out = self
            .group_entry_guard(group)
            .and_then(|epoch| self.allgather_group_impl(group, value, op, epoch));
        self.exit_phase("coll_allgather");
        out
    }
}

impl Comm {
    /// Dissemination barrier, ⌈log₂ N⌉ rounds.
    fn barrier_impl(&mut self, op: u64, epoch: Option<u64>) -> Result<(), CommError> {
        let n = self.size();
        if n == 1 {
            return Ok(());
        }
        let me = self.rank();
        let mut round = 0u32;
        let mut dist = 1u32;
        while dist < n {
            let dst = (me + dist) % n;
            let src = (me + n - dist) % n;
            let tag = Self::coll_tag(op, round);
            self.try_send_raw(dst, tag, Bytes::new(), Transport::Collective)?;
            self.try_recv_raw_guarded(src, tag, Transport::Collective, epoch)?;
            round += 1;
            dist <<= 1;
        }
        Ok(())
    }

    /// Dissemination barrier over the positions of `group`.
    fn barrier_group_impl(
        &mut self,
        group: &[Rank],
        op: u64,
        epoch: Option<u64>,
    ) -> Result<(), CommError> {
        let n = group.len() as u32;
        if n <= 1 {
            return Ok(());
        }
        let me = self.rank();
        let pos = group
            .iter()
            .position(|&r| r == me)
            .unwrap_or_else(|| panic!("rank {me} called a group collective it is not part of"))
            as u32;
        let mut round = 0u32;
        let mut dist = 1u32;
        while dist < n {
            let dst = group[((pos + dist) % n) as usize];
            let src = group[((pos + n - dist) % n) as usize];
            let tag = Self::coll_tag(op, round);
            self.try_send_raw(dst, tag, Bytes::new(), Transport::Collective)?;
            self.try_recv_raw_guarded(src, tag, Transport::Collective, epoch)?;
            round += 1;
            dist <<= 1;
        }
        Ok(())
    }

    /// Broadcast `value` from `root` to every rank; `value` is only read at
    /// the root (other ranks pass `None`).
    ///
    /// # Panics
    /// If the root passes `None` or `root` is out of range.
    fn bcast_impl<T: Wire>(
        &mut self,
        root: Rank,
        value: Option<T>,
        op: u64,
        epoch: Option<u64>,
    ) -> Result<T, CommError> {
        let n = self.size();
        let me = self.rank();
        assert!(root < n, "bcast root {root} out of range for world of {n}");
        // Rotate so the root is virtual rank 0 in a binomial tree.
        let vrank = (me + n - root) % n;
        let tag = Self::coll_tag(op, 0);
        let mut payload: Option<Bytes> = if me == root {
            Some(value.expect("bcast root must supply a value").to_bytes())
        } else {
            None
        };
        if payload.is_none() {
            // Receive from parent: clear the lowest set bit of vrank.
            let parent_v = vrank & (vrank - 1);
            let parent = (parent_v + root) % n;
            payload = Some(self.try_recv_raw_guarded(parent, tag, Transport::Collective, epoch)?);
        }
        let payload = payload.expect("payload present after receive");
        // Forward to children: set each bit above the lowest set bit of
        // vrank, as long as the resulting virtual rank is in range.
        let lowest = if vrank == 0 {
            n.next_power_of_two()
        } else {
            vrank & vrank.wrapping_neg()
        };
        let mut bit = 1u32;
        while bit < lowest && bit < n {
            let child_v = vrank | bit;
            if child_v != vrank && child_v < n {
                let child = (child_v + root) % n;
                self.try_send_raw(child, tag, payload.clone(), Transport::Collective)?;
            }
            bit <<= 1;
        }
        Ok(T::from_bytes(&payload)
            .unwrap_or_else(|e| panic!("rank {me} failed to decode bcast payload: {e}")))
    }

    /// All-reduce with a user operator. `op(a, b)` must be associative and
    /// commutative up to the equivalence the caller cares about. The
    /// reduction order is deterministic (operands are presented
    /// lower-aggregate-side first), so even an order-sensitive operator
    /// yields bit-identical results on every rank and across runs; in
    /// power-of-two worlds the order is exactly rank order.
    fn allreduce_impl<T, F>(
        &mut self,
        value: T,
        op: F,
        seq: u64,
        epoch: Option<u64>,
    ) -> Result<T, CommError>
    where
        T: Wire,
        F: Fn(T, T) -> T,
    {
        let n = self.size();
        if n == 1 {
            return Ok(value);
        }
        let me = self.rank();
        let p2 = if n.is_power_of_two() {
            n
        } else {
            n.next_power_of_two() / 2
        };
        let rem = n - p2;

        let mut acc = value;
        // Fold phase: ranks >= p2 hand their value to rank - p2.
        if me >= p2 {
            let tag = Self::coll_tag(seq, 0);
            self.try_send_raw(me - p2, tag, acc.to_bytes(), Transport::Collective)?;
            // Wait for the final result in the unfold phase.
            let tag = Self::coll_tag(seq, u32::MAX);
            let payload = self.try_recv_raw_guarded(me - p2, tag, Transport::Collective, epoch)?;
            return Ok(T::from_bytes(&payload)
                .unwrap_or_else(|e| panic!("rank {me} failed to decode allreduce result: {e}")));
        }
        if me < rem {
            let tag = Self::coll_tag(seq, 0);
            let payload = self.try_recv_raw_guarded(me + p2, tag, Transport::Collective, epoch)?;
            let other = T::from_bytes(&payload)
                .unwrap_or_else(|e| panic!("rank {me} failed to decode fold operand: {e}"));
            // Lower-rank operand first: acc belongs to me < me + p2.
            acc = op(acc, other);
        }
        // Recursive doubling among ranks 0..p2.
        let mut round = 1u32;
        let mut dist = 1u32;
        while dist < p2 {
            let partner = me ^ dist;
            let tag = Self::coll_tag(seq, round);
            self.try_send_raw(partner, tag, acc.to_bytes(), Transport::Collective)?;
            let payload = self.try_recv_raw_guarded(partner, tag, Transport::Collective, epoch)?;
            let other = T::from_bytes(&payload)
                .unwrap_or_else(|e| panic!("rank {me} failed to decode allreduce operand: {e}"));
            acc = if me < partner {
                op(acc, other)
            } else {
                op(other, acc)
            };
            round += 1;
            dist <<= 1;
        }
        // Unfold phase: hand the final value back to the folded ranks.
        if me < rem {
            let tag = Self::coll_tag(seq, u32::MAX);
            self.try_send_raw(me + p2, tag, acc.to_bytes(), Transport::Collective)?;
        }
        Ok(acc)
    }

    /// Reduce to `root`; non-root ranks get `None`.
    pub fn reduce<T, F>(&mut self, root: Rank, value: T, op: F) -> Option<T>
    where
        T: Wire,
        F: Fn(T, T) -> T,
    {
        self.try_reduce(root, value, op)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Comm::reduce`].
    pub fn try_reduce<T, F>(&mut self, root: Rank, value: T, op: F) -> Result<Option<T>, CommError>
    where
        T: Wire,
        F: Fn(T, T) -> T,
    {
        // Implemented over allreduce: at the message sizes this library
        // moves (fingerprint sets), allreduce ≈ reduce + bcast anyway, and
        // the paper itself reasons in terms of an optimized ALLREDUCE.
        self.enter_phase("coll_reduce");
        let seq = self.next_op();
        let out = self
            .coll_entry_guard()
            .and_then(|epoch| self.allreduce_impl(value, op, seq, epoch));
        self.exit_phase("coll_reduce");
        let result = out?;
        Ok((self.rank() == root).then_some(result))
    }

    /// Gather one value per rank at `root` (rank order). Non-roots get `None`.
    fn gather_impl<T: Wire>(
        &mut self,
        root: Rank,
        value: T,
        seq: u64,
        epoch: Option<u64>,
    ) -> Result<Option<Vec<T>>, CommError> {
        let n = self.size();
        let me = self.rank();
        assert!(root < n, "gather root {root} out of range for world of {n}");
        let tag = Self::coll_tag(seq, 0);
        if me == root {
            let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
            out[me as usize] = Some(value);
            for src in 0..n {
                if src == me {
                    continue;
                }
                let payload = self.try_recv_raw_guarded(src, tag, Transport::Collective, epoch)?;
                out[src as usize] = Some(T::from_bytes(&payload).unwrap_or_else(|e| {
                    panic!("rank {me} failed to decode gather item from {src}: {e}")
                }));
            }
            Ok(Some(
                out.into_iter()
                    .map(|v| v.expect("all slots filled"))
                    .collect(),
            ))
        } else {
            self.try_send_raw(root, tag, value.to_bytes(), Transport::Collective)?;
            Ok(None)
        }
    }

    /// All-gather: every rank contributes one value and receives the full
    /// rank-ordered vector. Ring algorithm: N-1 steps, each rank forwards
    /// the block it received in the previous step.
    fn allgather_impl<T: Wire>(
        &mut self,
        value: T,
        seq: u64,
        epoch: Option<u64>,
    ) -> Result<Vec<T>, CommError> {
        let n = self.size();
        let me = self.rank();
        let group: Vec<Rank> = (0..n).collect();
        self.ring_allgather(&group, me, seq, value.to_bytes(), epoch)
            .map(|blocks| Self::decode_blocks(me, blocks))
    }

    /// All-gather over the positions of `group`, group-ordered result.
    fn allgather_group_impl<T: Wire>(
        &mut self,
        group: &[Rank],
        value: T,
        seq: u64,
        epoch: Option<u64>,
    ) -> Result<Vec<T>, CommError> {
        let me = self.rank();
        assert!(
            group.contains(&me),
            "rank {me} called a group collective it is not part of"
        );
        self.ring_allgather(group, me, seq, value.to_bytes(), epoch)
            .map(|blocks| Self::decode_blocks(me, blocks))
    }

    /// Ring all-gather over `group` positions; returns one raw block per
    /// group member, in group order.
    fn ring_allgather(
        &mut self,
        group: &[Rank],
        me: Rank,
        seq: u64,
        mine: Bytes,
        epoch: Option<u64>,
    ) -> Result<Vec<Bytes>, CommError> {
        let n = group.len() as u32;
        let pos = group
            .iter()
            .position(|&r| r == me)
            .expect("caller checked membership") as u32;
        let mut blocks: Vec<Option<Bytes>> = (0..n).map(|_| None).collect();
        blocks[pos as usize] = Some(mine);
        let right = group[((pos + 1) % n) as usize];
        let left = group[((pos + n.max(1) - 1) % n) as usize];
        for step in 0..n.saturating_sub(1) {
            let tag = Self::coll_tag(seq, step);
            // Forward the block that originated at position (pos - step).
            let origin_out = ((pos + n - step) % n) as usize;
            let payload = blocks[origin_out]
                .clone()
                .expect("block to forward is present by induction");
            self.try_send_raw(right, tag, payload, Transport::Collective)?;
            let origin_in = ((pos + n - step - 1) % n) as usize;
            let incoming = self.try_recv_raw_guarded(left, tag, Transport::Collective, epoch)?;
            blocks[origin_in] = Some(incoming);
        }
        Ok(blocks
            .into_iter()
            .map(|b| b.expect("ring completed: every block present"))
            .collect())
    }

    fn decode_blocks<T: Wire>(me: Rank, blocks: Vec<Bytes>) -> Vec<T> {
        blocks
            .into_iter()
            .enumerate()
            .map(|(i, bytes)| {
                T::from_bytes(&bytes).unwrap_or_else(|e| {
                    panic!("rank {me} failed to decode allgather block {i}: {e}")
                })
            })
            .collect()
    }

    /// Personalized all-to-all of raw buffers: `sends[d]` goes to rank `d`;
    /// returns the buffer received from each rank. `sends.len()` must equal
    /// the world size; `sends[me]` is returned as-is (self copy, no traffic).
    fn alltoallv_impl(
        &mut self,
        mut sends: Vec<Bytes>,
        seq: u64,
        epoch: Option<u64>,
    ) -> Result<Vec<Bytes>, CommError> {
        let n = self.size();
        let me = self.rank();
        assert_eq!(
            sends.len(),
            n as usize,
            "alltoallv needs one buffer per rank"
        );
        let mut recvs: Vec<Bytes> = (0..n).map(|_| Bytes::new()).collect();
        recvs[me as usize] = std::mem::take(&mut sends[me as usize]);
        // Rotation schedule: at step s every rank sends to (r + s) mod N and
        // receives from (r - s) mod N, so no destination is hit by two
        // senders in the same step (no head-of-line blocking).
        for step in 1..n {
            let dst = (me + step) % n;
            let src = (me + n - step) % n;
            let tag = Self::coll_tag(seq, step);
            self.try_send_raw(
                dst,
                tag,
                std::mem::take(&mut sends[dst as usize]),
                Transport::Collective,
            )?;
            recvs[src as usize] =
                self.try_recv_raw_guarded(src, tag, Transport::Collective, epoch)?;
        }
        Ok(recvs)
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::WorldConfig;
    use crate::fault::{CommError, FaultPlan, FaultTrigger};
    use std::time::Duration;

    #[test]
    fn barrier_all_sizes() {
        for n in [1u32, 2, 3, 4, 7, 8, 13] {
            let out = WorldConfig::default()
                .launch(n, |comm| {
                    for _ in 0..3 {
                        comm.barrier();
                    }
                    comm.rank()
                })
                .expect_all();
            assert_eq!(out.results.len(), n as usize);
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for n in [1u32, 2, 3, 5, 8] {
            for root in 0..n {
                let out = WorldConfig::default()
                    .launch(n, move |comm| {
                        let v = (comm.rank() == root).then(|| vec![root, 42u32]);
                        comm.bcast(root, v)
                    })
                    .expect_all();
                for r in out.results {
                    assert_eq!(r, vec![root, 42]);
                }
            }
        }
    }

    #[test]
    fn allreduce_sum_matches_closed_form() {
        for n in [1u32, 2, 3, 4, 5, 6, 7, 8, 12, 17] {
            let out = WorldConfig::default()
                .launch(n, |comm| {
                    comm.allreduce(u64::from(comm.rank()) + 1, |a, b| a + b)
                })
                .expect_all();
            let expect = u64::from(n) * (u64::from(n) + 1) / 2;
            for r in out.results {
                assert_eq!(r, expect, "n={n}");
            }
        }
    }

    #[test]
    fn allreduce_noncommutative_is_deterministic_and_complete() {
        // Concatenation: every rank must see the identical merge order and
        // the result must contain each contribution exactly once. In
        // power-of-two worlds the order is additionally rank order.
        for n in [2u32, 3, 5, 8, 11, 16] {
            let out = WorldConfig::default()
                .launch(n, |comm| {
                    comm.allreduce(vec![comm.rank()], |mut a, b| {
                        a.extend(b);
                        a
                    })
                })
                .expect_all();
            let first = out.results[0].clone();
            for r in &out.results {
                assert_eq!(*r, first, "n={n}: ranks disagree on merge order");
            }
            let mut sorted = first.clone();
            sorted.sort_unstable();
            assert_eq!(
                sorted,
                (0..n).collect::<Vec<_>>(),
                "n={n}: missing contributions"
            );
            if n.is_power_of_two() {
                assert_eq!(first, (0..n).collect::<Vec<_>>(), "n={n}: not rank ordered");
            }
        }
    }

    #[test]
    fn allreduce_max() {
        let out = WorldConfig::default()
            .launch(6, |comm| comm.allreduce(comm.rank(), |a, b| a.max(b)))
            .expect_all();
        assert!(out.results.iter().all(|&r| r == 5));
    }

    #[test]
    fn reduce_only_root_gets_result() {
        let out = WorldConfig::default()
            .launch(5, |comm| comm.reduce(2, 1u64, |a, b| a + b))
            .expect_all();
        for (rank, r) in out.results.iter().enumerate() {
            if rank == 2 {
                assert_eq!(*r, Some(5));
            } else {
                assert_eq!(*r, None);
            }
        }
    }

    #[test]
    fn gather_is_rank_ordered() {
        let out = WorldConfig::default()
            .launch(6, |comm| comm.gather(0, comm.rank() * comm.rank()))
            .expect_all();
        assert_eq!(out.results[0], Some(vec![0, 1, 4, 9, 16, 25]));
        assert!(out.results[1..].iter().all(Option::is_none));
    }

    #[test]
    fn allgather_all_sizes() {
        for n in [1u32, 2, 3, 4, 7, 9, 16] {
            let out = WorldConfig::default()
                .launch(n, |comm| comm.allgather(u64::from(comm.rank()) * 3))
                .expect_all();
            let expect: Vec<u64> = (0..u64::from(n)).map(|r| r * 3).collect();
            for r in out.results {
                assert_eq!(r, expect, "n={n}");
            }
        }
    }

    #[test]
    fn allgather_heterogeneous_payload_sizes() {
        let out = WorldConfig::default()
            .launch(4, |comm| {
                let v: Vec<u8> = vec![comm.rank() as u8; comm.rank() as usize * 3];
                comm.allgather(v)
            })
            .expect_all();
        for r in out.results {
            assert_eq!(r.len(), 4);
            for (i, v) in r.iter().enumerate() {
                assert_eq!(v.len(), i * 3);
                assert!(v.iter().all(|&b| b == i as u8));
            }
        }
    }

    #[test]
    fn alltoallv_exchanges_personalized_buffers() {
        let out = WorldConfig::default()
            .launch(4, |comm| {
                let me = comm.rank() as u8;
                let sends: Vec<bytes::Bytes> = (0..4u8)
                    .map(|d| bytes::Bytes::from(vec![me * 16 + d; usize::from(d) + 1]))
                    .collect();
                comm.alltoallv(sends)
                    .iter()
                    .map(|b| b.to_vec())
                    .collect::<Vec<_>>()
            })
            .expect_all();
        for (me, recvs) in out.results.iter().enumerate() {
            for (src, buf) in recvs.iter().enumerate() {
                assert_eq!(buf.len(), me + 1, "rank {me} from {src}");
                assert!(buf.iter().all(|&b| b == (src * 16 + me) as u8));
            }
        }
    }

    #[test]
    fn collectives_compose_in_sequence() {
        // Back-to-back collectives must not steal each other's messages.
        let out = WorldConfig::default()
            .launch(5, |comm| {
                let sum = comm.allreduce(1u64, |a, b| a + b);
                comm.barrier();
                let all = comm.allgather(comm.rank());
                let b = comm.bcast(3, (comm.rank() == 3).then_some(sum));
                (sum, all.len() as u64, b)
            })
            .expect_all();
        for r in out.results {
            assert_eq!(r, (5, 5, 5));
        }
    }

    #[test]
    fn traffic_conservation_across_collectives() {
        let out = WorldConfig::default()
            .launch(7, |comm| {
                comm.allreduce(vec![comm.rank(); 10], |a, _| a);
                comm.allgather(comm.rank());
                comm.barrier();
            })
            .expect_all();
        assert_eq!(out.traffic.total_sent(), out.traffic.total_recv());
    }

    #[test]
    fn allreduce_large_world() {
        let out = WorldConfig::default()
            .launch(64, |comm| comm.allreduce(1u64, |a, b| a + b))
            .expect_all();
        assert!(out.results.iter().all(|&r| r == 64));
    }

    fn fault_config(plan: FaultPlan) -> WorldConfig {
        WorldConfig::default()
            .with_recv_timeout(Duration::from_secs(2))
            .with_faults(plan)
    }

    #[test]
    fn collectives_fail_typed_when_a_rank_dies_mid_operation() {
        // Rank 2 dies at the start of the collective; every survivor gets
        // a RankFailed error instead of hanging or panicking.
        let plan = FaultPlan::new(11).crash(2, FaultTrigger::PhaseStart("coll_allreduce".into()));
        let out = fault_config(plan).launch(5, |comm| comm.try_allreduce(1u64, |a, b| a + b));
        assert_eq!(out.crashed_ranks(), vec![2]);
        for (rank, o) in out.outcomes.iter().enumerate() {
            if rank == 2 {
                continue;
            }
            assert_eq!(
                o.as_completed(),
                Some(&Err(CommError::RankFailed { rank: 2 })),
                "rank {rank}"
            );
        }
    }

    #[test]
    fn next_collective_entry_fails_after_divergence() {
        // Rank 1 dies between two barriers: whatever each survivor saw of
        // the first barrier, all of them must fail the second at entry.
        let plan = FaultPlan::new(12).crash(1, FaultTrigger::PhaseEnd("coll_barrier".into()));
        let out = fault_config(plan).launch(4, |comm| {
            let first = comm.try_barrier();
            let second = comm.try_barrier();
            (first, second)
        });
        assert_eq!(out.crashed_ranks(), vec![1]);
        for (rank, o) in out.outcomes.iter().enumerate() {
            if rank == 1 {
                continue;
            }
            let (_, second) = o.as_completed().unwrap();
            assert_eq!(
                *second,
                Err(CommError::RankFailed { rank: 1 }),
                "rank {rank}"
            );
        }
    }

    #[test]
    fn group_collectives_run_among_survivors() {
        let plan = FaultPlan::new(13).crash(2, FaultTrigger::PhaseStart("coll_barrier".into()));
        let out = fault_config(plan).launch(5, |comm| {
            let _ = comm.try_barrier();
            let group = comm.live_ranks();
            comm.try_barrier_group(&group)?;
            comm.try_allgather_group(&group, comm.rank() * 10)
        });
        assert_eq!(out.crashed_ranks(), vec![2]);
        for (rank, o) in out.outcomes.iter().enumerate() {
            if rank == 2 {
                continue;
            }
            assert_eq!(
                o.as_completed().unwrap(),
                &Ok(vec![0, 10, 30, 40]),
                "rank {rank}"
            );
        }
    }
}
