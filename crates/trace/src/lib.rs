//! Phase-level observability for the replidedup pipeline.
//!
//! The paper's evaluation (Section V) reasons about *where time goes inside
//! one `DUMP_OUTPUT`* — local dedup vs. the `ALLREDUCE(HMERGE)` reduction
//! vs. the one-sided exchange vs. local commit. The byte counters in
//! `replidedup-mpi::stats` answer "how much moved"; this crate answers
//! "how long each phase took, on every rank".
//!
//! Design constraints, in order:
//!
//! 1. **Free when off.** The default [`Tracer`] is a no-op sink: one branch
//!    on a discriminant, no allocation, no timestamps. Hot paths stay hot.
//! 2. **Lock-free when on.** Each rank owns its [`Tracer`] outright (it
//!    lives inside the rank's `Comm`), so recording is a plain `Vec::push`
//!    — no atomics, no mutexes, no channels.
//! 3. **Deterministic output.** Exporters order phases by first appearance
//!    on rank 0, so two runs of the same program produce byte-identical
//!    schemas (timestamps aside) and diffs stay readable.
//!
//! The model is a per-rank stream of [`Event`]s: span enter/exit pairs with
//! monotonic nanosecond timestamps (spans nest), named `u64` counters, and
//! named byte gauges. After a world run, per-rank streams are collected
//! into a [`WorldTrace`], which aggregates per-phase inclusive time across
//! ranks (min / median / max / sum) and exports JSON or CSV.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// What one trace event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span (phase) began.
    Enter,
    /// The innermost open span ended.
    Exit,
    /// A named `u64` counter incremented by this amount.
    Counter(u64),
    /// A named byte quantity observed at this instant.
    GaugeBytes(u64),
}

/// One recorded event on one rank.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Static phase/counter name (`local_dedup`, `exchange`, ...).
    pub name: &'static str,
    /// Nanoseconds since this rank's tracer was created (monotonic).
    pub t_ns: u64,
    /// Span nesting depth at the time of the event (0 = top level).
    pub depth: u16,
    /// Payload.
    pub kind: EventKind,
}

#[derive(Debug)]
struct Buf {
    epoch: Instant,
    events: Vec<Event>,
    stack: Vec<&'static str>,
}

/// Per-rank recorder. Disabled by default; when disabled every call is a
/// single branch and performs no allocation.
#[derive(Debug, Default)]
pub struct Tracer {
    inner: Option<Box<Buf>>,
}

impl Tracer {
    /// The no-op sink: records nothing, costs one branch per call.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A recording tracer with its epoch at "now".
    pub fn enabled() -> Self {
        Self {
            inner: Some(Box::new(Buf {
                epoch: Instant::now(),
                events: Vec::with_capacity(256),
                stack: Vec::with_capacity(8),
            })),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Current span nesting depth (0 when no span is open, and always 0
    /// when disabled).
    pub fn depth(&self) -> usize {
        self.inner.as_ref().map_or(0, |b| b.stack.len())
    }

    /// Open a span named `name`. Spans nest; close with [`Tracer::exit`].
    #[inline]
    pub fn enter(&mut self, name: &'static str) {
        if let Some(buf) = &mut self.inner {
            let depth = buf.stack.len() as u16;
            let t_ns = buf.epoch.elapsed().as_nanos() as u64;
            buf.events.push(Event {
                name,
                t_ns,
                depth,
                kind: EventKind::Enter,
            });
            buf.stack.push(name);
        }
    }

    /// Close the innermost span, which must be named `name`.
    ///
    /// # Panics
    /// If no span is open or the innermost span has a different name —
    /// mismatched spans are instrumentation bugs, not runtime conditions.
    #[inline]
    pub fn exit(&mut self, name: &'static str) {
        if let Some(buf) = &mut self.inner {
            let top = buf
                .stack
                .pop()
                .unwrap_or_else(|| panic!("trace: exit(\"{name}\") with no open span"));
            assert_eq!(
                top, name,
                "trace: exit(\"{name}\") but the innermost open span is \"{top}\""
            );
            let depth = buf.stack.len() as u16;
            let t_ns = buf.epoch.elapsed().as_nanos() as u64;
            buf.events.push(Event {
                name,
                t_ns,
                depth,
                kind: EventKind::Exit,
            });
        }
    }

    /// Record `value` against the named counter.
    #[inline]
    pub fn counter(&mut self, name: &'static str, value: u64) {
        if let Some(buf) = &mut self.inner {
            let depth = buf.stack.len() as u16;
            let t_ns = buf.epoch.elapsed().as_nanos() as u64;
            buf.events.push(Event {
                name,
                t_ns,
                depth,
                kind: EventKind::Counter(value),
            });
        }
    }

    /// Record an observed byte quantity.
    #[inline]
    pub fn gauge_bytes(&mut self, name: &'static str, bytes: u64) {
        if let Some(buf) = &mut self.inner {
            let depth = buf.stack.len() as u16;
            let t_ns = buf.epoch.elapsed().as_nanos() as u64;
            buf.events.push(Event {
                name,
                t_ns,
                depth,
                kind: EventKind::GaugeBytes(bytes),
            });
        }
    }

    /// Close every open span, innermost first, stamping each with the
    /// current time. For abnormal unwinding (an injected rank crash, a
    /// dump aborting mid-phase): the event stream stays balanced so it can
    /// still be collected and aggregated.
    pub fn close_open_spans(&mut self) {
        if let Some(buf) = &mut self.inner {
            while let Some(name) = buf.stack.pop() {
                let depth = buf.stack.len() as u16;
                let t_ns = buf.epoch.elapsed().as_nanos() as u64;
                buf.events.push(Event {
                    name,
                    t_ns,
                    depth,
                    kind: EventKind::Exit,
                });
            }
        }
    }

    /// Drain the recorded events, leaving the tracer recording from an
    /// empty buffer. Returns `None` when disabled.
    ///
    /// # Panics
    /// If a span is still open — a leaked span is an instrumentation bug.
    pub fn take_events(&mut self) -> Option<Vec<Event>> {
        let buf = self.inner.as_mut()?;
        assert!(
            buf.stack.is_empty(),
            "trace: {} span(s) still open at collection (innermost \"{}\")",
            buf.stack.len(),
            buf.stack.last().unwrap()
        );
        Some(std::mem::take(&mut buf.events))
    }
}

/// The full event stream of one rank.
#[derive(Debug, Clone)]
pub struct RankTrace {
    /// Which rank recorded these events.
    pub rank: u32,
    /// Events in record order.
    pub events: Vec<Event>,
}

impl RankTrace {
    /// The span structure of this rank as `(name, is_enter)` pairs, in
    /// order, counters and gauges excluded. Two ranks executing the same
    /// collective program produce identical sequences.
    pub fn span_sequence(&self) -> Vec<(&'static str, bool)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Enter => Some((e.name, true)),
                EventKind::Exit => Some((e.name, false)),
                _ => None,
            })
            .collect()
    }

    /// Total inclusive nanoseconds per phase on this rank, keyed by name.
    /// Nested spans of the same name accumulate (each enter/exit pair
    /// contributes its own duration).
    fn phase_totals(&self) -> HashMap<&'static str, PhaseRankTotal> {
        let mut totals: HashMap<&'static str, PhaseRankTotal> = HashMap::new();
        let mut open: Vec<(&'static str, u64)> = Vec::new();
        for e in &self.events {
            match e.kind {
                EventKind::Enter => open.push((e.name, e.t_ns)),
                EventKind::Exit => {
                    let (name, start) = open.pop().expect("balanced span stream");
                    debug_assert_eq!(name, e.name);
                    let t = totals.entry(name).or_default();
                    t.ns += e.t_ns.saturating_sub(start);
                    t.spans += 1;
                }
                _ => {}
            }
        }
        totals
    }

    /// Summed counter values per name on this rank.
    fn counter_totals(&self) -> HashMap<&'static str, u64> {
        let mut totals: HashMap<&'static str, u64> = HashMap::new();
        for e in &self.events {
            if let EventKind::Counter(v) = e.kind {
                *totals.entry(e.name).or_default() += v;
            }
        }
        totals
    }

    /// Summed byte-gauge observations per name on this rank.
    fn gauge_totals(&self) -> HashMap<&'static str, u64> {
        let mut totals: HashMap<&'static str, u64> = HashMap::new();
        for e in &self.events {
            if let EventKind::GaugeBytes(v) = e.kind {
                *totals.entry(e.name).or_default() += v;
            }
        }
        totals
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct PhaseRankTotal {
    ns: u64,
    spans: u64,
}

/// Cross-rank aggregate for one phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseAgg {
    /// Phase name.
    pub name: &'static str,
    /// Total number of spans across all ranks.
    pub spans: u64,
    /// Minimum per-rank inclusive time (ns), over ranks that ran the phase.
    pub min_ns: u64,
    /// Median per-rank inclusive time (ns).
    pub median_ns: u64,
    /// Maximum per-rank inclusive time (ns).
    pub max_ns: u64,
    /// Sum of per-rank inclusive times (ns).
    pub sum_ns: u64,
}

/// Cross-rank aggregate for one counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterAgg {
    /// Counter name.
    pub name: &'static str,
    /// Minimum per-rank total.
    pub min: u64,
    /// Median per-rank total.
    pub median: u64,
    /// Maximum per-rank total.
    pub max: u64,
    /// Sum over all ranks.
    pub sum: u64,
}

/// All ranks' traces from one world run.
#[derive(Debug, Clone, Default)]
pub struct WorldTrace {
    /// Per-rank traces, indexed by rank.
    pub ranks: Vec<RankTrace>,
}

impl WorldTrace {
    /// Build from per-rank event streams (index = rank).
    pub fn from_rank_events(streams: Vec<Vec<Event>>) -> Self {
        Self {
            ranks: streams
                .into_iter()
                .enumerate()
                .map(|(rank, events)| RankTrace {
                    rank: rank as u32,
                    events,
                })
                .collect(),
        }
    }

    /// Phase aggregates in deterministic order: first appearance on rank 0,
    /// then names that only later ranks saw, in rank order.
    pub fn aggregate(&self) -> Vec<PhaseAgg> {
        let order = self.name_order(|e| matches!(e.kind, EventKind::Enter));
        let per_rank: Vec<HashMap<&'static str, PhaseRankTotal>> =
            self.ranks.iter().map(|r| r.phase_totals()).collect();
        order
            .into_iter()
            .map(|name| {
                let mut totals: Vec<PhaseRankTotal> = per_rank
                    .iter()
                    .filter_map(|m| m.get(name))
                    .copied()
                    .collect();
                totals.sort_by_key(|t| t.ns);
                let ns: Vec<u64> = totals.iter().map(|t| t.ns).collect();
                PhaseAgg {
                    name,
                    spans: totals.iter().map(|t| t.spans).sum(),
                    min_ns: ns.first().copied().unwrap_or(0),
                    median_ns: median(&ns),
                    max_ns: ns.last().copied().unwrap_or(0),
                    sum_ns: ns.iter().sum(),
                }
            })
            .collect()
    }

    /// Counter aggregates, same deterministic ordering rule as phases.
    pub fn aggregate_counters(&self) -> Vec<CounterAgg> {
        let order = self.name_order(|e| matches!(e.kind, EventKind::Counter(_)));
        let per_rank: Vec<HashMap<&'static str, u64>> =
            self.ranks.iter().map(|r| r.counter_totals()).collect();
        Self::aggregate_values(order, &per_rank)
    }

    /// Byte-gauge aggregates, same deterministic ordering rule as phases.
    /// Per rank, repeated observations of the same gauge sum (e.g. bytes
    /// pushed per dump accumulate across dumps).
    pub fn aggregate_gauges(&self) -> Vec<CounterAgg> {
        let order = self.name_order(|e| matches!(e.kind, EventKind::GaugeBytes(_)));
        let per_rank: Vec<HashMap<&'static str, u64>> =
            self.ranks.iter().map(|r| r.gauge_totals()).collect();
        Self::aggregate_values(order, &per_rank)
    }

    fn aggregate_values(
        order: Vec<&'static str>,
        per_rank: &[HashMap<&'static str, u64>],
    ) -> Vec<CounterAgg> {
        order
            .into_iter()
            .map(|name| {
                let mut vals: Vec<u64> = per_rank
                    .iter()
                    .filter_map(|m| m.get(name))
                    .copied()
                    .collect();
                vals.sort_unstable();
                CounterAgg {
                    name,
                    min: vals.first().copied().unwrap_or(0),
                    median: median(&vals),
                    max: vals.last().copied().unwrap_or(0),
                    sum: vals.iter().sum(),
                }
            })
            .collect()
    }

    fn name_order(&self, select: impl Fn(&Event) -> bool) -> Vec<&'static str> {
        let mut seen = Vec::new();
        for rank in &self.ranks {
            for e in &rank.events {
                if select(e) && !seen.contains(&e.name) {
                    seen.push(e.name);
                }
            }
        }
        seen
    }

    /// JSON export of the world-level aggregate. Deterministic field and
    /// phase order; hand-rolled writer (no serde in the workspace).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"ranks\": ");
        let _ = write!(out, "{}", self.ranks.len());
        out.push_str(",\n  \"phases\": [");
        for (i, p) in self.aggregate().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"spans\": {}, \"ns\": {{\"min\": {}, \"median\": {}, \"max\": {}, \"sum\": {}}}}}",
                p.name, p.spans, p.min_ns, p.median_ns, p.max_ns, p.sum_ns
            );
        }
        out.push_str("\n  ],\n  \"counters\": [");
        Self::write_json_values(&mut out, &self.aggregate_counters());
        out.push_str("\n  ],\n  \"gauges\": [");
        Self::write_json_values(&mut out, &self.aggregate_gauges());
        out.push_str("\n  ]\n}\n");
        out
    }

    fn write_json_values(out: &mut String, aggs: &[CounterAgg]) {
        for (i, c) in aggs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"min\": {}, \"median\": {}, \"max\": {}, \"sum\": {}}}",
                c.name, c.min, c.median, c.max, c.sum
            );
        }
    }

    /// CSV export: one row per phase, then one per counter.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("kind,name,spans,min,median,max,sum\n");
        for p in self.aggregate() {
            let _ = writeln!(
                out,
                "phase,{},{},{},{},{},{}",
                p.name, p.spans, p.min_ns, p.median_ns, p.max_ns, p.sum_ns
            );
        }
        for c in self.aggregate_counters() {
            let _ = writeln!(
                out,
                "counter,{},,{},{},{},{}",
                c.name, c.min, c.median, c.max, c.sum
            );
        }
        for g in self.aggregate_gauges() {
            let _ = writeln!(
                out,
                "gauge,{},,{},{},{},{}",
                g.name, g.min, g.median, g.max, g.sum
            );
        }
        out
    }
}

fn median(sorted: &[u64]) -> u64 {
    match sorted.len() {
        0 => 0,
        n if n % 2 == 1 => sorted[n / 2],
        n => (sorted[n / 2 - 1] + sorted[n / 2]) / 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced(f: impl FnOnce(&mut Tracer)) -> Vec<Event> {
        let mut t = Tracer::enabled();
        f(&mut t);
        t.take_events().unwrap()
    }

    #[test]
    fn disabled_records_nothing_and_never_allocates() {
        let mut t = Tracer::disabled();
        t.enter("a");
        t.counter("c", 7);
        t.gauge_bytes("g", 8);
        t.exit("a");
        assert!(!t.is_enabled());
        assert_eq!(t.depth(), 0);
        assert!(t.take_events().is_none());
    }

    #[test]
    fn spans_nest_with_monotonic_timestamps() {
        let ev = traced(|t| {
            t.enter("outer");
            t.enter("inner");
            t.exit("inner");
            t.exit("outer");
        });
        assert_eq!(ev.len(), 4);
        assert_eq!(ev[0].depth, 0);
        assert_eq!(ev[1].depth, 1);
        assert!(ev.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        assert_eq!(ev[1].kind, EventKind::Enter);
        assert_eq!(ev[2].kind, EventKind::Exit);
    }

    #[test]
    #[should_panic(expected = "innermost open span")]
    fn mismatched_exit_panics() {
        let mut t = Tracer::enabled();
        t.enter("a");
        t.exit("b");
    }

    #[test]
    #[should_panic(expected = "still open")]
    fn leaked_span_detected_at_collection() {
        let mut t = Tracer::enabled();
        t.enter("a");
        let _ = t.take_events();
    }

    #[test]
    fn close_open_spans_balances_an_unwound_stack() {
        let mut t = Tracer::enabled();
        t.enter("dump");
        t.enter("exchange");
        t.close_open_spans();
        let ev = t.take_events().unwrap();
        let seq: Vec<_> = ev.iter().map(|e| (e.name, e.kind)).collect();
        assert_eq!(
            seq,
            vec![
                ("dump", EventKind::Enter),
                ("exchange", EventKind::Enter),
                ("exchange", EventKind::Exit),
                ("dump", EventKind::Exit),
            ]
        );
        assert_eq!(ev[2].depth, 1);
        assert_eq!(ev[3].depth, 0);
        // A balanced-but-empty tracer is a no-op.
        t.close_open_spans();
        assert_eq!(t.take_events().unwrap().len(), 0);
    }

    #[test]
    fn take_events_resets_for_next_dump() {
        let mut t = Tracer::enabled();
        t.enter("a");
        t.exit("a");
        assert_eq!(t.take_events().unwrap().len(), 2);
        assert_eq!(t.take_events().unwrap().len(), 0);
        t.counter("x", 1);
        assert_eq!(t.take_events().unwrap().len(), 1);
    }

    fn world_of(streams: Vec<Vec<Event>>) -> WorldTrace {
        WorldTrace::from_rank_events(streams)
    }

    fn span(name: &'static str, enter_ns: u64, exit_ns: u64) -> Vec<Event> {
        vec![
            Event {
                name,
                t_ns: enter_ns,
                depth: 0,
                kind: EventKind::Enter,
            },
            Event {
                name,
                t_ns: exit_ns,
                depth: 0,
                kind: EventKind::Exit,
            },
        ]
    }

    #[test]
    fn aggregate_min_median_max_sum() {
        // Three ranks spend 10/20/40 ns in "x".
        let w = world_of(vec![span("x", 0, 10), span("x", 0, 20), span("x", 0, 40)]);
        let agg = w.aggregate();
        assert_eq!(agg.len(), 1);
        let x = &agg[0];
        assert_eq!(
            (x.min_ns, x.median_ns, x.max_ns, x.sum_ns, x.spans),
            (10, 20, 40, 70, 3)
        );
    }

    #[test]
    fn aggregate_order_is_rank0_first_appearance() {
        let mut r0 = span("b", 0, 1);
        r0.extend(span("a", 2, 3));
        let mut r1 = span("a", 0, 1);
        r1.extend(span("c", 2, 3));
        let w = world_of(vec![r0, r1]);
        let names: Vec<_> = w.aggregate().iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["b", "a", "c"]);
    }

    #[test]
    fn counters_aggregate() {
        let mk = |v| {
            vec![Event {
                name: "put_bytes",
                t_ns: 0,
                depth: 0,
                kind: EventKind::Counter(v),
            }]
        };
        let w = world_of(vec![mk(5), mk(1), mk(3)]);
        let agg = w.aggregate_counters();
        assert_eq!(agg.len(), 1);
        assert_eq!(
            (agg[0].min, agg[0].median, agg[0].max, agg[0].sum),
            (1, 3, 5, 9)
        );
    }

    #[test]
    fn gauges_aggregate_separately_from_counters() {
        let mk = |kind| {
            vec![Event {
                name: "bytes",
                t_ns: 0,
                depth: 0,
                kind,
            }]
        };
        let w = world_of(vec![
            mk(EventKind::GaugeBytes(4)),
            mk(EventKind::GaugeBytes(6)),
            mk(EventKind::Counter(100)),
        ]);
        let gauges = w.aggregate_gauges();
        assert_eq!(gauges.len(), 1);
        assert_eq!((gauges[0].min, gauges[0].max, gauges[0].sum), (4, 6, 10));
        // The counter with the same name stays in the counter table.
        assert_eq!(w.aggregate_counters()[0].sum, 100);
        assert!(w.to_json().contains("\"gauges\": ["));
        assert!(w.to_csv().contains("gauge,bytes,,4,5,6,10\n"));
    }

    #[test]
    fn json_and_csv_shapes() {
        let w = world_of(vec![span("local_dedup", 0, 5)]);
        let json = w.to_json();
        assert!(json.contains("\"ranks\": 1"));
        assert!(json.contains("\"name\": \"local_dedup\""));
        assert!(json.contains("\"median\": 5"));
        let csv = w.to_csv();
        assert!(csv.starts_with("kind,name,spans,min,median,max,sum\n"));
        assert!(csv.contains("phase,local_dedup,1,5,5,5,5\n"));
    }

    #[test]
    fn nested_same_name_spans_accumulate() {
        let ev = vec![
            Event {
                name: "p",
                t_ns: 0,
                depth: 0,
                kind: EventKind::Enter,
            },
            Event {
                name: "p",
                t_ns: 1,
                depth: 1,
                kind: EventKind::Enter,
            },
            Event {
                name: "p",
                t_ns: 3,
                depth: 1,
                kind: EventKind::Exit,
            },
            Event {
                name: "p",
                t_ns: 10,
                depth: 0,
                kind: EventKind::Exit,
            },
        ];
        let w = world_of(vec![ev]);
        // inner 2ns + outer 10ns.
        assert_eq!(w.aggregate()[0].sum_ns, 12);
        assert_eq!(w.aggregate()[0].spans, 2);
    }

    #[test]
    fn span_sequence_filters_counters() {
        let ev = traced(|t| {
            t.enter("a");
            t.counter("c", 1);
            t.exit("a");
        });
        let r = RankTrace {
            rank: 0,
            events: ev,
        };
        assert_eq!(r.span_sequence(), vec![("a", true), ("a", false)]);
    }
}
