//! Erasure-coded shards at rest.
//!
//! A *stripe* is one payload — a dedup chunk or a `no-dedup` blob —
//! encoded into `k` data + `m` parity shards spread over distinct nodes
//! (see `replidedup-ec`). Each shard is stored self-describing: the
//! [`ShardMeta`] carried next to the bytes records the stripe geometry and
//! the shard's role, so reconstruction needs no manifest lookup — any `k`
//! surviving shards of a stripe are enough to rebuild the payload, and the
//! shard store can be scrubbed for parity consistency on its own.

use replidedup_hash::Fingerprint;
use replidedup_mpi::wire::{Wire, WireError, WireResult};

use crate::manifest::DumpId;

/// Identity of a stripe: what payload its shards reassemble into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StripeKey {
    /// A content-addressed dedup chunk (the dedup strategies).
    Chunk(Fingerprint),
    /// A rank's raw dump blob (the `no-dedup` baseline).
    Blob {
        /// Rank whose buffer the blob holds.
        owner: u32,
        /// Dump generation.
        dump_id: DumpId,
    },
}

impl StripeKey {
    /// Deterministic placement seed: every rank derives the same shard
    /// rotation for the same stripe, with no negotiation (chunk stripes
    /// rotate by the hash-distributed fingerprint, blob stripes by a
    /// mixed `(owner, dump)` pair).
    pub fn seed(&self) -> u64 {
        match self {
            StripeKey::Chunk(fp) => fp.prefix64(),
            StripeKey::Blob { owner, dump_id } => u64::from(*owner)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(*dump_id),
        }
    }
}

impl Wire for StripeKey {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            StripeKey::Chunk(fp) => {
                buf.push(0);
                fp.encode(buf);
            }
            StripeKey::Blob { owner, dump_id } => {
                buf.push(1);
                owner.encode(buf);
                dump_id.encode(buf);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        match u8::decode(input)? {
            0 => Ok(StripeKey::Chunk(Fingerprint::decode(input)?)),
            1 => Ok(StripeKey::Blob {
                owner: u32::decode(input)?,
                dump_id: u64::decode(input)?,
            }),
            _ => Err(WireError::Malformed { what: "StripeKey" }),
        }
    }
}

/// Geometry and role of one stored shard. `index < k` is a data shard
/// (a contiguous slice of the payload), `index >= k` is parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMeta {
    /// Data shards in the stripe.
    pub k: u8,
    /// Parity shards in the stripe.
    pub m: u8,
    /// This shard's position, `0 .. k + m`.
    pub index: u8,
    /// Byte length of the whole original payload (needed to trim the
    /// zero-padded tail after decode).
    pub total_len: u64,
}

impl ShardMeta {
    /// Is this a parity shard?
    pub fn is_parity(&self) -> bool {
        self.index >= self.k
    }
}

impl Wire for ShardMeta {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.k.encode(buf);
        self.m.encode(buf);
        self.index.encode(buf);
        self.total_len.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        let meta = ShardMeta {
            k: u8::decode(input)?,
            m: u8::decode(input)?,
            index: u8::decode(input)?,
            total_len: u64::decode(input)?,
        };
        if meta.k == 0 || meta.m == 0 || meta.index >= meta.k.saturating_add(meta.m) {
            return Err(WireError::Malformed { what: "ShardMeta" });
        }
        Ok(meta)
    }
}

/// One shard at rest: self-describing metadata plus the shard bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredShard {
    /// Stripe geometry and this shard's role in it.
    pub meta: ShardMeta,
    /// The shard payload (a zero-copy slice of the original buffer for
    /// data shards; computed parity bytes otherwise).
    pub data: bytes::Bytes,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_key_seed_is_deterministic_and_spread() {
        let a = StripeKey::Chunk(Fingerprint::synthetic(1));
        let b = StripeKey::Chunk(Fingerprint::synthetic(2));
        assert_eq!(a.seed(), a.seed());
        assert_ne!(a.seed(), b.seed());
        let c = StripeKey::Blob {
            owner: 1,
            dump_id: 5,
        };
        let d = StripeKey::Blob {
            owner: 2,
            dump_id: 5,
        };
        assert_ne!(c.seed(), d.seed());
    }

    #[test]
    fn stripe_key_wire_roundtrip() {
        for key in [
            StripeKey::Chunk(Fingerprint::synthetic(42)),
            StripeKey::Blob {
                owner: 7,
                dump_id: 3,
            },
        ] {
            assert_eq!(StripeKey::from_bytes(&key.to_bytes()).unwrap(), key);
        }
        assert!(matches!(
            StripeKey::from_bytes(&[9]),
            Err(WireError::Malformed { what: "StripeKey" })
        ));
    }

    #[test]
    fn shard_meta_wire_roundtrip_and_validation() {
        let meta = ShardMeta {
            k: 4,
            m: 2,
            index: 5,
            total_len: 1000,
        };
        assert_eq!(ShardMeta::from_bytes(&meta.to_bytes()).unwrap(), meta);
        assert!(meta.is_parity());
        assert!(!ShardMeta { index: 3, ..meta }.is_parity());
        // index out of the stripe, or degenerate geometry: malformed.
        for bad in [
            ShardMeta { index: 6, ..meta },
            ShardMeta { k: 0, ..meta },
            ShardMeta {
                m: 0,
                index: 1,
                ..meta
            },
        ] {
            let mut buf = Vec::new();
            bad.k.encode(&mut buf);
            bad.m.encode(&mut buf);
            bad.index.encode(&mut buf);
            bad.total_len.encode(&mut buf);
            assert!(matches!(
                ShardMeta::from_bytes(&buf),
                Err(WireError::Malformed { what: "ShardMeta" })
            ));
        }
    }
}
