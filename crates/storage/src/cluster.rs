//! Simulated cluster of compute nodes with local storage.
//!
//! The paper's testbed is 34 nodes with one HDD each and 12 ranks per node.
//! This module models that topology: a [`Cluster`] owns one
//! [`NodeState`] per node (chunk store + manifest directory + liveness),
//! and a [`Placement`] maps ranks to nodes. Node failures wipe the local
//! device — exactly the fault the paper replicates against ("local storage
//! devices are prone to failures and as such the data they hold is
//! volatile").
//!
//! Ranks (threads) share the cluster through `Arc<Cluster>`; per-node locks
//! keep access races out while still letting different nodes proceed in
//! parallel, mirroring per-device independence.

use std::collections::HashMap;
use std::fmt;

use bytes::Bytes;
use replidedup_hash::Fingerprint;
use std::sync::Mutex;

use crate::manifest::{DumpId, Manifest, ManifestError};
use crate::shard::{ShardMeta, StoredShard, StripeKey};
use crate::store::ChunkStore;

/// Node index within a cluster.
pub type NodeId = u32;

/// Identifies one live replication session against a cluster. Sessions
/// partition the dump-generation space: a scoped [`DumpId`] carries its
/// session in the high 16 bits ([`SessionId::scope`]), so two overlapping
/// sessions — two concurrent dumps, a heal racing a dump — can use the
/// same caller-visible generation numbers without colliding in manifests,
/// blobs, stripes, or GC. Session 0 is the default (unlabeled) session;
/// unscoped generations are exactly the historical behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SessionId(u16);

impl SessionId {
    /// The default (unlabeled) session.
    pub const DEFAULT: SessionId = SessionId(0);

    /// Bits of a [`DumpId`] left to the caller's generation counter.
    pub const GENERATION_BITS: u32 = 48;

    /// Raw numeric id (also the session's tag namespace on the wire).
    pub fn as_u16(self) -> u16 {
        self.0
    }

    /// Scope a caller-visible dump generation into this session's slice of
    /// the generation space. The default session scopes to the identity.
    pub fn scope(self, dump_id: DumpId) -> DumpId {
        debug_assert_eq!(
            dump_id >> Self::GENERATION_BITS,
            0,
            "dump id {dump_id:#x} already carries session bits"
        );
        (u64::from(self.0) << Self::GENERATION_BITS) | dump_id
    }

    /// The session a scoped generation belongs to.
    pub fn of(dump_id: DumpId) -> SessionId {
        SessionId((dump_id >> Self::GENERATION_BITS) as u16)
    }

    /// The caller-visible generation within its session.
    pub fn local_generation(dump_id: DumpId) -> DumpId {
        dump_id & ((1 << Self::GENERATION_BITS) - 1)
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Active-session registry of one cluster: label → id for every session
/// currently open. Ids are handed out monotonically and never reused, so a
/// generation scoped by a finished session can never be confused with a
/// later session's.
#[derive(Debug, Default)]
struct SessionRegistry {
    active: HashMap<String, SessionId>,
    last: u16,
}

/// Storage-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StorageError {
    /// The node's device is unavailable (node failed).
    NodeDown(NodeId),
    /// A referenced chunk is not present on the node.
    MissingChunk(Fingerprint),
    /// A requested manifest is not present on the node.
    MissingManifest {
        /// Rank whose manifest was requested.
        rank: u32,
        /// Dump generation requested.
        dump_id: DumpId,
    },
    /// A stored chunk's bytes no longer hash to its fingerprint key
    /// (bit-rot detected by the scrubber).
    CorruptChunk {
        /// The fingerprint whose bytes are wrong.
        fp: Fingerprint,
        /// The node holding the corrupt copy.
        node: NodeId,
    },
    /// A read failed transiently (injected via
    /// [`Cluster::inject_transient`]); retrying the same operation may
    /// succeed. Models recoverable device hiccups, as opposed to the
    /// permanent [`StorageError::NodeDown`].
    Transient {
        /// The node whose read hiccuped.
        node: NodeId,
    },
    /// A requested erasure-coded shard is not present on the node.
    MissingShard {
        /// The stripe whose shard was requested.
        key: StripeKey,
        /// Shard index within the stripe.
        index: u8,
    },
    /// Manifest ingest rejected an internally inconsistent recipe.
    InvalidManifest(ManifestError),
}

impl StorageError {
    /// Is this failure worth retrying? Only [`StorageError::Transient`] is:
    /// every other variant is a stable fact about the cluster that a retry
    /// cannot change.
    pub fn is_transient(&self) -> bool {
        matches!(self, StorageError::Transient { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NodeDown(n) => write!(f, "node {n} is down"),
            StorageError::MissingChunk(fp) => write!(f, "chunk {fp} not on node"),
            StorageError::MissingManifest { rank, dump_id } => {
                write!(f, "manifest of rank {rank} dump {dump_id} not on node")
            }
            StorageError::CorruptChunk { fp, node } => {
                write!(
                    f,
                    "chunk {fp} on node {node} is corrupt (bytes do not match key)"
                )
            }
            StorageError::Transient { node } => {
                write!(
                    f,
                    "transient read failure on node {node} (retry may succeed)"
                )
            }
            StorageError::MissingShard { key, index } => {
                write!(f, "shard {index} of stripe {key:?} not on node")
            }
            StorageError::InvalidManifest(e) => write!(f, "invalid manifest rejected: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::InvalidManifest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ManifestError> for StorageError {
    fn from(e: ManifestError) -> Self {
        StorageError::InvalidManifest(e)
    }
}

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

/// Maps ranks onto nodes (block placement: ranks `[i*ppn, (i+1)*ppn)` share
/// node `i`, as MPI rank files normally lay processes out).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Number of nodes in the cluster.
    pub nodes: u32,
    /// Ranks hosted per node (the paper uses 12: 6 cores × 2 threads).
    pub ranks_per_node: u32,
}

impl Placement {
    /// Placement that packs `world_size` ranks `ranks_per_node` to a node.
    ///
    /// # Panics
    /// If either argument is zero.
    pub fn pack(world_size: u32, ranks_per_node: u32) -> Self {
        assert!(world_size > 0, "world_size must be positive");
        assert!(ranks_per_node > 0, "ranks_per_node must be positive");
        Self {
            nodes: world_size.div_ceil(ranks_per_node),
            ranks_per_node,
        }
    }

    /// One rank per node.
    pub fn one_per_node(world_size: u32) -> Self {
        Self::pack(world_size, 1)
    }

    /// Node hosting `rank`.
    pub fn node_of(&self, rank: u32) -> NodeId {
        rank / self.ranks_per_node
    }

    /// Ranks hosted on `node` given a world of `world_size`.
    pub fn ranks_on(&self, node: NodeId, world_size: u32) -> std::ops::Range<u32> {
        let start = node * self.ranks_per_node;
        start..((node + 1) * self.ranks_per_node).min(world_size)
    }
}

/// Mutable state of one node.
#[derive(Debug, Default)]
pub struct NodeState {
    /// The node-local content-addressed chunk store.
    pub store: ChunkStore,
    pub(crate) manifests: HashMap<(u32, DumpId), Manifest>,
    /// Raw dump blobs keyed by `(owner_rank, dump_id)`: the storage format
    /// of the `no-dedup` baseline, which writes buffers verbatim without
    /// content addressing (duplicates and all).
    pub(crate) blobs: HashMap<(u32, DumpId), Bytes>,
    blob_bytes: u64,
    /// Erasure-coded shards keyed by `(stripe, shard index)`: each entry is
    /// self-describing (geometry + role in [`ShardMeta`]), so any `k`
    /// survivors of a stripe reconstruct the payload without a manifest.
    pub(crate) shards: HashMap<(StripeKey, u8), StoredShard>,
    shard_bytes: u64,
    /// Remaining injected transient read failures: while positive, each
    /// read (chunk/manifest/blob fetch) consumes one and fails with
    /// [`StorageError::Transient`]. Test/fault-injection state.
    transient_reads: u32,
    /// Absent-at-dump-time tombstones: `(rank, dump_id)` pairs recorded by
    /// a degraded dump when `rank` died before contributing its data to
    /// generation `dump_id`. Restore reports these as a distinct loss class
    /// (the data never existed) instead of a replica-holder failure.
    absent: HashMap<DumpId, Vec<u32>>,
    alive: bool,
}

/// What one [`Cluster::gc_superseded`] sweep reclaimed.
///
/// `generations_collected` counts the distinct superseded dump ids that
/// still had any on-device footprint (manifests, blobs, blob stripes or
/// tombstones) when the sweep ran — the long-drill health metric: a
/// healthy steady state collects every generation it supersedes, so the
/// count stays bounded by the dump rate instead of growing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Distinct superseded dump generations that had surviving state.
    pub generations_collected: u64,
    /// Manifests dropped across live nodes.
    pub manifests_removed: u64,
    /// Raw `no-dedup` blobs dropped across live nodes.
    pub blobs_removed: u64,
    /// Chunks no longer referenced by any surviving manifest, dropped.
    pub chunks_removed: u64,
    /// Erasure-coded shards dropped (superseded blob stripes plus stripes
    /// of unreferenced chunks).
    pub shards_removed: u64,
    /// Absent-at-dump-time tombstone entries dropped.
    pub tombstones_removed: u64,
    /// Device bytes freed by the sweep.
    pub bytes_reclaimed: u64,
}

impl GcStats {
    /// Fold another sweep's counters into this one (heal aggregates the
    /// per-step sweeps it ran).
    pub fn merge(&mut self, other: &GcStats) {
        self.generations_collected += other.generations_collected;
        self.manifests_removed += other.manifests_removed;
        self.blobs_removed += other.blobs_removed;
        self.chunks_removed += other.chunks_removed;
        self.shards_removed += other.shards_removed;
        self.tombstones_removed += other.tombstones_removed;
        self.bytes_reclaimed += other.bytes_reclaimed;
    }
}

/// The cluster: shared by all rank threads.
pub struct Cluster {
    nodes: Vec<Mutex<NodeState>>,
    placement: Placement,
    sessions: Mutex<SessionRegistry>,
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes.len())
            .field("placement", &self.placement)
            .finish()
    }
}

impl Cluster {
    /// Build a cluster for the given placement; all nodes start alive and
    /// empty.
    pub fn new(placement: Placement) -> Self {
        let nodes = (0..placement.nodes)
            .map(|_| {
                Mutex::new(NodeState {
                    alive: true,
                    ..NodeState::default()
                })
            })
            .collect();
        Self {
            nodes,
            placement,
            sessions: Mutex::new(SessionRegistry::default()),
        }
    }

    /// The rank-to-node placement.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    // ---- session registry ----

    /// Open a replication session named `label` against this cluster.
    /// Returns `None` while a session with the same label is still active
    /// (the caller surfaces that as a typed duplicate-session error).
    /// Session ids are monotonic and never reused, so generations scoped
    /// by distinct sessions never collide — even across reopenings of the
    /// same label.
    pub fn begin_session(&self, label: &str) -> Option<SessionId> {
        let mut reg = self.sessions.lock().unwrap();
        if reg.active.contains_key(label) {
            return None;
        }
        reg.last = reg.last.checked_add(1).expect("session ids exhausted");
        let id = SessionId(reg.last);
        reg.active.insert(label.to_string(), id);
        Some(id)
    }

    /// Close a session, freeing its label for reuse. Returns whether the
    /// id named an active session. Stored data is untouched: generations
    /// the session wrote remain addressable by their scoped ids.
    pub fn end_session(&self, id: SessionId) -> bool {
        let mut reg = self.sessions.lock().unwrap();
        let label = reg
            .active
            .iter()
            .find_map(|(l, s)| (*s == id).then(|| l.clone()));
        match label {
            Some(l) => reg.active.remove(&l).is_some(),
            None => false,
        }
    }

    /// Currently active sessions as `(label, id)`, sorted by id.
    pub fn active_sessions(&self) -> Vec<(String, SessionId)> {
        let reg = self.sessions.lock().unwrap();
        let mut out: Vec<_> = reg.active.iter().map(|(l, s)| (l.clone(), *s)).collect();
        out.sort_by_key(|(_, s)| *s);
        out
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// Node hosting `rank`.
    pub fn node_of(&self, rank: u32) -> NodeId {
        self.placement.node_of(rank)
    }

    fn check(&self, node: NodeId) -> &Mutex<NodeState> {
        &self.nodes[node as usize]
    }

    /// Run `f` against a live node's state.
    pub fn with_node<R>(
        &self,
        node: NodeId,
        f: impl FnOnce(&mut NodeState) -> R,
    ) -> StorageResult<R> {
        let mut state = self.check(node).lock().unwrap();
        if !state.alive {
            return Err(StorageError::NodeDown(node));
        }
        Ok(f(&mut state))
    }

    /// Consume one injected transient read failure, if any are pending.
    fn take_transient(n: &mut NodeState, node: NodeId) -> StorageResult<()> {
        if n.transient_reads > 0 {
            n.transient_reads -= 1;
            return Err(StorageError::Transient { node });
        }
        Ok(())
    }

    /// Arm `node` to fail its next `ops` reads (chunk/manifest/blob
    /// fetches) with [`StorageError::Transient`]. Fault-injection hook:
    /// models a device hiccup that a bounded retry rides out. Liveness
    /// probes ([`Cluster::has_chunk`] and friends) are unaffected.
    pub fn inject_transient(&self, node: NodeId, ops: u32) -> StorageResult<()> {
        self.with_node(node, |n| n.transient_reads += ops)
    }

    /// Store a chunk on `node`. Returns `true` when the bytes were new.
    /// Accepts anything that freezes into [`Bytes`] (zero-copy for `Bytes`
    /// and `Chunk` payloads).
    pub fn put_chunk(
        &self,
        node: NodeId,
        fp: Fingerprint,
        data: impl Into<Bytes>,
    ) -> StorageResult<bool> {
        let data = data.into();
        self.with_node(node, |n| n.store.put(fp, data))
    }

    /// Fetch a chunk from `node`.
    pub fn get_chunk(&self, node: NodeId, fp: &Fingerprint) -> StorageResult<Bytes> {
        self.with_node(node, |n| {
            Self::take_transient(n, node)?;
            n.store.get(fp).ok_or(StorageError::MissingChunk(*fp))
        })?
    }

    /// Does a **live** `node` hold the chunk?
    ///
    /// Contract: a `true` answer means the node is alive and its store
    /// contains the fingerprint right now. A `false` answer means only
    /// that the chunk is not *reachable* on that node — the node may be
    /// alive without the chunk, or down while its (wiped) device held the
    /// only copy. Callers that must distinguish "absent" from "node down"
    /// (e.g. to report the loss class) use [`Cluster::get_chunk`], whose
    /// typed error keeps the two apart. Injected transient failures do not
    /// affect this probe: it is a presence check, not a device read.
    pub fn has_chunk(&self, node: NodeId, fp: &Fingerprint) -> bool {
        // A down node's contents are wiped: nothing is reachable there, so
        // "not held" is the truthful answer — but only get_chunk can tell
        // the caller *why*.
        self.with_node(node, |n| n.store.contains(fp))
            .unwrap_or_default()
    }

    /// Fingerprints of every chunk stored on `node`, sorted. The repair
    /// collective's inventory read: leaders list their node's holdings
    /// once and plan transfers from the allgathered lists. Presence
    /// listing, not a device read — injected transient failures do not
    /// affect it.
    pub fn chunk_fps(&self, node: NodeId) -> StorageResult<Vec<Fingerprint>> {
        self.with_node(node, |n| {
            let mut fps: Vec<Fingerprint> = n.store.entries().map(|(fp, _)| *fp).collect();
            fps.sort_unstable();
            fps
        })
    }

    /// Every fingerprint referenced by any manifest on `node`, across all
    /// dump generations, sorted and deduplicated. The collective scrub
    /// resolves node-local findings (dangling references, orphans) against
    /// the union of these lists: a reference is only broken, and a chunk
    /// only garbage, relative to the whole cluster.
    pub fn referenced_fps(&self, node: NodeId) -> StorageResult<Vec<Fingerprint>> {
        self.with_node(node, |n| {
            let mut fps: Vec<Fingerprint> = n
                .manifests
                .values()
                .flat_map(|m| m.chunks.iter().copied())
                .collect();
            fps.sort_unstable();
            fps.dedup();
            fps
        })
    }

    /// All manifests for `dump_id` held on `node`, sorted by owner rank.
    /// Repair walks these to find which chunks the surviving recipes still
    /// reference and which recipes need re-materialization.
    pub fn manifests_for(&self, node: NodeId, dump_id: DumpId) -> StorageResult<Vec<Manifest>> {
        self.with_node(node, |n| {
            let mut ms: Vec<Manifest> = n
                .manifests
                .values()
                .filter(|m| m.dump_id == dump_id)
                .cloned()
                .collect();
            ms.sort_unstable_by_key(|m| m.owner_rank);
            ms
        })
    }

    /// Corrupt a stored chunk's bytes in place — **test-only** bit-rot
    /// injection for exercising [`Cluster::scrub`]. The fingerprint key is
    /// untouched, so subsequent reads return bytes that no longer hash to
    /// their key. Returns `true` if a chunk was corrupted.
    pub fn corrupt_chunk(&self, node: NodeId, fp: &Fingerprint) -> StorageResult<bool> {
        self.with_node(node, |n| n.store.corrupt(fp))
    }

    /// Corrupt a stored shard's bytes in place — **test-only** bit-rot
    /// injection for exercising the parity-consistency scrub. Returns
    /// `true` if a shard was corrupted.
    pub fn corrupt_shard(&self, node: NodeId, key: StripeKey, index: u8) -> StorageResult<bool> {
        self.with_node(node, |n| match n.shards.get_mut(&(key, index)) {
            Some(s) if !s.data.is_empty() => {
                let mut bytes = s.data.to_vec();
                bytes[0] ^= 0xFF;
                s.data = Bytes::from(bytes);
                true
            }
            _ => false,
        })
    }

    /// Evict a chunk from `node` regardless of its reference count.
    /// Repair quarantines scrub-detected corrupt chunks this way before
    /// re-replicating a good copy, so [`Cluster::copies_of`] only ever
    /// counts intact replicas. Returns `true` if the chunk was present.
    pub fn quarantine_chunk(&self, node: NodeId, fp: &Fingerprint) -> StorageResult<bool> {
        self.with_node(node, |n| n.store.remove(fp))
    }

    /// Store a manifest on `node`. The manifest is validated on ingest:
    /// an internally inconsistent recipe is rejected with
    /// [`StorageError::InvalidManifest`] instead of silently breaking a
    /// future restart.
    pub fn put_manifest(&self, node: NodeId, manifest: Manifest) -> StorageResult<()> {
        manifest.validate()?;
        self.with_node(node, |n| {
            n.manifests
                .insert((manifest.owner_rank, manifest.dump_id), manifest);
        })
    }

    /// Fetch the manifest of `rank`'s dump `dump_id` from `node`.
    pub fn get_manifest(
        &self,
        node: NodeId,
        rank: u32,
        dump_id: DumpId,
    ) -> StorageResult<Manifest> {
        self.with_node(node, |n| {
            Self::take_transient(n, node)?;
            n.manifests
                .get(&(rank, dump_id))
                .cloned()
                .ok_or(StorageError::MissingManifest { rank, dump_id })
        })?
    }

    /// Owner ranks whose manifests for `dump_id` are held on `node`
    /// (sorted). Used by the restore protocol to advertise recipes.
    pub fn manifest_owners(&self, node: NodeId, dump_id: DumpId) -> StorageResult<Vec<u32>> {
        self.with_node(node, |n| {
            let mut owners: Vec<u32> = n
                .manifests
                .keys()
                .filter(|(_, d)| *d == dump_id)
                .map(|(r, _)| *r)
                .collect();
            owners.sort_unstable();
            owners
        })
    }

    /// Owner ranks whose raw blobs for `dump_id` are held on `node` (sorted).
    pub fn blob_owners(&self, node: NodeId, dump_id: DumpId) -> StorageResult<Vec<u32>> {
        self.with_node(node, |n| {
            let mut owners: Vec<u32> = n
                .blobs
                .keys()
                .filter(|(_, d)| *d == dump_id)
                .map(|(r, _)| *r)
                .collect();
            owners.sort_unstable();
            owners
        })
    }

    /// Store a raw dump blob on `node` (the `no-dedup` storage format).
    /// Overwriting the same `(owner, dump)` replaces the previous blob.
    /// Accepts anything that freezes into [`Bytes`] without copying.
    pub fn put_blob(
        &self,
        node: NodeId,
        owner: u32,
        dump_id: DumpId,
        data: impl Into<Bytes>,
    ) -> StorageResult<()> {
        let data = data.into();
        self.with_node(node, |n| {
            if let Some(old) = n.blobs.insert((owner, dump_id), data.clone()) {
                n.blob_bytes -= old.len() as u64;
            }
            n.blob_bytes += data.len() as u64;
        })
    }

    /// Fetch a raw dump blob from `node`.
    pub fn get_blob(&self, node: NodeId, owner: u32, dump_id: DumpId) -> StorageResult<Bytes> {
        self.with_node(node, |n| {
            Self::take_transient(n, node)?;
            n.blobs
                .get(&(owner, dump_id))
                .cloned()
                .ok_or(StorageError::MissingManifest {
                    rank: owner,
                    dump_id,
                })
        })?
    }

    /// Does `node` hold the blob? (`false` also when the node is down.)
    pub fn has_blob(&self, node: NodeId, owner: u32, dump_id: DumpId) -> bool {
        self.with_node(node, |n| n.blobs.contains_key(&(owner, dump_id)))
            .unwrap_or(false)
    }

    /// Store an erasure-coded shard on `node`. Content-addressed by
    /// `(key, meta.index)`: re-putting the same shard is idempotent (the
    /// bytes are replaced and the accounting adjusted), which lets every
    /// holder of an uncovered chunk stripe it independently. Returns `true`
    /// when the slot was new.
    pub fn put_shard(
        &self,
        node: NodeId,
        key: StripeKey,
        meta: ShardMeta,
        data: impl Into<Bytes>,
    ) -> StorageResult<bool> {
        let data = data.into();
        self.with_node(node, |n| {
            let len = data.len() as u64;
            let old = n
                .shards
                .insert((key, meta.index), StoredShard { meta, data });
            let was_new = old.is_none();
            if let Some(old) = old {
                n.shard_bytes -= old.data.len() as u64;
            }
            n.shard_bytes += len;
            was_new
        })
    }

    /// Fetch one shard of a stripe from `node`.
    pub fn get_shard(&self, node: NodeId, key: StripeKey, index: u8) -> StorageResult<StoredShard> {
        self.with_node(node, |n| {
            Self::take_transient(n, node)?;
            n.shards
                .get(&(key, index))
                .cloned()
                .ok_or(StorageError::MissingShard { key, index })
        })?
    }

    /// Does a live `node` hold shard `index` of the stripe? Same contract
    /// as [`Cluster::has_chunk`]: a presence probe, not a device read.
    pub fn has_shard(&self, node: NodeId, key: StripeKey, index: u8) -> bool {
        self.with_node(node, |n| n.shards.contains_key(&(key, index)))
            .unwrap_or_default()
    }

    /// Every shard held on `node`, as `(stripe, meta)` pairs sorted by
    /// stripe then shard index. The repair collective's stripe inventory,
    /// analogous to [`Cluster::chunk_fps`].
    pub fn shard_inventory(&self, node: NodeId) -> StorageResult<Vec<(StripeKey, ShardMeta)>> {
        self.with_node(node, |n| {
            let mut inv: Vec<(StripeKey, ShardMeta)> = n
                .shards
                .iter()
                .map(|((key, _), s)| (*key, s.meta))
                .collect();
            inv.sort_unstable_by_key(|(key, meta)| (*key, meta.index));
            inv
        })
    }

    /// Evict one shard from `node` regardless of stripe health — the scrub
    /// quarantine for shards whose bytes no longer match the stripe's
    /// parity. Returns `true` if the shard was present.
    pub fn quarantine_shard(&self, node: NodeId, key: StripeKey, index: u8) -> StorageResult<bool> {
        self.with_node(node, |n| match n.shards.remove(&(key, index)) {
            Some(old) => {
                n.shard_bytes -= old.data.len() as u64;
                true
            }
            None => false,
        })
    }

    /// All live copies of the stripe's shards across the cluster, one per
    /// shard index (lowest node wins on duplicates), sorted by index.
    ///
    /// Like [`Cluster::find_chunk`], this is the shared-storage escape
    /// hatch: the distributed protocols locate shards via messages first,
    /// and reconstruction consults the cluster directly only as the
    /// last-resort repair index.
    pub fn gather_shards(&self, key: StripeKey) -> Vec<StoredShard> {
        let mut found: HashMap<u8, StoredShard> = HashMap::new();
        for node in 0..self.node_count() {
            let shards = self
                .with_node(node, |n| {
                    n.shards
                        .iter()
                        .filter(|((k, _), _)| *k == key)
                        .map(|(_, s)| s.clone())
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default();
            for s in shards {
                found.entry(s.meta.index).or_insert(s);
            }
        }
        let mut out: Vec<StoredShard> = found.into_values().collect();
        out.sort_unstable_by_key(|s| s.meta.index);
        out
    }

    /// Reconstruct a stripe's payload from any `k` surviving shards across
    /// live nodes. `None` when fewer than `k` shards survive, when the
    /// survivors disagree on geometry, or when decode fails — the caller
    /// maps that to its own loss class (restore's `ChunkLost`/`BlobLost`).
    pub fn reconstruct_payload(&self, key: StripeKey) -> Option<Bytes> {
        let shards = self.gather_shards(key);
        let first = shards.first()?;
        let (k, m, total_len) = (first.meta.k, first.meta.m, first.meta.total_len);
        let total_len = usize::try_from(total_len).ok()?;
        let consistent: Vec<(u8, &[u8])> = shards
            .iter()
            .filter(|s| s.meta.k == k && s.meta.m == m)
            .map(|s| (s.meta.index, s.data.as_ref()))
            .collect();
        let code = replidedup_ec::RsCode::new(k, m).ok()?;
        code.decode(&consistent, total_len).ok().map(Bytes::from)
    }

    /// Rebuild one shard of a stripe from any `k` surviving shards across
    /// live nodes, returned ready to store (the caller decides which node
    /// re-homes it). `None` when fewer than `k` consistent shards survive,
    /// when the survivors disagree on geometry, or when decode fails.
    pub fn rebuild_shard(&self, key: StripeKey, index: u8) -> Option<StoredShard> {
        let shards = self.gather_shards(key);
        let first = shards.first()?;
        let (k, m, total_len) = (first.meta.k, first.meta.m, first.meta.total_len);
        let len = usize::try_from(total_len).ok()?;
        let consistent: Vec<(u8, &[u8])> = shards
            .iter()
            .filter(|s| s.meta.k == k && s.meta.m == m)
            .map(|s| (s.meta.index, s.data.as_ref()))
            .collect();
        let code = replidedup_ec::RsCode::new(k, m).ok()?;
        let data = code.reconstruct_shard(&consistent, index, len).ok()?;
        Some(StoredShard {
            meta: ShardMeta {
                k,
                m,
                index,
                total_len,
            },
            data: Bytes::from(data),
        })
    }

    /// Record that `rank`'s contribution to dump `dump_id` was absent when
    /// the (degraded) dump committed on `node` — the rank died before its
    /// data reached any device. Idempotent.
    pub fn mark_absent(&self, node: NodeId, rank: u32, dump_id: DumpId) -> StorageResult<()> {
        self.with_node(node, |n| {
            let ranks = n.absent.entry(dump_id).or_default();
            if let Err(i) = ranks.binary_search(&rank) {
                ranks.insert(i, rank);
            }
        })
    }

    /// Ranks tombstoned as absent at dump time for `dump_id` on `node`
    /// (sorted). Like the device contents, tombstones die with the node.
    pub fn absent_ranks(&self, node: NodeId, dump_id: DumpId) -> StorageResult<Vec<u32>> {
        self.with_node(node, |n| {
            n.absent.get(&dump_id).cloned().unwrap_or_default()
        })
    }

    /// Raw device usage of a node in bytes: chunk store plus blobs plus
    /// erasure-coded shards.
    pub fn device_bytes(&self, node: NodeId) -> u64 {
        let s = self.check(node).lock().unwrap();
        if s.alive {
            s.store.bytes_stored() + s.blob_bytes + s.shard_bytes
        } else {
            0
        }
    }

    /// Parity bytes stored across live nodes: the redundancy the coded
    /// policies *add* (data shards are slices of the payload, so only
    /// parity is overhead). The bench's dedup-credit metric: chunks whose
    /// natural copies were credited never generated parity.
    pub fn total_parity_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| {
                let s = n.lock().unwrap();
                if s.alive {
                    s.shards
                        .values()
                        .filter(|sh| sh.meta.is_parity())
                        .map(|sh| sh.data.len() as u64)
                        .sum()
                } else {
                    0
                }
            })
            .sum()
    }

    /// Total device usage across live nodes (what Figures 4(b)/5(b)'s
    /// storage-cost discussion is about when multiplied out by K).
    pub fn total_device_bytes(&self) -> u64 {
        (0..self.node_count()).map(|n| self.device_bytes(n)).sum()
    }

    /// Is the node alive?
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.check(node).lock().unwrap().alive
    }

    /// Fail a node: the device contents are lost.
    pub fn fail_node(&self, node: NodeId) {
        let mut state = self.check(node).lock().unwrap();
        state.alive = false;
        state.store.wipe();
        state.manifests.clear();
        state.blobs.clear();
        state.blob_bytes = 0;
        state.shards.clear();
        state.shard_bytes = 0;
        state.absent.clear();
        state.transient_reads = 0;
    }

    /// Bring a replacement node online (empty device, same identity).
    pub fn revive_node(&self, node: NodeId) {
        self.check(node).lock().unwrap().alive = true;
    }

    /// Total unique bytes stored across live nodes (Figure 3(a)'s metric
    /// when summed right after a dump).
    pub fn total_unique_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| {
                let s = n.lock().unwrap();
                if s.alive {
                    s.store.bytes_stored()
                } else {
                    0
                }
            })
            .sum()
    }

    /// Unique bytes stored per node (index = node id; 0 for dead nodes).
    pub fn bytes_per_node(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .map(|n| {
                let s = n.lock().unwrap();
                if s.alive {
                    s.store.bytes_stored()
                } else {
                    0
                }
            })
            .collect()
    }

    /// Cluster-wide physical copy count of a chunk across live nodes.
    pub fn copies_of(&self, fp: &Fingerprint) -> u32 {
        self.nodes
            .iter()
            .map(|n| {
                let s = n.lock().unwrap();
                u32::from(s.alive && s.store.contains(fp))
            })
            .sum()
    }

    /// First live node holding `fp`, if any. This is the cluster's repair
    /// index: retrying restore falls back to it when the local copy turns
    /// out corrupt, and tests use it as a diagnostic. Dead nodes are never
    /// returned — per the [`Cluster::has_chunk`] contract they hold
    /// nothing reachable, so a dead node with the (former) only copy
    /// yields `None`, same as true loss. The distributed restore protocol
    /// in `replidedup-core` locates chunks via messages first and only
    /// consults this index as a last resort before declaring loss.
    pub fn find_chunk(&self, fp: &Fingerprint) -> Option<NodeId> {
        (0..self.node_count()).find(|&n| self.has_chunk(n, fp))
    }

    /// Every dump generation with any footprint on a live node (manifests,
    /// blobs, blob stripes or absence tombstones), sorted ascending. The
    /// background healer schedules from this list: generations currently
    /// being written are skipped by the caller, superseded ones are handed
    /// to [`Cluster::gc_superseded`].
    pub fn generations(&self) -> Vec<DumpId> {
        let mut gens: Vec<DumpId> = Vec::new();
        for node in 0..self.node_count() {
            let s = self.check(node).lock().unwrap();
            if !s.alive {
                continue;
            }
            gens.extend(s.manifests.keys().map(|(_, d)| *d));
            gens.extend(s.blobs.keys().map(|(_, d)| *d));
            gens.extend(s.shards.keys().filter_map(|(key, _)| match key {
                StripeKey::Blob { dump_id, .. } => Some(*dump_id),
                StripeKey::Chunk(_) => None,
            }));
            gens.extend(s.absent.keys().copied());
        }
        gens.sort_unstable();
        gens.dedup();
        gens
    }

    /// Collect every dump generation older than `before`: drop its
    /// manifests, raw blobs, blob stripes and absence tombstones, then drop
    /// any chunk (and chunk stripe) no surviving manifest references. A
    /// chunk shared with a surviving generation keeps its copies — GC is
    /// reference-driven, never generation-tagged, because content
    /// addressing deliberately shares chunk bytes across generations.
    ///
    /// Must not run concurrently with an in-flight dump of a *surviving*
    /// generation: dumps store chunks before committing the manifests that
    /// reference them, so a concurrent sweep would see those chunks as
    /// garbage. The healing engine runs the sweep as its own step between
    /// collectives, which serializes it against dump traffic.
    pub fn gc_superseded(&self, before: DumpId) -> GcStats {
        // Generations are scoped per session: the sweep only ever collects
        // within `before`'s own session, so a heal GC-ing session A can
        // never reap a concurrent session B's generations.
        let superseded = |d: DumpId| SessionId::of(d) == SessionId::of(before) && d < before;
        let mut stats = GcStats::default();
        let mut collected: Vec<DumpId> = Vec::new();
        // Pass 1: drop everything tagged with a superseded generation.
        for node in 0..self.node_count() {
            let mut s = self.check(node).lock().unwrap();
            if !s.alive {
                continue;
            }
            let victims: Vec<(u32, DumpId)> = s
                .manifests
                .keys()
                .filter(|(_, d)| superseded(*d))
                .copied()
                .collect();
            for key in victims {
                s.manifests.remove(&key);
                stats.manifests_removed += 1;
                collected.push(key.1);
            }
            let victims: Vec<(u32, DumpId)> = s
                .blobs
                .keys()
                .filter(|(_, d)| superseded(*d))
                .copied()
                .collect();
            for key in victims {
                if let Some(old) = s.blobs.remove(&key) {
                    s.blob_bytes -= old.len() as u64;
                    stats.blobs_removed += 1;
                    stats.bytes_reclaimed += old.len() as u64;
                    collected.push(key.1);
                }
            }
            let victims: Vec<(StripeKey, u8)> = s
                .shards
                .keys()
                .filter(
                    |(key, _)| matches!(key, StripeKey::Blob { dump_id, .. } if superseded(*dump_id)),
                )
                .copied()
                .collect();
            for key in victims {
                if let Some(old) = s.shards.remove(&key) {
                    s.shard_bytes -= old.data.len() as u64;
                    stats.shards_removed += 1;
                    stats.bytes_reclaimed += old.data.len() as u64;
                    if let StripeKey::Blob { dump_id, .. } = key.0 {
                        collected.push(dump_id);
                    }
                }
            }
            let victims: Vec<DumpId> = s
                .absent
                .keys()
                .filter(|d| superseded(**d))
                .copied()
                .collect();
            for d in victims {
                if let Some(ranks) = s.absent.remove(&d) {
                    stats.tombstones_removed += ranks.len() as u64;
                    collected.push(d);
                }
            }
        }
        // Pass 2: with the superseded recipes gone, compute the set of
        // fingerprints any surviving manifest still references, cluster
        // wide, and drop the rest (plus their chunk stripes).
        let mut referenced: Vec<Fingerprint> = Vec::new();
        for node in 0..self.node_count() {
            let s = self.check(node).lock().unwrap();
            if s.alive {
                referenced.extend(s.manifests.values().flat_map(|m| m.chunks.iter().copied()));
            }
        }
        referenced.sort_unstable();
        referenced.dedup();
        for node in 0..self.node_count() {
            let mut s = self.check(node).lock().unwrap();
            if !s.alive {
                continue;
            }
            let victims: Vec<(Fingerprint, u64)> = s
                .store
                .entries()
                .filter(|(fp, _)| referenced.binary_search(fp).is_err())
                .map(|(fp, data)| (*fp, data.len() as u64))
                .collect();
            for (fp, len) in victims {
                if s.store.remove(&fp) {
                    stats.chunks_removed += 1;
                    stats.bytes_reclaimed += len;
                }
            }
            let victims: Vec<(StripeKey, u8)> = s
                .shards
                .keys()
                .filter(
                    |(key, _)| matches!(key, StripeKey::Chunk(fp) if referenced.binary_search(fp).is_err()),
                )
                .copied()
                .collect();
            for key in victims {
                if let Some(old) = s.shards.remove(&key) {
                    s.shard_bytes -= old.data.len() as u64;
                    stats.shards_removed += 1;
                    stats.bytes_reclaimed += old.data.len() as u64;
                }
            }
        }
        collected.sort_unstable();
        collected.dedup();
        stats.generations_collected = collected.len() as u64;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::synthetic(n)
    }

    #[test]
    fn placement_packs_ranks() {
        let p = Placement::pack(408, 12);
        assert_eq!(p.nodes, 34);
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(11), 0);
        assert_eq!(p.node_of(12), 1);
        assert_eq!(p.node_of(407), 33);
        assert_eq!(p.ranks_on(33, 408), 396..408);
    }

    #[test]
    fn placement_handles_partial_last_node() {
        let p = Placement::pack(10, 4);
        assert_eq!(p.nodes, 3);
        assert_eq!(p.ranks_on(2, 10), 8..10);
    }

    #[test]
    fn chunk_roundtrip() {
        let c = Cluster::new(Placement::one_per_node(2));
        assert!(c.put_chunk(0, fp(1), Bytes::from_static(b"abc")).unwrap());
        assert_eq!(c.get_chunk(0, &fp(1)).unwrap(), Bytes::from_static(b"abc"));
        assert!(c.has_chunk(0, &fp(1)));
        assert!(!c.has_chunk(1, &fp(1)));
        assert_eq!(
            c.get_chunk(1, &fp(1)),
            Err(StorageError::MissingChunk(fp(1)))
        );
    }

    #[test]
    fn failed_node_loses_data_and_rejects_io() {
        let c = Cluster::new(Placement::one_per_node(2));
        c.put_chunk(0, fp(1), Bytes::from_static(b"abc")).unwrap();
        c.fail_node(0);
        assert!(!c.is_alive(0));
        assert_eq!(
            c.put_chunk(0, fp(2), Bytes::new()),
            Err(StorageError::NodeDown(0))
        );
        assert_eq!(c.get_chunk(0, &fp(1)), Err(StorageError::NodeDown(0)));
        c.revive_node(0);
        assert!(c.is_alive(0));
        // Replacement hardware comes up empty.
        assert_eq!(
            c.get_chunk(0, &fp(1)),
            Err(StorageError::MissingChunk(fp(1)))
        );
    }

    #[test]
    fn manifests_roundtrip_and_die_with_node() {
        let c = Cluster::new(Placement::one_per_node(2));
        let m = Manifest::fixed_stride(1, 5, 4, 4, vec![fp(9)]);
        c.put_manifest(0, m.clone()).unwrap();
        assert_eq!(c.get_manifest(0, 1, 5).unwrap(), m);
        assert_eq!(
            c.get_manifest(0, 1, 6),
            Err(StorageError::MissingManifest {
                rank: 1,
                dump_id: 6
            })
        );
        c.fail_node(0);
        c.revive_node(0);
        assert!(c.get_manifest(0, 1, 5).is_err());
    }

    #[test]
    fn copy_counting_across_nodes() {
        let c = Cluster::new(Placement::one_per_node(3));
        c.put_chunk(0, fp(1), Bytes::from_static(b"zz")).unwrap();
        c.put_chunk(2, fp(1), Bytes::from_static(b"zz")).unwrap();
        assert_eq!(c.copies_of(&fp(1)), 2);
        assert_eq!(c.find_chunk(&fp(1)), Some(0));
        c.fail_node(0);
        assert_eq!(c.copies_of(&fp(1)), 1);
        assert_eq!(c.find_chunk(&fp(1)), Some(2));
    }

    #[test]
    fn unique_bytes_aggregate() {
        let c = Cluster::new(Placement::one_per_node(2));
        c.put_chunk(0, fp(1), Bytes::from_static(b"aaaa")).unwrap();
        c.put_chunk(0, fp(1), Bytes::from_static(b"aaaa")).unwrap(); // dedup hit
        c.put_chunk(1, fp(2), Bytes::from_static(b"bb")).unwrap();
        assert_eq!(c.total_unique_bytes(), 6);
        assert_eq!(c.bytes_per_node(), vec![4, 2]);
    }

    #[test]
    fn blobs_roundtrip_and_account() {
        let c = Cluster::new(Placement::one_per_node(2));
        c.put_blob(0, 1, 7, Bytes::from_static(b"hello")).unwrap();
        assert_eq!(c.get_blob(0, 1, 7).unwrap(), Bytes::from_static(b"hello"));
        assert!(c.has_blob(0, 1, 7));
        assert!(!c.has_blob(1, 1, 7));
        assert_eq!(c.device_bytes(0), 5);
        // Overwrite replaces, not accumulates.
        c.put_blob(0, 1, 7, Bytes::from_static(b"hi")).unwrap();
        assert_eq!(c.device_bytes(0), 2);
        assert_eq!(c.total_device_bytes(), 2);
    }

    #[test]
    fn blobs_die_with_node() {
        let c = Cluster::new(Placement::one_per_node(1));
        c.put_blob(0, 0, 1, Bytes::from_static(b"x")).unwrap();
        c.fail_node(0);
        c.revive_node(0);
        assert!(!c.has_blob(0, 0, 1));
        assert_eq!(c.device_bytes(0), 0);
    }

    #[test]
    fn device_bytes_combines_chunks_and_blobs() {
        let c = Cluster::new(Placement::one_per_node(1));
        c.put_chunk(0, fp(1), Bytes::from_static(b"abcd")).unwrap();
        c.put_blob(0, 0, 1, Bytes::from_static(b"xyz")).unwrap();
        assert_eq!(c.device_bytes(0), 7);
    }

    #[test]
    fn absent_tombstones_roundtrip_and_die_with_node() {
        let c = Cluster::new(Placement::one_per_node(2));
        c.mark_absent(0, 3, 7).unwrap();
        c.mark_absent(0, 1, 7).unwrap();
        c.mark_absent(0, 3, 7).unwrap(); // idempotent
        assert_eq!(c.absent_ranks(0, 7).unwrap(), vec![1, 3]);
        assert_eq!(c.absent_ranks(0, 8).unwrap(), Vec::<u32>::new());
        assert_eq!(c.absent_ranks(1, 7).unwrap(), Vec::<u32>::new());
        c.fail_node(0);
        assert_eq!(c.absent_ranks(0, 7), Err(StorageError::NodeDown(0)));
        c.revive_node(0);
        assert_eq!(c.absent_ranks(0, 7).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn inconsistent_manifest_rejected_with_typed_error() {
        let c = Cluster::new(Placement::one_per_node(1));
        let bad = Manifest {
            owner_rank: 0,
            dump_id: 0,
            total_len: 100,
            chunks: vec![],
            chunk_lens: vec![],
            rs: None,
            coded: vec![],
        };
        match c.put_manifest(0, bad) {
            Err(StorageError::InvalidManifest(ManifestError::LengthSumMismatch {
                sum,
                total_len,
                ..
            })) => {
                assert_eq!(sum, 0);
                assert_eq!(total_len, 100);
            }
            other => panic!("expected InvalidManifest, got {other:?}"),
        }
        // Nothing was stored.
        assert!(c.get_manifest(0, 0, 0).is_err());
    }

    #[test]
    fn storage_error_source_chains_to_manifest_error() {
        use std::error::Error as _;
        let e = StorageError::InvalidManifest(ManifestError::ZeroLengthChunk {
            owner_rank: 1,
            dump_id: 2,
            index: 0,
        });
        assert!(e.to_string().contains("invalid manifest"));
        assert!(e
            .source()
            .unwrap()
            .downcast_ref::<ManifestError>()
            .is_some());
    }

    /// Regression test for the `find_chunk` / `has_chunk` contract: a dead
    /// node holding the only copy reads as "not held" from the probes,
    /// while `get_chunk` keeps the NodeDown / MissingChunk distinction.
    #[test]
    fn dead_node_with_only_copy_is_unreachable_not_missing() {
        let c = Cluster::new(Placement::one_per_node(2));
        c.put_chunk(1, fp(7), Bytes::from_static(b"only")).unwrap();
        c.fail_node(1);
        assert!(!c.has_chunk(1, &fp(7)), "dead node holds nothing reachable");
        assert_eq!(c.find_chunk(&fp(7)), None, "no live holder exists");
        assert_eq!(c.copies_of(&fp(7)), 0);
        // The typed read API still tells the caller *why*.
        assert_eq!(c.get_chunk(1, &fp(7)), Err(StorageError::NodeDown(1)));
        assert_eq!(
            c.get_chunk(0, &fp(7)),
            Err(StorageError::MissingChunk(fp(7)))
        );
    }

    #[test]
    fn injected_transient_failures_are_consumed_by_reads() {
        let c = Cluster::new(Placement::one_per_node(1));
        c.put_chunk(0, fp(1), Bytes::from_static(b"data")).unwrap();
        c.inject_transient(0, 2).unwrap();
        assert_eq!(
            c.get_chunk(0, &fp(1)),
            Err(StorageError::Transient { node: 0 })
        );
        assert!(c.has_chunk(0, &fp(1)), "probes are not device reads");
        assert_eq!(
            c.get_chunk(0, &fp(1)),
            Err(StorageError::Transient { node: 0 })
        );
        // Third read succeeds: the injected budget is spent.
        assert_eq!(c.get_chunk(0, &fp(1)).unwrap(), Bytes::from_static(b"data"));
        assert!(StorageError::Transient { node: 0 }.is_transient());
        assert!(!StorageError::NodeDown(0).is_transient());
    }

    fn encode_stripe(
        c: &Cluster,
        key: StripeKey,
        k: u8,
        m: u8,
        payload: &Bytes,
    ) -> Vec<StoredShard> {
        let code = replidedup_ec::RsCode::new(k, m).unwrap();
        let shards = code.encode(payload);
        let nodes = replidedup_ec::shard_nodes(key.seed(), code.shards(), c.node_count());
        shards
            .iter()
            .enumerate()
            .map(|(i, data)| {
                let meta = ShardMeta {
                    k,
                    m,
                    index: i as u8,
                    total_len: payload.len() as u64,
                };
                c.put_shard(nodes[i], key, meta, data.clone()).unwrap();
                StoredShard {
                    meta,
                    data: data.clone(),
                }
            })
            .collect()
    }

    #[test]
    fn shards_roundtrip_and_account() {
        let c = Cluster::new(Placement::one_per_node(8));
        let key = StripeKey::Chunk(fp(9));
        let payload = Bytes::from(vec![7u8; 400]);
        let shards = encode_stripe(&c, key, 4, 2, &payload);
        let nodes = replidedup_ec::shard_nodes(key.seed(), 6, 8);
        for (i, node) in nodes.iter().enumerate() {
            assert!(c.has_shard(*node, key, i as u8));
            assert_eq!(c.get_shard(*node, key, i as u8).unwrap(), shards[i]);
        }
        // 4 data shards of 100 bytes + 2 parity of 100: 600 device bytes,
        // of which 200 are parity overhead.
        assert_eq!(c.total_device_bytes(), 600);
        assert_eq!(c.total_parity_bytes(), 200);
        // Re-put is idempotent on the accounting.
        assert!(!c
            .put_shard(nodes[0], key, shards[0].meta, shards[0].data.clone())
            .unwrap());
        assert_eq!(c.total_device_bytes(), 600);
        // Inventory lists every shard with its stripe.
        let inv = c.shard_inventory(nodes[0]).unwrap();
        assert_eq!(inv, vec![(key, shards[0].meta)]);
        // Quarantine evicts and un-accounts.
        assert!(c.quarantine_shard(nodes[0], key, 0).unwrap());
        assert!(!c.quarantine_shard(nodes[0], key, 0).unwrap());
        assert_eq!(c.total_device_bytes(), 500);
        assert_eq!(
            c.get_shard(nodes[0], key, 0),
            Err(StorageError::MissingShard { key, index: 0 })
        );
    }

    #[test]
    fn stripe_reconstructs_after_m_node_losses() {
        let c = Cluster::new(Placement::one_per_node(8));
        let key = StripeKey::Chunk(fp(3));
        let payload = Bytes::from((0..997u32).map(|i| i as u8).collect::<Vec<u8>>());
        encode_stripe(&c, key, 4, 2, &payload);
        let nodes = replidedup_ec::shard_nodes(key.seed(), 6, 8);
        // Any 2 of the stripe's nodes can die; 4 survivors suffice.
        c.fail_node(nodes[0]);
        c.fail_node(nodes[5]);
        assert_eq!(c.reconstruct_payload(key).unwrap(), payload);
        // A third loss leaves only 3 shards: unrecoverable.
        c.fail_node(nodes[1]);
        assert_eq!(c.reconstruct_payload(key), None);
        // An unknown stripe is simply absent.
        assert_eq!(c.reconstruct_payload(StripeKey::Chunk(fp(999))), None);
    }

    #[test]
    fn shards_die_with_node() {
        let c = Cluster::new(Placement::one_per_node(2));
        let key = StripeKey::Blob {
            owner: 0,
            dump_id: 1,
        };
        let meta = ShardMeta {
            k: 1,
            m: 1,
            index: 0,
            total_len: 4,
        };
        c.put_shard(0, key, meta, Bytes::from_static(b"abcd"))
            .unwrap();
        assert_eq!(c.device_bytes(0), 4);
        c.fail_node(0);
        c.revive_node(0);
        assert!(!c.has_shard(0, key, 0));
        assert_eq!(c.device_bytes(0), 0);
        assert!(c.shard_inventory(0).unwrap().is_empty());
    }

    #[test]
    fn gc_superseded_reclaims_old_generations_but_keeps_shared_chunks() {
        let c = Cluster::new(Placement::one_per_node(2));
        // Generation 1 and generation 2 share fp(1); fp(2) is gen-1-only
        // and fp(3) is gen-2-only.
        c.put_chunk(0, fp(1), Bytes::from_static(b"shared"))
            .unwrap();
        c.put_chunk(0, fp(2), Bytes::from_static(b"old")).unwrap();
        c.put_chunk(1, fp(3), Bytes::from_static(b"new")).unwrap();
        c.put_manifest(0, Manifest::fixed_stride(0, 1, 6, 9, vec![fp(1), fp(2)]))
            .unwrap();
        c.put_manifest(0, Manifest::fixed_stride(0, 2, 6, 12, vec![fp(1), fp(3)]))
            .unwrap();
        c.put_blob(1, 1, 1, Bytes::from_static(b"blob1")).unwrap();
        c.mark_absent(1, 3, 1).unwrap();
        assert_eq!(c.generations(), vec![1, 2]);

        let stats = c.gc_superseded(2);
        assert_eq!(stats.generations_collected, 1);
        assert_eq!(stats.manifests_removed, 1);
        assert_eq!(stats.blobs_removed, 1);
        assert_eq!(stats.chunks_removed, 1, "only the gen-1-only chunk goes");
        assert_eq!(stats.tombstones_removed, 1);
        // "old" (3) + "blob1" (5) reclaimed.
        assert_eq!(stats.bytes_reclaimed, 8);
        assert!(c.has_chunk(0, &fp(1)), "shared chunk survives");
        assert!(!c.has_chunk(0, &fp(2)));
        assert!(c.has_chunk(1, &fp(3)));
        assert!(!c.has_blob(1, 1, 1));
        assert_eq!(c.generations(), vec![2]);
        assert_eq!(c.absent_ranks(1, 1).unwrap(), Vec::<u32>::new());

        // Idempotent: a second sweep finds nothing.
        assert_eq!(c.gc_superseded(2), GcStats::default());
    }

    #[test]
    fn gc_superseded_drops_blob_stripes_and_orphan_chunk_stripes() {
        let c = Cluster::new(Placement::one_per_node(8));
        let old_blob = StripeKey::Blob {
            owner: 0,
            dump_id: 1,
        };
        let live_blob = StripeKey::Blob {
            owner: 0,
            dump_id: 2,
        };
        let payload = Bytes::from(vec![5u8; 400]);
        encode_stripe(&c, old_blob, 4, 2, &payload);
        encode_stripe(&c, live_blob, 4, 2, &payload);
        // A chunk stripe whose fingerprint no manifest references.
        encode_stripe(&c, StripeKey::Chunk(fp(77)), 4, 2, &payload);
        let stats = c.gc_superseded(2);
        // 6 shards of the superseded blob stripe + 6 of the orphan chunk
        // stripe; the live blob stripe survives untouched.
        assert_eq!(stats.shards_removed, 12);
        assert_eq!(stats.generations_collected, 1);
        assert!(c.reconstruct_payload(live_blob).is_some());
        assert!(c.reconstruct_payload(old_blob).is_none());
        assert_eq!(c.generations(), vec![2]);
    }

    #[test]
    fn gc_superseded_skips_dead_nodes() {
        let c = Cluster::new(Placement::one_per_node(2));
        c.put_blob(0, 0, 1, Bytes::from_static(b"x")).unwrap();
        c.put_blob(1, 1, 1, Bytes::from_static(b"y")).unwrap();
        c.fail_node(1);
        let stats = c.gc_superseded(5);
        assert_eq!(stats.blobs_removed, 1, "only the live node is swept");
        assert_eq!(c.generations(), Vec::<DumpId>::new());
    }

    #[test]
    fn session_registry_rejects_duplicate_labels_and_never_reuses_ids() {
        let c = Cluster::new(Placement::one_per_node(1));
        let a = c.begin_session("nightly").unwrap();
        assert!(a > SessionId::DEFAULT);
        assert_eq!(c.begin_session("nightly"), None, "label is active");
        let b = c.begin_session("hourly").unwrap();
        assert_ne!(a, b);
        assert_eq!(
            c.active_sessions(),
            vec![("nightly".to_string(), a), ("hourly".to_string(), b)]
        );
        assert!(c.end_session(a));
        assert!(!c.end_session(a), "already closed");
        // Reopening the label hands out a fresh id.
        let a2 = c.begin_session("nightly").unwrap();
        assert_ne!(a2, a);
        assert_ne!(a2, b);
    }

    #[test]
    fn session_scoped_generations_partition_the_dump_space() {
        let s1 = SessionId::of(1u64 << SessionId::GENERATION_BITS);
        let gen = s1.scope(7);
        assert_eq!(SessionId::of(gen), s1);
        assert_eq!(SessionId::local_generation(gen), 7);
        assert_eq!(
            SessionId::DEFAULT.scope(7),
            7,
            "default session is identity"
        );
        assert_ne!(gen, 7);
    }

    #[test]
    fn gc_superseded_never_crosses_sessions() {
        let c = Cluster::new(Placement::one_per_node(2));
        let a = c.begin_session("a").unwrap();
        let b = c.begin_session("b").unwrap();
        // Session A writes generations 1 and 2; session B writes 1. B's
        // scoped generation is numerically *between* A's two.
        c.put_chunk(0, fp(10), Bytes::from_static(b"a-old"))
            .unwrap();
        c.put_manifest(0, Manifest::fixed_stride(0, a.scope(1), 5, 5, vec![fp(10)]))
            .unwrap();
        c.put_chunk(0, fp(11), Bytes::from_static(b"a-new"))
            .unwrap();
        c.put_manifest(0, Manifest::fixed_stride(0, a.scope(2), 5, 5, vec![fp(11)]))
            .unwrap();
        c.put_chunk(1, fp(12), Bytes::from_static(b"b-one"))
            .unwrap();
        c.put_manifest(1, Manifest::fixed_stride(1, b.scope(1), 5, 5, vec![fp(12)]))
            .unwrap();
        assert!(b.scope(1) > a.scope(2));

        // GC session A up to generation 2: A's gen 1 goes, B untouched.
        let stats = c.gc_superseded(a.scope(2));
        assert_eq!(stats.generations_collected, 1);
        assert!(!c.has_chunk(0, &fp(10)));
        assert!(c.has_chunk(0, &fp(11)));
        assert!(c.has_chunk(1, &fp(12)), "session B must survive A's GC");
        assert_eq!(c.generations(), vec![a.scope(2), b.scope(1)]);
    }

    #[test]
    fn gc_stats_merge_accumulates() {
        let mut a = GcStats {
            generations_collected: 1,
            manifests_removed: 2,
            bytes_reclaimed: 10,
            ..GcStats::default()
        };
        a.merge(&GcStats {
            generations_collected: 2,
            chunks_removed: 3,
            bytes_reclaimed: 5,
            ..GcStats::default()
        });
        assert_eq!(a.generations_collected, 3);
        assert_eq!(a.manifests_removed, 2);
        assert_eq!(a.chunks_removed, 3);
        assert_eq!(a.bytes_reclaimed, 15);
    }

    #[test]
    fn corrupt_and_quarantine_roundtrip() {
        let c = Cluster::new(Placement::one_per_node(2));
        c.put_chunk(0, fp(3), Bytes::from_static(b"abcd")).unwrap();
        c.put_chunk(1, fp(3), Bytes::from_static(b"abcd")).unwrap();
        assert!(c.corrupt_chunk(0, &fp(3)).unwrap());
        assert_ne!(c.get_chunk(0, &fp(3)).unwrap(), Bytes::from_static(b"abcd"));
        // Quarantine drops the bad copy; the good replica survives.
        assert!(c.quarantine_chunk(0, &fp(3)).unwrap());
        assert_eq!(c.copies_of(&fp(3)), 1);
        assert_eq!(c.find_chunk(&fp(3)), Some(1));
    }
}
