//! Fingerprint-addressed node-local chunk store.
//!
//! Each compute node's local device (HDD in the paper's testbed) is modeled
//! as a content-addressed store: chunks are keyed by fingerprint and
//! refcounted, because several manifests (the rank's own dump plus replicas
//! received from partners, across checkpoint generations) may reference the
//! same chunk while its bytes are stored once. `bytes_stored` therefore
//! reports *unique* content — the quantity Figure 3(a) plots.

use bytes::Bytes;
use replidedup_hash::{Fingerprint, FpHashMap};

/// Refcounted chunk entry.
#[derive(Debug, Clone)]
struct Entry {
    data: Bytes,
    refs: u32,
}

/// Content-addressed chunk store for one node.
#[derive(Debug, Default)]
pub struct ChunkStore {
    chunks: FpHashMap<Entry>,
    bytes_stored: u64,
    /// Cumulative bytes physically written to the device (dedup hits do not
    /// rewrite, matching a content-addressed store's I/O behaviour).
    bytes_written: u64,
}

impl ChunkStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a chunk (or bump its refcount if already present).
    /// Returns `true` when the chunk was new, i.e. bytes hit the device.
    ///
    /// Accepts anything that freezes into [`Bytes`] — a `Chunk` sliced
    /// from the application buffer stores without copying.
    pub fn put(&mut self, fp: Fingerprint, data: impl Into<Bytes>) -> bool {
        let data = data.into();
        match self.chunks.entry(fp) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                debug_assert_eq!(
                    e.get().data.len(),
                    data.len(),
                    "fingerprint collision or corrupted chunk for {fp}"
                );
                e.get_mut().refs += 1;
                false
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.bytes_stored += data.len() as u64;
                self.bytes_written += data.len() as u64;
                v.insert(Entry { data, refs: 1 });
                true
            }
        }
    }

    /// Look up a chunk by fingerprint.
    pub fn get(&self, fp: &Fingerprint) -> Option<Bytes> {
        self.chunks.get(fp).map(|e| e.data.clone())
    }

    /// Does the store hold this chunk?
    pub fn contains(&self, fp: &Fingerprint) -> bool {
        self.chunks.contains_key(fp)
    }

    /// Drop one reference; the chunk is evicted when the count hits zero.
    /// Returns `true` if the chunk was evicted. No-op (returning `false`)
    /// for unknown fingerprints.
    pub fn release(&mut self, fp: &Fingerprint) -> bool {
        if let Some(e) = self.chunks.get_mut(fp) {
            e.refs -= 1;
            if e.refs == 0 {
                let len = e.data.len() as u64;
                self.chunks.remove(fp);
                self.bytes_stored -= len;
                return true;
            }
        }
        false
    }

    /// Number of distinct chunks held.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Unique content currently held, in bytes.
    pub fn bytes_stored(&self) -> u64 {
        self.bytes_stored
    }

    /// Cumulative bytes ever written to the device.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Current reference count of a chunk (0 when absent).
    pub fn refs(&self, fp: &Fingerprint) -> u32 {
        self.chunks.get(fp).map_or(0, |e| e.refs)
    }

    /// Iterate over the fingerprints held (arbitrary order).
    pub fn fingerprints(&self) -> impl Iterator<Item = &Fingerprint> {
        self.chunks.keys()
    }

    /// Iterate over `(fingerprint, data)` pairs (arbitrary order). The
    /// scrubber walks this to re-hash every chunk against its key.
    pub fn entries(&self) -> impl Iterator<Item = (&Fingerprint, &Bytes)> {
        self.chunks.iter().map(|(fp, e)| (fp, &e.data))
    }

    /// Flip the stored bytes of a chunk without touching its key — a
    /// **test-only** bit-rot injection hook for scrub tests. The chunk's
    /// length is preserved (bit-rot, not truncation). Returns `false` for
    /// unknown or empty chunks.
    pub fn corrupt(&mut self, fp: &Fingerprint) -> bool {
        match self.chunks.get_mut(fp) {
            Some(e) if !e.data.is_empty() => {
                let mut bytes = e.data.to_vec();
                bytes[0] ^= 0xFF;
                e.data = Bytes::from(bytes);
                true
            }
            _ => false,
        }
    }

    /// Evict a chunk regardless of its reference count (quarantine of a
    /// corrupt chunk: the bytes no longer match the key, so every reference
    /// is equally broken and repair must re-replicate from a good copy).
    /// Returns `true` if the chunk was present.
    pub fn remove(&mut self, fp: &Fingerprint) -> bool {
        if let Some(e) = self.chunks.remove(fp) {
            self.bytes_stored -= e.data.len() as u64;
            true
        } else {
            false
        }
    }

    /// Drop everything (models device loss during a node failure).
    pub fn wipe(&mut self) {
        self.chunks.clear();
        self.bytes_stored = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::synthetic(n)
    }

    #[test]
    fn put_dedups_and_refcounts() {
        let mut s = ChunkStore::new();
        assert!(s.put(fp(1), Bytes::from_static(b"aaaa")));
        assert!(!s.put(fp(1), Bytes::from_static(b"aaaa")));
        assert_eq!(s.refs(&fp(1)), 2);
        assert_eq!(s.chunk_count(), 1);
        assert_eq!(s.bytes_stored(), 4);
        assert_eq!(s.bytes_written(), 4, "duplicate put must not rewrite");
    }

    #[test]
    fn release_evicts_at_zero() {
        let mut s = ChunkStore::new();
        s.put(fp(1), Bytes::from_static(b"xy"));
        s.put(fp(1), Bytes::from_static(b"xy"));
        assert!(!s.release(&fp(1)));
        assert!(s.contains(&fp(1)));
        assert!(s.release(&fp(1)));
        assert!(!s.contains(&fp(1)));
        assert_eq!(s.bytes_stored(), 0);
        assert_eq!(s.bytes_written(), 2, "written is cumulative");
    }

    #[test]
    fn release_unknown_is_noop() {
        let mut s = ChunkStore::new();
        assert!(!s.release(&fp(9)));
    }

    #[test]
    fn get_returns_stored_bytes() {
        let mut s = ChunkStore::new();
        s.put(fp(3), Bytes::from_static(b"data"));
        assert_eq!(s.get(&fp(3)).unwrap(), Bytes::from_static(b"data"));
        assert!(s.get(&fp(4)).is_none());
    }

    #[test]
    fn wipe_clears_content_not_write_history() {
        let mut s = ChunkStore::new();
        s.put(fp(1), Bytes::from_static(b"abcd"));
        s.wipe();
        assert_eq!(s.chunk_count(), 0);
        assert_eq!(s.bytes_stored(), 0);
        assert_eq!(s.bytes_written(), 4);
    }

    #[test]
    fn corrupt_flips_bytes_in_place() {
        let mut s = ChunkStore::new();
        s.put(fp(1), Bytes::from_static(b"good"));
        assert!(s.corrupt(&fp(1)));
        let data = s.get(&fp(1)).unwrap();
        assert_eq!(data.len(), 4, "bit-rot preserves length");
        assert_ne!(data, Bytes::from_static(b"good"));
        assert!(!s.corrupt(&fp(9)), "unknown chunk cannot be corrupted");
    }

    #[test]
    fn remove_evicts_regardless_of_refs() {
        let mut s = ChunkStore::new();
        s.put(fp(1), Bytes::from_static(b"xy"));
        s.put(fp(1), Bytes::from_static(b"xy"));
        assert_eq!(s.refs(&fp(1)), 2);
        assert!(s.remove(&fp(1)));
        assert!(!s.contains(&fp(1)));
        assert_eq!(s.bytes_stored(), 0);
        assert!(!s.remove(&fp(1)), "second remove is a no-op");
    }

    #[test]
    fn entries_expose_data_for_scrubbing() {
        let mut s = ChunkStore::new();
        s.put(fp(1), Bytes::from_static(b"aa"));
        s.put(fp(2), Bytes::from_static(b"bbb"));
        let total: usize = s.entries().map(|(_, d)| d.len()).sum();
        assert_eq!(total, 5);
        assert_eq!(s.entries().count(), 2);
    }

    #[test]
    fn fingerprint_iteration_covers_all() {
        let mut s = ChunkStore::new();
        for n in 0..10 {
            s.put(fp(n), Bytes::from(vec![n as u8; 3]));
        }
        let mut got: Vec<u64> = s.fingerprints().map(|f| f.prefix64()).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = (0..10).map(|n| fp(n).prefix64()).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
