//! Dump manifests: the recipe for reassembling a rank's dataset.
//!
//! A collective dump stores each rank's buffer as an ordered list of chunk
//! fingerprints plus each chunk's byte length. The manifest is what makes
//! the paper's scheme *recoverable*: a rank may have discarded chunks that
//! K other ranks were designated to hold, so restart needs the fingerprint
//! list to know what to fetch. The paper leaves the restore path implicit;
//! we replicate manifests to the same partners as data so a failed node's
//! dataset remains reconstructible.
//!
//! Chunk geometry is an explicit per-chunk length list, not a fixed chunk
//! size: content-defined chunkers emit variable-length chunks, and the
//! fixed chunker is just the special case where every length but the tail
//! is equal. (Earlier manifest versions stored a single `chunk_size`; the
//! wire format changed with the length list — see DESIGN.md §14.)

use std::fmt;

use replidedup_hash::Fingerprint;
use replidedup_mpi::wire::{Wire, WireError, WireResult};

/// Identifies one collective dump generation (checkpoint number).
pub type DumpId = u64;

/// An internally inconsistent manifest: a recipe that could never
/// reassemble the buffer it claims to describe. Returned by
/// [`Manifest::validate`] and carried inside
/// [`crate::StorageError::InvalidManifest`] when ingest rejects one.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ManifestError {
    /// The fingerprint list and the length list differ in size: every
    /// chunk needs exactly one length.
    LengthCountMismatch {
        /// Rank whose manifest is malformed.
        owner_rank: u32,
        /// Dump generation of the malformed manifest.
        dump_id: DumpId,
        /// Number of fingerprints the manifest lists.
        chunks: u64,
        /// Number of per-chunk lengths the manifest lists.
        lens: u64,
    },
    /// The per-chunk lengths do not sum to `total_len`: the recipe cannot
    /// tile the buffer it claims to describe.
    LengthSumMismatch {
        /// Rank whose manifest is malformed.
        owner_rank: u32,
        /// Dump generation of the malformed manifest.
        dump_id: DumpId,
        /// Sum of the listed chunk lengths.
        sum: u64,
        /// The buffer length the manifest claims.
        total_len: u64,
    },
    /// A listed chunk has length zero: chunkers never emit empty chunks.
    ZeroLengthChunk {
        /// Rank whose manifest is malformed.
        owner_rank: u32,
        /// Dump generation of the malformed manifest.
        dump_id: DumpId,
        /// Index of the zero-length chunk.
        index: u64,
    },
    /// The coded-chunk list is inconsistent: an index out of range, not
    /// strictly increasing, or coded chunks listed without a Reed-Solomon
    /// geometry to decode them with.
    InvalidCoded {
        /// Rank whose manifest is malformed.
        owner_rank: u32,
        /// Dump generation of the malformed manifest.
        dump_id: DumpId,
        /// What the coded-list validation rejected.
        reason: &'static str,
    },
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::LengthCountMismatch {
                owner_rank,
                dump_id,
                chunks,
                lens,
            } => write!(
                f,
                "manifest of rank {owner_rank} dump {dump_id} lists {chunks} chunks \
                 but {lens} chunk lengths"
            ),
            ManifestError::LengthSumMismatch {
                owner_rank,
                dump_id,
                sum,
                total_len,
            } => write!(
                f,
                "manifest of rank {owner_rank} dump {dump_id} chunk lengths sum to \
                 {sum} but claims total length {total_len}"
            ),
            ManifestError::ZeroLengthChunk {
                owner_rank,
                dump_id,
                index,
            } => write!(
                f,
                "manifest of rank {owner_rank} dump {dump_id} lists a zero-length \
                 chunk at index {index}"
            ),
            ManifestError::InvalidCoded {
                owner_rank,
                dump_id,
                reason,
            } => write!(
                f,
                "manifest of rank {owner_rank} dump {dump_id} has an invalid \
                 coded-chunk list: {reason}"
            ),
        }
    }
}

impl std::error::Error for ManifestError {}

/// Ordered chunk recipe for one rank's buffer in one dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Rank whose buffer this manifest describes.
    pub owner_rank: u32,
    /// Dump generation.
    pub dump_id: DumpId,
    /// Total buffer length in bytes.
    pub total_len: u64,
    /// Fingerprints of the chunks, in buffer order.
    pub chunks: Vec<Fingerprint>,
    /// Byte length of each chunk, parallel to `chunks`. Variable when the
    /// dump used a content-defined chunker.
    pub chunk_lens: Vec<u32>,
    /// Reed-Solomon geometry `(k, m)` in effect when a coded redundancy
    /// policy dumped this generation; `None` for pure replication. Restore
    /// uses it to know reconstruction is worth attempting before declaring
    /// a chunk lost.
    pub rs: Option<(u8, u8)>,
    /// Indices into `chunks` stored as erasure-coded stripes instead of
    /// replicas, strictly increasing. Empty under pure replication — and
    /// for every chunk whose naturally distributed copies were credited
    /// against stripe redundancy (those stay replicated).
    pub coded: Vec<u64>,
}

impl Manifest {
    /// Manifest for a fixed-stride dump: every chunk is `chunk_size` bytes
    /// except a possibly shorter tail. Mirrors the pre-CDC manifest shape;
    /// mostly a convenience for tests and fixed-chunking callers.
    pub fn fixed_stride(
        owner_rank: u32,
        dump_id: DumpId,
        chunk_size: u32,
        total_len: u64,
        chunks: Vec<Fingerprint>,
    ) -> Self {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let mut chunk_lens = Vec::with_capacity(chunks.len());
        let mut remaining = total_len;
        while remaining > 0 {
            let len = remaining.min(u64::from(chunk_size)) as u32;
            chunk_lens.push(len);
            remaining -= u64::from(len);
        }
        Self {
            owner_rank,
            dump_id,
            total_len,
            chunks,
            chunk_lens,
            rs: None,
            coded: Vec::new(),
        }
    }

    /// Is chunk `i` stored as an erasure-coded stripe?
    pub fn is_coded(&self, i: usize) -> bool {
        self.coded.binary_search(&(i as u64)).is_ok()
    }

    /// Byte length of chunk `i`.
    pub fn chunk_len(&self, i: usize) -> usize {
        self.chunk_lens[i] as usize
    }

    /// Validate internal consistency (length list vs. fingerprints and
    /// total length).
    pub fn validate(&self) -> Result<(), ManifestError> {
        if self.chunks.len() != self.chunk_lens.len() {
            return Err(ManifestError::LengthCountMismatch {
                owner_rank: self.owner_rank,
                dump_id: self.dump_id,
                chunks: self.chunks.len() as u64,
                lens: self.chunk_lens.len() as u64,
            });
        }
        if let Some(index) = self.chunk_lens.iter().position(|&l| l == 0) {
            return Err(ManifestError::ZeroLengthChunk {
                owner_rank: self.owner_rank,
                dump_id: self.dump_id,
                index: index as u64,
            });
        }
        let sum: u64 = self.chunk_lens.iter().map(|&l| u64::from(l)).sum();
        if sum != self.total_len {
            return Err(ManifestError::LengthSumMismatch {
                owner_rank: self.owner_rank,
                dump_id: self.dump_id,
                sum,
                total_len: self.total_len,
            });
        }
        let invalid_coded = |reason| ManifestError::InvalidCoded {
            owner_rank: self.owner_rank,
            dump_id: self.dump_id,
            reason,
        };
        if !self.coded.is_empty() && self.rs.is_none() {
            return Err(invalid_coded("coded chunks without an RS geometry"));
        }
        if let Some((k, m)) = self.rs {
            if k == 0 || m == 0 {
                return Err(invalid_coded("degenerate RS geometry"));
            }
        }
        if !self.coded.windows(2).all(|w| w[0] < w[1]) {
            return Err(invalid_coded("coded indices not strictly increasing"));
        }
        if self
            .coded
            .last()
            .is_some_and(|&i| i >= self.chunks.len() as u64)
        {
            return Err(invalid_coded("coded index out of range"));
        }
        Ok(())
    }
}

impl Wire for Manifest {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.owner_rank.encode(buf);
        self.dump_id.encode(buf);
        self.total_len.encode(buf);
        self.chunks.encode(buf);
        self.chunk_lens.encode(buf);
        self.rs.encode(buf);
        self.coded.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        let m = Manifest {
            owner_rank: u32::decode(input)?,
            dump_id: u64::decode(input)?,
            total_len: u64::decode(input)?,
            chunks: Vec::decode(input)?,
            chunk_lens: Vec::decode(input)?,
            rs: Option::decode(input)?,
            coded: Vec::decode(input)?,
        };
        if m.validate().is_err() {
            return Err(WireError::Malformed { what: "Manifest" });
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest::fixed_stride(
            3,
            7,
            4,
            10,
            vec![
                Fingerprint::synthetic(1),
                Fingerprint::synthetic(2),
                Fingerprint::synthetic(3),
            ],
        )
    }

    #[test]
    fn chunk_len_handles_tail() {
        let m = sample();
        assert_eq!(m.chunk_len(0), 4);
        assert_eq!(m.chunk_len(1), 4);
        assert_eq!(m.chunk_len(2), 2);
        assert_eq!(m.chunk_lens, vec![4, 4, 2]);
    }

    #[test]
    fn validate_accepts_consistent() {
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn variable_lengths_are_first_class() {
        let m = Manifest {
            owner_rank: 1,
            dump_id: 2,
            total_len: 70,
            chunks: vec![
                Fingerprint::synthetic(1),
                Fingerprint::synthetic(2),
                Fingerprint::synthetic(3),
            ],
            chunk_lens: vec![50, 13, 7],
            rs: None,
            coded: vec![],
        };
        assert!(m.validate().is_ok());
        assert_eq!(m.chunk_len(1), 13);
    }

    #[test]
    fn validate_rejects_mismatched_length_count() {
        let mut m = sample();
        m.chunks.pop();
        assert_eq!(
            m.validate(),
            Err(ManifestError::LengthCountMismatch {
                owner_rank: 3,
                dump_id: 7,
                chunks: 2,
                lens: 3,
            })
        );
    }

    #[test]
    fn validate_rejects_wrong_length_sum() {
        let mut m = sample();
        m.total_len = 100;
        assert_eq!(
            m.validate(),
            Err(ManifestError::LengthSumMismatch {
                owner_rank: 3,
                dump_id: 7,
                sum: 10,
                total_len: 100,
            })
        );
    }

    #[test]
    fn validate_rejects_zero_length_chunk() {
        let mut m = sample();
        m.chunk_lens[1] = 0;
        m.total_len = 6;
        assert_eq!(
            m.validate(),
            Err(ManifestError::ZeroLengthChunk {
                owner_rank: 3,
                dump_id: 7,
                index: 1,
            })
        );
    }

    #[test]
    fn manifest_error_display_names_the_owner() {
        let mut m = sample();
        m.chunks.pop();
        let msg = m.validate().unwrap_err().to_string();
        assert!(msg.contains("rank 3") && msg.contains("dump 7"), "{msg}");
        let mut m = sample();
        m.total_len = 100;
        let msg = m.validate().unwrap_err().to_string();
        assert!(msg.contains("100"), "{msg}");
    }

    #[test]
    fn empty_buffer_manifest_is_valid() {
        let m = Manifest::fixed_stride(0, 0, 4096, 0, vec![]);
        assert!(m.validate().is_ok());
        assert!(m.chunk_lens.is_empty());
    }

    #[test]
    fn wire_roundtrip() {
        let m = sample();
        let bytes = m.to_bytes();
        assert_eq!(Manifest::from_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn wire_roundtrip_variable_lengths() {
        let m = Manifest {
            owner_rank: 9,
            dump_id: 4,
            total_len: 31,
            chunks: vec![Fingerprint::synthetic(8), Fingerprint::synthetic(9)],
            chunk_lens: vec![17, 14],
            rs: Some((4, 2)),
            coded: vec![0],
        };
        let bytes = m.to_bytes();
        assert_eq!(Manifest::from_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn validate_rejects_inconsistent_coded_metadata() {
        // Coded indices without a geometry to decode them.
        let mut m = sample();
        m.coded = vec![0];
        assert!(matches!(
            m.validate(),
            Err(ManifestError::InvalidCoded { .. })
        ));
        // Degenerate geometry.
        let mut m = sample();
        m.rs = Some((0, 2));
        assert!(matches!(
            m.validate(),
            Err(ManifestError::InvalidCoded { .. })
        ));
        // Out-of-order (and duplicate) coded indices.
        let mut m = sample();
        m.rs = Some((4, 2));
        m.coded = vec![1, 1];
        assert!(matches!(
            m.validate(),
            Err(ManifestError::InvalidCoded { .. })
        ));
        // Coded index past the chunk list.
        let mut m = sample();
        m.rs = Some((4, 2));
        m.coded = vec![3];
        assert!(matches!(
            m.validate(),
            Err(ManifestError::InvalidCoded { .. })
        ));
        // A consistent coded manifest passes.
        let mut m = sample();
        m.rs = Some((4, 2));
        m.coded = vec![0, 2];
        assert!(m.validate().is_ok());
    }

    #[test]
    fn wire_rejects_inconsistent_manifest() {
        let mut m = sample();
        m.total_len = 100; // lengths no longer sum to the claimed total
        let mut buf = Vec::new();
        m.owner_rank.encode(&mut buf);
        m.dump_id.encode(&mut buf);
        m.total_len.encode(&mut buf);
        m.chunks.encode(&mut buf);
        m.chunk_lens.encode(&mut buf);
        m.rs.encode(&mut buf);
        m.coded.encode(&mut buf);
        assert!(matches!(
            Manifest::from_bytes(&buf),
            Err(WireError::Malformed { what: "Manifest" })
        ));
    }
}
