//! Dump manifests: the recipe for reassembling a rank's dataset.
//!
//! A collective dump stores each rank's buffer as an ordered list of chunk
//! fingerprints plus the buffer length (the tail chunk may be short). The
//! manifest is what makes the paper's scheme *recoverable*: a rank may have
//! discarded chunks that K other ranks were designated to hold, so restart
//! needs the fingerprint list to know what to fetch. The paper leaves the
//! restore path implicit; we replicate manifests to the same partners as
//! data so a failed node's dataset remains reconstructible.

use std::fmt;

use replidedup_hash::Fingerprint;
use replidedup_mpi::wire::{Wire, WireError, WireResult};

/// Identifies one collective dump generation (checkpoint number).
pub type DumpId = u64;

/// An internally inconsistent manifest: a recipe that could never
/// reassemble the buffer it claims to describe. Returned by
/// [`Manifest::validate`] and carried inside
/// [`crate::StorageError::InvalidManifest`] when ingest rejects one.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ManifestError {
    /// `chunk_size` is zero: no buffer can be split into zero-byte chunks.
    ZeroChunkSize {
        /// Rank whose manifest is malformed.
        owner_rank: u32,
        /// Dump generation of the malformed manifest.
        dump_id: DumpId,
    },
    /// The fingerprint list disagrees with `total_len` / `chunk_size`.
    ChunkCountMismatch {
        /// Rank whose manifest is malformed.
        owner_rank: u32,
        /// Dump generation of the malformed manifest.
        dump_id: DumpId,
        /// Number of fingerprints the manifest lists.
        listed: u64,
        /// Number `total_len` and `chunk_size` require.
        expected: u64,
    },
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::ZeroChunkSize {
                owner_rank,
                dump_id,
            } => write!(
                f,
                "manifest of rank {owner_rank} dump {dump_id} has chunk_size 0"
            ),
            ManifestError::ChunkCountMismatch {
                owner_rank,
                dump_id,
                listed,
                expected,
            } => write!(
                f,
                "manifest of rank {owner_rank} dump {dump_id} lists {listed} chunks \
                 but its length and chunk size require {expected}"
            ),
        }
    }
}

impl std::error::Error for ManifestError {}

/// Ordered chunk recipe for one rank's buffer in one dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Rank whose buffer this manifest describes.
    pub owner_rank: u32,
    /// Dump generation.
    pub dump_id: DumpId,
    /// Chunk size used when the buffer was split.
    pub chunk_size: u32,
    /// Total buffer length in bytes (the last chunk may be shorter than
    /// `chunk_size`).
    pub total_len: u64,
    /// Fingerprints of the chunks, in buffer order.
    pub chunks: Vec<Fingerprint>,
}

impl Manifest {
    /// Expected byte length of chunk `i`.
    pub fn chunk_len(&self, i: usize) -> usize {
        let cs = self.chunk_size as u64;
        let start = i as u64 * cs;
        let end = (start + cs).min(self.total_len);
        (end - start) as usize
    }

    /// Validate internal consistency (chunk count vs. length).
    pub fn validate(&self) -> Result<(), ManifestError> {
        if self.chunk_size == 0 {
            return Err(ManifestError::ZeroChunkSize {
                owner_rank: self.owner_rank,
                dump_id: self.dump_id,
            });
        }
        let expected = self.total_len.div_ceil(u64::from(self.chunk_size));
        if expected != self.chunks.len() as u64 {
            return Err(ManifestError::ChunkCountMismatch {
                owner_rank: self.owner_rank,
                dump_id: self.dump_id,
                listed: self.chunks.len() as u64,
                expected,
            });
        }
        Ok(())
    }
}

impl Wire for Manifest {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.owner_rank.encode(buf);
        self.dump_id.encode(buf);
        self.chunk_size.encode(buf);
        self.total_len.encode(buf);
        self.chunks.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        let m = Manifest {
            owner_rank: u32::decode(input)?,
            dump_id: u64::decode(input)?,
            chunk_size: u32::decode(input)?,
            total_len: u64::decode(input)?,
            chunks: Vec::decode(input)?,
        };
        if m.validate().is_err() {
            return Err(WireError::Malformed { what: "Manifest" });
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            owner_rank: 3,
            dump_id: 7,
            chunk_size: 4,
            total_len: 10,
            chunks: vec![
                Fingerprint::synthetic(1),
                Fingerprint::synthetic(2),
                Fingerprint::synthetic(3),
            ],
        }
    }

    #[test]
    fn chunk_len_handles_tail() {
        let m = sample();
        assert_eq!(m.chunk_len(0), 4);
        assert_eq!(m.chunk_len(1), 4);
        assert_eq!(m.chunk_len(2), 2);
    }

    #[test]
    fn validate_accepts_consistent() {
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn validate_rejects_wrong_chunk_count() {
        let mut m = sample();
        m.chunks.pop();
        assert_eq!(
            m.validate(),
            Err(ManifestError::ChunkCountMismatch {
                owner_rank: 3,
                dump_id: 7,
                listed: 2,
                expected: 3,
            })
        );
    }

    #[test]
    fn validate_rejects_zero_chunk_size() {
        let mut m = sample();
        m.chunk_size = 0;
        assert_eq!(
            m.validate(),
            Err(ManifestError::ZeroChunkSize {
                owner_rank: 3,
                dump_id: 7,
            })
        );
    }

    #[test]
    fn manifest_error_display_names_the_owner() {
        let mut m = sample();
        m.chunks.pop();
        let msg = m.validate().unwrap_err().to_string();
        assert!(msg.contains("rank 3") && msg.contains("dump 7"), "{msg}");
        m.chunk_size = 0;
        let msg = m.validate().unwrap_err().to_string();
        assert!(msg.contains("chunk_size 0"), "{msg}");
    }

    #[test]
    fn empty_buffer_manifest_is_valid() {
        let m = Manifest {
            owner_rank: 0,
            dump_id: 0,
            chunk_size: 4096,
            total_len: 0,
            chunks: vec![],
        };
        assert!(m.validate().is_ok());
    }

    #[test]
    fn wire_roundtrip() {
        let m = sample();
        let bytes = m.to_bytes();
        assert_eq!(Manifest::from_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn wire_rejects_inconsistent_manifest() {
        let mut m = sample();
        m.total_len = 100; // now chunk count is wrong
        let mut buf = Vec::new();
        m.owner_rank.encode(&mut buf);
        m.dump_id.encode(&mut buf);
        m.chunk_size.encode(&mut buf);
        m.total_len.encode(&mut buf);
        m.chunks.encode(&mut buf);
        assert!(matches!(
            Manifest::from_bytes(&buf),
            Err(WireError::Malformed { what: "Manifest" })
        ));
    }
}
