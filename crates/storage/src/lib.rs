//! Node-local storage substrate for `replidedup`.
//!
//! Models the paper's storage layer: every compute node has a local device
//! (1 TB HDD on the Shamrock testbed) that holds chunks and manifests, is
//! shared by the ranks placed on that node, and can fail — losing its
//! contents. The collective replication scheme in `replidedup-core` writes
//! into this layer; restore reads back from surviving nodes.
//!
//! * [`ChunkStore`] — content-addressed, refcounted chunk storage,
//! * [`Manifest`] — the ordered fingerprint recipe of one rank's buffer,
//! * [`Cluster`] / [`Placement`] — node topology, failure injection,
//!   cluster-wide accounting (unique bytes, physical copy counts),
//! * [`StripeKey`] / [`ShardMeta`] — erasure-coded shards at rest, with
//!   cluster-wide stripe reconstruction from any `k` survivors,
//! * [`ScrubReport`] / [`Cluster::scrub`] — integrity scrubbing: re-hash
//!   every chunk against its key, cross-check manifests vs. presence.

pub mod cluster;
pub mod manifest;
pub mod scrub;
pub mod shard;
pub mod store;

pub use cluster::{
    Cluster, GcStats, NodeId, NodeState, Placement, SessionId, StorageError, StorageResult,
};
pub use manifest::{DumpId, Manifest, ManifestError};
pub use scrub::ScrubReport;
pub use shard::{ShardMeta, StoredShard, StripeKey};
pub use store::ChunkStore;
