//! Integrity scrubbing: verify that the bytes behind every fingerprint are
//! still the bytes that were written.
//!
//! The paper's replication scheme survives *losing* devices; it never
//! checks that surviving devices still hold what they claim. A chunk store
//! is content-addressed, so the check is self-contained: re-hash every
//! stored chunk and compare against its key. On top of that per-chunk
//! check, the scrubber cross-references the node's manifests against its
//! chunk presence, classifying every inconsistency:
//!
//! * **corrupt** — a chunk whose bytes no longer hash to its key (bit-rot),
//! * **dangling** — a manifest referencing a chunk the node does not hold
//!   (a broken recipe: restore from this node alone would fail),
//! * **length mismatch** — a held chunk whose stored byte count disagrees
//!   with the manifest's per-chunk length (a truncated or padded write;
//!   chunks are variable-length under CDC, so the check reads each
//!   manifest's explicit length list, never a fixed chunk size),
//! * **orphan** — a chunk no manifest on the node references (leaked space;
//!   harmless to correctness, reclaimable).
//!
//! Raw `no-dedup` blobs carry no integrity key, so scrub can only confirm
//! their presence, not their content — one more reason the paper's
//! dedup'd format is the robust one.
//!
//! Scrubbing is node-local and lock-coupled: one pass under the node lock
//! yields a consistent snapshot. The collective wrapper (repair in
//! `replidedup-core`) aggregates per-node reports into a cluster view.

use std::collections::BTreeMap;

use bytes::Bytes;
use replidedup_ec::RsCode;
use replidedup_hash::{ChunkHasher, Fingerprint, FpHashSet};
use replidedup_mpi::wire::{Wire, WireResult};

use crate::cluster::{Cluster, NodeId, StorageResult};
use crate::manifest::DumpId;
use crate::shard::{StoredShard, StripeKey};

/// What one scrub pass found. Reports from several nodes merge into a
/// cluster-wide view with [`ScrubReport::merge`]; every finding carries its
/// node id so merged reports stay attributable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ScrubReport {
    /// Chunks re-hashed across the scrubbed node(s).
    pub chunks_checked: u64,
    /// Corrupt chunks: `(node, fingerprint)` whose bytes no longer hash to
    /// the key. Sorted, deduplicated.
    pub corrupt: Vec<(NodeId, Fingerprint)>,
    /// Dangling manifest references: `(node, owner_rank, dump_id,
    /// fingerprint)` listed by a manifest on `node` but absent from its
    /// store. Sorted, deduplicated.
    pub dangling: Vec<(NodeId, u32, DumpId, Fingerprint)>,
    /// Held chunks whose stored length disagrees with the manifest's
    /// per-chunk length list: `(node, owner_rank, dump_id, fingerprint)`.
    /// Sorted, deduplicated.
    pub length_mismatch: Vec<(NodeId, u32, DumpId, Fingerprint)>,
    /// Orphaned chunks: `(node, fingerprint)` held by `node` but referenced
    /// by none of its manifests. Sorted, deduplicated.
    pub orphans: Vec<(NodeId, Fingerprint)>,
    /// Erasure-coded shards examined by the cluster-wide stripe pass
    /// ([`Cluster::scrub_stripes`]).
    pub shards_checked: u64,
    /// Shards inconsistent with their stripe: `(node, stripe, shard
    /// index)` whose bytes disagree with the parity re-encoded from the
    /// data shards. A single corrupt data shard is located exactly when
    /// the stripe's redundancy allows it (a chunk stripe's payload hash,
    /// or a second parity shard); otherwise the disagreeing parity copies
    /// are flagged. Sorted, deduplicated.
    pub stripe_mismatches: Vec<(NodeId, StripeKey, u8)>,
}

impl ScrubReport {
    /// No findings of any class (checked counts do not matter).
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty()
            && self.dangling.is_empty()
            && self.length_mismatch.is_empty()
            && self.orphans.is_empty()
            && self.stripe_mismatches.is_empty()
    }

    /// Fold another report (typically from another node) into this one,
    /// keeping every finding list sorted and deduplicated so merged
    /// reports compare deterministically regardless of merge order.
    pub fn merge(&mut self, other: &ScrubReport) {
        self.chunks_checked += other.chunks_checked;
        self.corrupt.extend_from_slice(&other.corrupt);
        self.corrupt.sort_unstable();
        self.corrupt.dedup();
        self.dangling.extend_from_slice(&other.dangling);
        self.dangling.sort_unstable();
        self.dangling.dedup();
        self.length_mismatch
            .extend_from_slice(&other.length_mismatch);
        self.length_mismatch.sort_unstable();
        self.length_mismatch.dedup();
        self.orphans.extend_from_slice(&other.orphans);
        self.orphans.sort_unstable();
        self.orphans.dedup();
        self.shards_checked += other.shards_checked;
        self.stripe_mismatches
            .extend_from_slice(&other.stripe_mismatches);
        self.stripe_mismatches.sort_unstable();
        self.stripe_mismatches.dedup();
    }
}

impl Wire for ScrubReport {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.chunks_checked.encode(buf);
        self.corrupt.encode(buf);
        self.dangling.encode(buf);
        self.length_mismatch.encode(buf);
        self.orphans.encode(buf);
        self.shards_checked.encode(buf);
        self.stripe_mismatches.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        Ok(ScrubReport {
            chunks_checked: u64::decode(input)?,
            corrupt: Vec::decode(input)?,
            dangling: Vec::decode(input)?,
            length_mismatch: Vec::decode(input)?,
            orphans: Vec::decode(input)?,
            shards_checked: u64::decode(input)?,
            stripe_mismatches: Vec::decode(input)?,
        })
    }
}

impl Cluster {
    /// Scrub one node: re-hash every stored chunk against its fingerprint
    /// key with `hasher` (which must be the hasher the chunks were written
    /// with) and cross-check the node's manifests — across *all* dump
    /// generations — against chunk presence. Runs under the node lock, so
    /// the report is a consistent snapshot. Fails with
    /// [`crate::StorageError::NodeDown`] when the node is dead: a wiped
    /// device has nothing to scrub.
    ///
    /// Detection only — quarantining and re-replication are repair's job
    /// (`replidedup-core`), which is also what clears a dirty report.
    pub fn scrub(&self, node: NodeId, hasher: &dyn ChunkHasher) -> StorageResult<ScrubReport> {
        self.with_node(node, |state| {
            let mut report = ScrubReport::default();

            // Pass 1: re-hash every chunk against its key.
            for (fp, data) in state.store.entries() {
                report.chunks_checked += 1;
                if hasher.fingerprint(data) != *fp {
                    report.corrupt.push((node, *fp));
                }
            }

            // Pass 2: manifests vs. chunk presence and geometry.
            // `referenced` collects every fingerprint any manifest on this
            // node lists, so the orphan pass below is a set difference.
            // Held chunks are re-checked against the manifest's explicit
            // per-chunk length — chunks are variable-length under CDC, so
            // the stored byte count must match the recipe's, or restore
            // would reassemble a buffer of the wrong shape.
            let mut referenced = FpHashSet::default();
            for ((owner, dump_id), m) in &state.manifests {
                for (i, fp) in m.chunks.iter().enumerate() {
                    referenced.insert(*fp);
                    // Coded chunks live as stripe shards, not replicas:
                    // absence here is by design, and their integrity is
                    // [`Cluster::scrub_stripes`]' job. (Still `referenced`,
                    // so a restore-reseeded copy is not an orphan.)
                    if m.coded.binary_search(&(i as u64)).is_ok() {
                        continue;
                    }
                    match state.store.get(fp) {
                        None => report.dangling.push((node, *owner, *dump_id, *fp)),
                        Some(data) if data.len() != m.chunk_len(i) => {
                            report.length_mismatch.push((node, *owner, *dump_id, *fp));
                        }
                        Some(_) => {}
                    }
                }
            }

            // Pass 3: chunks no manifest references. (Blobs are opaque —
            // no key to verify, no chunk references to cross-check.)
            for (fp, _) in state.store.entries() {
                if !referenced.contains(fp) {
                    report.orphans.push((node, *fp));
                }
            }

            report.corrupt.sort_unstable();
            report.corrupt.dedup();
            report.dangling.sort_unstable();
            report.dangling.dedup();
            report.length_mismatch.sort_unstable();
            report.length_mismatch.dedup();
            report.orphans.sort_unstable();
            report.orphans.dedup();
            Ok(report)
        })?
    }

    /// Verify parity consistency of every erasure-coded stripe across the
    /// cluster. Stripes are inherently cross-node (shards of one stripe
    /// live on distinct devices), so unlike [`Cluster::scrub`] this pass is
    /// cluster-wide; the repair collective runs it once on the lowest live
    /// rank and folds the findings into the merged report.
    ///
    /// For each stripe whose `k` data shards all survive, the parity is
    /// re-encoded and compared against the stored parity shards. A lone
    /// corrupt *data* shard is located exactly when the redundancy allows
    /// it (chunk stripes re-hash the decoded payload against the
    /// fingerprint key; any stripe with a second parity shard uses parity
    /// consensus); otherwise the disagreeing parity copies are flagged.
    /// Stripes with missing shards are repair's reconstruction problem,
    /// not scrub's. Like blob replicas, blob stripes with `m == 1` carry
    /// too little redundancy to attribute a data-shard error.
    pub fn scrub_stripes(&self, hasher: &dyn ChunkHasher) -> ScrubReport {
        let mut report = ScrubReport::default();
        let mut stripes: BTreeMap<StripeKey, Vec<(NodeId, StoredShard)>> = BTreeMap::new();
        for node in 0..self.node_count() {
            let held = self
                .with_node(node, |n| {
                    n.shards
                        .iter()
                        .map(|((key, _), s)| (*key, s.clone()))
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default();
            for (key, s) in held {
                stripes.entry(key).or_default().push((node, s));
            }
        }
        for (key, copies) in stripes {
            report.shards_checked += copies.len() as u64;
            verify_stripe(hasher, &mut report, key, &copies);
        }
        report.stripe_mismatches.sort_unstable();
        report.stripe_mismatches.dedup();
        report
    }
}

/// Check one stripe's copies for internal consistency, pushing findings
/// into `report.stripe_mismatches`.
fn verify_stripe(
    hasher: &dyn ChunkHasher,
    report: &mut ScrubReport,
    key: StripeKey,
    copies: &[(NodeId, StoredShard)],
) {
    let Some((_, first)) = copies.first() else {
        return;
    };
    let (k, m, len64) = (first.meta.k, first.meta.m, first.meta.total_len);
    let Ok(total_len) = usize::try_from(len64) else {
        return;
    };
    let Ok(code) = RsCode::new(k, m) else {
        // Degenerate geometry slipped past the wire validation: every
        // shard claiming it is suspect.
        for (node, s) in copies {
            report.stripe_mismatches.push((*node, key, s.meta.index));
        }
        return;
    };
    // Shards disagreeing with the stripe's (first-seen) geometry are
    // flagged outright; the consensus set continues below.
    let mut consistent: Vec<(NodeId, &StoredShard)> = Vec::new();
    for (node, s) in copies {
        if s.meta.k == k && s.meta.m == m && s.meta.total_len == len64 {
            consistent.push((*node, s));
        } else {
            report.stripe_mismatches.push((*node, key, s.meta.index));
        }
    }
    // One representative copy per index (lowest node wins, matching
    // `Cluster::gather_shards`).
    let mut by_index: BTreeMap<u8, (NodeId, &StoredShard)> = BTreeMap::new();
    for (node, s) in &consistent {
        by_index.entry(s.meta.index).or_insert((*node, s));
    }
    if !(0..k).all(|i| by_index.contains_key(&i)) {
        return; // missing shards are reconstruction's job
    }
    let survivors: Vec<(u8, &[u8])> = (0..k)
        .map(|i| {
            (
                i,
                by_index
                    .get(&i)
                    .map(|(_, s)| s.data.as_ref())
                    .unwrap_or_default(),
            )
        })
        .collect();
    let Ok(payload) = code.decode(&survivors, total_len) else {
        return;
    };
    let payload = Bytes::from(payload);
    let expected = code.encode(&payload);
    let mismatched: Vec<(NodeId, u8)> = consistent
        .iter()
        .filter(|(_, s)| {
            expected
                .get(s.meta.index as usize)
                .map(|want| want.as_ref() != s.data.as_ref())
                .unwrap_or(true)
        })
        .map(|(node, s)| (*node, s.meta.index))
        .collect();
    let payload_hash_ok = match key {
        StripeKey::Chunk(fp) => hasher.fingerprint(&payload) == fp,
        StripeKey::Blob { .. } => true, // blobs carry no integrity key
    };
    if mismatched.is_empty() {
        if !payload_hash_ok {
            // The stripe is self-consistent but encodes the wrong bytes:
            // the data shards were corrupted in concert (or before
            // encoding). Nothing to reconstruct from — flag all data.
            for (node, s) in &consistent {
                if !s.meta.is_parity() {
                    report.stripe_mismatches.push((*node, key, s.meta.index));
                }
            }
        }
        return;
    }
    // Parity disagrees with the data shards. Try to pin it on a single
    // corrupt data shard: drop each data shard in turn, decode from the
    // remaining k-1 plus the lowest parity shard, and accept the candidate
    // whose repaired stripe satisfies every stored parity copy (and, for
    // chunk stripes, the payload hash). Needs an error oracle: the chunk
    // fingerprint, or for blobs at least two surviving parity shards.
    let surviving_parity = by_index.range(k..).count();
    let try_locate = match key {
        StripeKey::Chunk(_) => !payload_hash_ok,
        StripeKey::Blob { .. } => surviving_parity >= 2,
    };
    if try_locate {
        for suspect in 0..k {
            let mut alt: Vec<(u8, &[u8])> = survivors
                .iter()
                .filter(|(i, _)| *i != suspect)
                .copied()
                .collect();
            let Some((_, parity)) = by_index.range(k..).next().map(|(_, v)| *v) else {
                break;
            };
            alt.push((parity.meta.index, parity.data.as_ref()));
            let Ok(candidate) = code.decode(&alt, total_len) else {
                continue;
            };
            let candidate = Bytes::from(candidate);
            let hash_ok = match key {
                StripeKey::Chunk(fp) => hasher.fingerprint(&candidate) == fp,
                StripeKey::Blob { .. } => true,
            };
            if !hash_ok {
                continue;
            }
            let re = code.encode(&candidate);
            let all_parity_agree =
                consistent
                    .iter()
                    .filter(|(_, s)| s.meta.is_parity())
                    .all(|(_, s)| {
                        re.get(s.meta.index as usize)
                            .map(|want| want.as_ref() == s.data.as_ref())
                            .unwrap_or(false)
                    });
            if all_parity_agree {
                if let Some((node, _)) = by_index.get(&suspect) {
                    report.stripe_mismatches.push((*node, key, suspect));
                }
                return;
            }
        }
    }
    // Could not locate a single bad data shard: flag the disagreeing
    // parity copies themselves.
    for (node, index) in mismatched {
        report.stripe_mismatches.push((node, key, index));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Placement, StorageError};
    use crate::manifest::Manifest;
    use bytes::Bytes;
    use replidedup_hash::Sha1ChunkHasher;

    /// Store `data` on `node` under its true SHA-1 fingerprint.
    fn put(c: &Cluster, node: NodeId, data: &'static [u8]) -> Fingerprint {
        let fp = Sha1ChunkHasher.fingerprint(data);
        c.put_chunk(node, fp, Bytes::from_static(data)).unwrap();
        fp
    }

    fn manifest_of(owner: u32, dump_id: DumpId, chunks: Vec<Fingerprint>) -> Manifest {
        Manifest::fixed_stride(owner, dump_id, 4, 4 * chunks.len() as u64, chunks)
    }

    #[test]
    fn clean_node_scrubs_clean() {
        let c = Cluster::new(Placement::one_per_node(1));
        let a = put(&c, 0, b"aaaa");
        let b = put(&c, 0, b"bbbb");
        c.put_manifest(0, manifest_of(0, 1, vec![a, b])).unwrap();
        let r = c.scrub(0, &Sha1ChunkHasher).unwrap();
        assert!(r.is_clean(), "{r:?}");
        assert_eq!(r.chunks_checked, 2);
    }

    #[test]
    fn scrub_detects_exactly_the_injected_corruption() {
        let c = Cluster::new(Placement::one_per_node(1));
        let a = put(&c, 0, b"aaaa");
        let b = put(&c, 0, b"bbbb");
        c.put_manifest(0, manifest_of(0, 1, vec![a, b])).unwrap();
        assert!(c.corrupt_chunk(0, &a).unwrap());
        let r = c.scrub(0, &Sha1ChunkHasher).unwrap();
        assert_eq!(r.corrupt, vec![(0, a)], "exactly the injected corruption");
        assert!(r.dangling.is_empty() && r.orphans.is_empty());
    }

    #[test]
    fn scrub_reports_dangling_manifest_references() {
        let c = Cluster::new(Placement::one_per_node(1));
        let a = put(&c, 0, b"aaaa");
        let ghost = Sha1ChunkHasher.fingerprint(b"neverstored");
        c.put_manifest(0, manifest_of(3, 7, vec![a, ghost]))
            .unwrap();
        let r = c.scrub(0, &Sha1ChunkHasher).unwrap();
        assert_eq!(r.dangling, vec![(0, 3, 7, ghost)]);
        assert!(r.corrupt.is_empty() && r.orphans.is_empty());
    }

    #[test]
    fn scrub_detects_truncated_variable_length_chunk() {
        // A manifest with an explicit variable length list promises a
        // 9-byte chunk, but the store holds a truncated 4-byte version
        // (stored under the truncated content's own fingerprint, so the
        // per-chunk hash check alone cannot see the damage). Scrub must
        // compare stored lengths against the manifest's length list —
        // never a fixed chunk size — and flag exactly this chunk.
        let c = Cluster::new(Placement::one_per_node(1));
        let ok = put(&c, 0, b"intact-chunk");
        let truncated = put(&c, 0, b"trun"); // 4 bytes actually stored
        let m = Manifest {
            owner_rank: 2,
            dump_id: 5,
            total_len: 12 + 9,
            chunks: vec![ok, truncated],
            chunk_lens: vec![12, 9], // recipe expects 9 bytes, store has 4
            rs: None,
            coded: vec![],
        };
        c.put_manifest(0, m).unwrap();
        let r = c.scrub(0, &Sha1ChunkHasher).unwrap();
        assert_eq!(r.length_mismatch, vec![(0, 2, 5, truncated)]);
        assert!(
            r.corrupt.is_empty() && r.dangling.is_empty() && r.orphans.is_empty(),
            "only the length check can catch this: {r:?}"
        );
        assert!(!r.is_clean());
    }

    #[test]
    fn length_mismatch_merges_and_roundtrips() {
        let mut a = ScrubReport {
            length_mismatch: vec![(0, 1, 2, Fingerprint::synthetic(9))],
            ..ScrubReport::default()
        };
        let b = ScrubReport {
            length_mismatch: vec![
                (0, 1, 2, Fingerprint::synthetic(9)),
                (1, 4, 2, Fingerprint::synthetic(3)),
            ],
            ..ScrubReport::default()
        };
        a.merge(&b);
        assert_eq!(a.length_mismatch.len(), 2, "deduplicated");
        assert!(!a.is_clean());
        let bytes = a.to_bytes();
        assert_eq!(ScrubReport::from_bytes(&bytes).unwrap(), a);
    }

    #[test]
    fn scrub_reports_orphaned_chunks() {
        let c = Cluster::new(Placement::one_per_node(1));
        let a = put(&c, 0, b"aaaa");
        let stray = put(&c, 0, b"stray");
        c.put_manifest(0, manifest_of(0, 1, vec![a])).unwrap();
        let r = c.scrub(0, &Sha1ChunkHasher).unwrap();
        assert_eq!(r.orphans, vec![(0, stray)]);
    }

    #[test]
    fn scrub_covers_all_dump_generations() {
        let c = Cluster::new(Placement::one_per_node(1));
        let a = put(&c, 0, b"aaaa");
        c.put_manifest(0, manifest_of(0, 1, vec![a])).unwrap();
        let ghost = Sha1ChunkHasher.fingerprint(b"gen2only");
        c.put_manifest(0, manifest_of(0, 2, vec![ghost])).unwrap();
        let r = c.scrub(0, &Sha1ChunkHasher).unwrap();
        assert_eq!(r.dangling, vec![(0, 0, 2, ghost)], "generation 2 checked");
    }

    #[test]
    fn scrubbing_a_dead_node_is_node_down() {
        let c = Cluster::new(Placement::one_per_node(1));
        c.fail_node(0);
        assert_eq!(c.scrub(0, &Sha1ChunkHasher), Err(StorageError::NodeDown(0)));
    }

    #[test]
    fn merge_aggregates_and_dedups_across_nodes() {
        let c = Cluster::new(Placement::one_per_node(2));
        let a0 = put(&c, 0, b"aaaa");
        let a1 = put(&c, 1, b"zzzz");
        c.corrupt_chunk(0, &a0).unwrap();
        c.corrupt_chunk(1, &a1).unwrap();
        let mut merged = c.scrub(0, &Sha1ChunkHasher).unwrap();
        let r1 = c.scrub(1, &Sha1ChunkHasher).unwrap();
        merged.merge(&r1);
        merged.merge(&r1); // idempotent per finding
        assert_eq!(merged.chunks_checked, 3);
        let mut want = vec![(0, a0), (1, a1)];
        want.sort_unstable();
        assert_eq!(merged.corrupt, want);
        // Both chunks are orphans too (no manifests stored).
        assert_eq!(merged.orphans.len(), 2);
    }

    #[test]
    fn report_wire_roundtrip() {
        let c = Cluster::new(Placement::one_per_node(1));
        let a = put(&c, 0, b"aaaa");
        c.corrupt_chunk(0, &a).unwrap();
        let r = c.scrub(0, &Sha1ChunkHasher).unwrap();
        let bytes = r.to_bytes();
        assert_eq!(ScrubReport::from_bytes(&bytes).unwrap(), r);
    }

    /// Encode `payload` as a `k+m` stripe and store each shard on its home
    /// node (per [`replidedup_ec::shard_nodes`]). Returns the home nodes.
    fn stripe_put(
        c: &Cluster,
        key: StripeKey,
        k: u8,
        m: u8,
        payload: &'static [u8],
    ) -> Vec<NodeId> {
        let code = RsCode::new(k, m).unwrap();
        let shards = code.encode(&Bytes::from_static(payload));
        let homes = replidedup_ec::shard_nodes(key.seed(), k + m, c.node_count());
        for (i, shard) in shards.into_iter().enumerate() {
            let meta = crate::shard::ShardMeta {
                k,
                m,
                index: i as u8,
                total_len: payload.len() as u64,
            };
            c.put_shard(homes[i], key, meta, shard).unwrap();
        }
        homes
    }

    #[test]
    fn intact_stripes_scrub_clean() {
        let c = Cluster::new(Placement::one_per_node(6));
        let payload: &[u8] = b"stripe-payload-under-test!";
        let key = StripeKey::Chunk(Sha1ChunkHasher.fingerprint(payload));
        stripe_put(&c, key, 4, 2, payload);
        let r = c.scrub_stripes(&Sha1ChunkHasher);
        assert!(r.is_clean(), "{r:?}");
        assert_eq!(r.shards_checked, 6);
    }

    #[test]
    fn corrupt_parity_shard_is_located_exactly() {
        let c = Cluster::new(Placement::one_per_node(6));
        let payload: &[u8] = b"stripe-payload-under-test!";
        let key = StripeKey::Chunk(Sha1ChunkHasher.fingerprint(payload));
        let homes = stripe_put(&c, key, 4, 2, payload);
        // Flip a byte of parity shard 5: the data still decodes to the
        // right payload (hash passes), so the disagreeing parity copy
        // itself must be flagged.
        assert!(c.corrupt_shard(homes[5], key, 5).unwrap());
        let r = c.scrub_stripes(&Sha1ChunkHasher);
        assert_eq!(r.stripe_mismatches, vec![(homes[5], key, 5)]);
    }

    #[test]
    fn corrupt_data_shard_located_via_chunk_fingerprint() {
        let c = Cluster::new(Placement::one_per_node(6));
        let payload: &[u8] = b"stripe-payload-under-test!";
        let key = StripeKey::Chunk(Sha1ChunkHasher.fingerprint(payload));
        let homes = stripe_put(&c, key, 4, 2, payload);
        // Flip a byte of data shard 1: decode-from-data yields a payload
        // that fails the fingerprint check, and the drop-one-suspect scan
        // pins the corruption on exactly shard 1.
        assert!(c.corrupt_shard(homes[1], key, 1).unwrap());
        let r = c.scrub_stripes(&Sha1ChunkHasher);
        assert_eq!(r.stripe_mismatches, vec![(homes[1], key, 1)]);
    }

    #[test]
    fn corrupt_data_shard_of_blob_located_via_parity_consensus() {
        // Blobs carry no integrity key, but with m >= 2 a second parity
        // shard serves as the error oracle.
        let c = Cluster::new(Placement::one_per_node(5));
        let key = StripeKey::Blob {
            owner: 3,
            dump_id: 1,
        };
        let homes = stripe_put(&c, key, 2, 2, b"blob-bytes-with-two-parity");
        assert!(c.corrupt_shard(homes[0], key, 0).unwrap());
        let r = c.scrub_stripes(&Sha1ChunkHasher);
        assert_eq!(r.stripe_mismatches, vec![(homes[0], key, 0)]);
    }

    #[test]
    fn blob_stripe_with_single_parity_flags_parity_not_data() {
        // Documented limitation: a blob stripe with m == 1 has no oracle
        // to attribute a data-shard error, so the disagreeing parity copy
        // is flagged instead — still dirty, still repairable by rebuild.
        let c = Cluster::new(Placement::one_per_node(4));
        let key = StripeKey::Blob {
            owner: 0,
            dump_id: 2,
        };
        let homes = stripe_put(&c, key, 2, 1, b"blob-with-one-parity");
        assert!(c.corrupt_shard(homes[0], key, 0).unwrap());
        let r = c.scrub_stripes(&Sha1ChunkHasher);
        assert_eq!(r.stripe_mismatches, vec![(homes[2], key, 2)]);
        assert!(!r.is_clean());
    }
}
