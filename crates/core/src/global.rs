//! Phase two of the deduplication: the global fingerprint view and the
//! `HMERGE` reduction operator.
//!
//! "We propose an efficient (logarithmic in the number of processes)
//! reduction-based algorithm that performs both the selection and the
//! frequency counting in a hierarchic bottom-up fashion. [...] it is based
//! on a merge step that given two sets of fingerprints and the frequency of
//! their appearance, outputs the F most frequent fingerprints of the union
//! [...]. Besides counting the frequency, the merge step also associates at
//! most K processes for each fingerprint (the *designated ranks*)."
//! (Section III-B)
//!
//! Load balancing is embedded in the merge exactly as the paper describes:
//! "for each process we count the number of fingerprints it was designated
//! for. Whenever we need to merge two fingerprints, if the combined list of
//! ranks is larger than K, we truncate it in such way that the most loaded
//! ranks are eliminated first."
//!
//! Entries are kept sorted by fingerprint so the merge is a linear
//! merge-join and the post-broadcast lookup is a binary search. The
//! reduction runs as the runtime's `allreduce`, whose recursive-doubling
//! schedule combines *disjoint* rank blocks at every step — which is what
//! makes frequency addition exact and designated-rank lists duplicate-free.

use replidedup_hash::Fingerprint;
use replidedup_mpi::wire::{Wire, WireError, WireResult};
use replidedup_mpi::{Comm, CommError, Rank};
use std::collections::HashMap;

/// One fingerprint's global record: frequency and designated ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalEntry {
    /// The chunk fingerprint.
    pub fp: Fingerprint,
    /// Number of ranks observed holding this chunk (each rank counts once,
    /// local duplicates were already collapsed).
    pub freq: u64,
    /// Designated ranks (ascending, at most `K`, all actual holders). These
    /// ranks keep the chunk; everyone else may discard their copy once
    /// `freq >= K`.
    pub ranks: Vec<Rank>,
}

/// The (partial or final) global view: entries sorted by fingerprint,
/// at most `F` of them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GlobalView {
    /// Entries sorted ascending by fingerprint.
    pub entries: Vec<GlobalEntry>,
}

impl GlobalView {
    /// Leaf view of one rank: every locally unique fingerprint with
    /// frequency 1 and itself as the sole designated rank. When the rank
    /// holds more than `F` unique fingerprints, only the first `F` in
    /// fingerprint order enter the view — "we select only a maximum of F
    /// fingerprints [...] while considering the rest of them unique even if
    /// they are not"; correctness is unaffected, only dedup quality.
    pub fn from_local<I>(rank: Rank, fps: I, f_threshold: usize) -> Self
    where
        I: IntoIterator<Item = Fingerprint>,
    {
        let mut fps: Vec<Fingerprint> = fps.into_iter().collect();
        fps.sort_unstable();
        fps.dedup();
        fps.truncate(f_threshold);
        Self {
            entries: fps
                .into_iter()
                .map(|fp| GlobalEntry {
                    fp,
                    freq: 1,
                    ranks: vec![rank],
                })
                .collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Binary-search lookup by fingerprint.
    pub fn lookup(&self, fp: &Fingerprint) -> Option<&GlobalEntry> {
        self.entries
            .binary_search_by(|e| e.fp.cmp(fp))
            .ok()
            .map(|i| &self.entries[i])
    }

    /// `HMERGE`: combine two partial views into the `F` most frequent
    /// fingerprints of their union, with load-balanced designated-rank
    /// truncation.
    ///
    /// The two inputs must come from disjoint rank blocks (guaranteed by
    /// the allreduce schedule), so frequencies add and rank lists union
    /// without double counting.
    pub fn merge(a: GlobalView, b: GlobalView, k: u32, f_threshold: usize) -> GlobalView {
        debug_assert!(k >= 1);
        // Pass 1: merge-join the fingerprint-sorted entry lists.
        let mut merged: Vec<GlobalEntry> = Vec::with_capacity(a.len() + b.len());
        let mut ia = a.entries.into_iter().peekable();
        let mut ib = b.entries.into_iter().peekable();
        loop {
            match (ia.peek(), ib.peek()) {
                (Some(ea), Some(eb)) => match ea.fp.cmp(&eb.fp) {
                    std::cmp::Ordering::Less => merged.push(ia.next().expect("peeked")),
                    std::cmp::Ordering::Greater => merged.push(ib.next().expect("peeked")),
                    std::cmp::Ordering::Equal => {
                        let ea = ia.next().expect("peeked");
                        let eb = ib.next().expect("peeked");
                        let mut ranks = ea.ranks;
                        ranks.extend(eb.ranks);
                        merged.push(GlobalEntry {
                            fp: ea.fp,
                            freq: ea.freq + eb.freq,
                            ranks,
                        });
                    }
                },
                (Some(_), None) => merged.push(ia.next().expect("peeked")),
                (None, Some(_)) => merged.push(ib.next().expect("peeked")),
                (None, None) => break,
            }
        }
        // Pass 2: keep only the F most frequent fingerprints (ties broken
        // by fingerprint for cross-rank determinism).
        if merged.len() > f_threshold {
            merged.sort_unstable_by(|x, y| y.freq.cmp(&x.freq).then(x.fp.cmp(&y.fp)));
            merged.truncate(f_threshold);
            merged.sort_unstable_by_key(|x| x.fp);
        }
        // Pass 3: load-balanced truncation of designated-rank lists over
        // the surviving entries, in fingerprint order. `loads[r]` counts
        // how many surviving fingerprints rank r is designated for so far;
        // when a combined list exceeds K we keep the K least-loaded ranks.
        let mut loads: HashMap<Rank, u32> = HashMap::new();
        for entry in &mut merged {
            if entry.ranks.len() > k as usize {
                entry
                    .ranks
                    .sort_unstable_by_key(|r| (loads.get(r).copied().unwrap_or(0), *r));
                entry.ranks.truncate(k as usize);
            }
            entry.ranks.sort_unstable();
            debug_assert!(
                entry.ranks.windows(2).all(|w| w[0] < w[1]),
                "designated ranks must be distinct"
            );
            for &r in &entry.ranks {
                *loads.entry(r).or_insert(0) += 1;
            }
        }
        GlobalView { entries: merged }
    }

    /// Exact size in bytes of this view's [`Wire`] encoding, computed by
    /// arithmetic instead of encoding the view a second time just to
    /// measure it (the reduction already paid for the real encodes).
    pub fn wire_size(&self) -> usize {
        // Vec length prefix + per entry: fingerprint, u64 freq, ranks
        // length prefix, 4 bytes per u32 rank.
        8 + self
            .entries
            .iter()
            .map(|e| Fingerprint::SIZE + 8 + 8 + 4 * e.ranks.len())
            .sum::<usize>()
    }

    /// Per-rank designation counts of this view (diagnostics / tests).
    pub fn designation_loads(&self) -> HashMap<Rank, u32> {
        let mut loads: HashMap<Rank, u32> = HashMap::new();
        for e in &self.entries {
            for &r in &e.ranks {
                *loads.entry(r).or_insert(0) += 1;
            }
        }
        loads
    }
}

impl Wire for GlobalEntry {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.fp.encode(buf);
        self.freq.encode(buf);
        self.ranks.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        Ok(GlobalEntry {
            fp: Fingerprint::decode(input)?,
            freq: u64::decode(input)?,
            ranks: Vec::decode(input)?,
        })
    }
}

impl Wire for GlobalView {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.entries.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        let entries: Vec<GlobalEntry> = Vec::decode(input)?;
        if !entries.windows(2).all(|w| w[0].fp < w[1].fp) {
            return Err(WireError::Malformed {
                what: "GlobalView (unsorted)",
            });
        }
        Ok(GlobalView { entries })
    }
}

/// Run the collective fingerprint reduction: every rank contributes its
/// leaf view; all ranks receive the identical final view of at most
/// `f_threshold` entries (the paper's `ALLREDUCE(HMERGE, LHashes)`).
pub fn reduce_global_view(
    comm: &mut Comm,
    local: GlobalView,
    k: u32,
    f_threshold: usize,
) -> GlobalView {
    comm.allreduce(local, |a, b| GlobalView::merge(a, b, k, f_threshold))
}

/// Fallible [`reduce_global_view`]: surfaces rank deaths during the
/// reduction as [`CommError`] instead of panicking.
pub fn try_reduce_global_view(
    comm: &mut Comm,
    local: GlobalView,
    k: u32,
    f_threshold: usize,
) -> Result<GlobalView, CommError> {
    comm.try_allreduce(local, |a, b| GlobalView::merge(a, b, k, f_threshold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use replidedup_mpi::WorldConfig;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::synthetic(n)
    }

    fn leaf(rank: Rank, ids: &[u64]) -> GlobalView {
        GlobalView::from_local(rank, ids.iter().map(|&n| fp(n)), usize::MAX)
    }

    #[test]
    fn leaf_view_is_sorted_deduped_and_truncated() {
        let v = GlobalView::from_local(3, [fp(5), fp(1), fp(5), fp(2)], 2);
        assert_eq!(v.len(), 2);
        assert!(v.entries[0].fp < v.entries[1].fp);
        assert!(v.entries.iter().all(|e| e.freq == 1 && e.ranks == vec![3]));
    }

    #[test]
    fn merge_sums_frequencies_of_shared_fingerprints() {
        let a = leaf(0, &[1, 2, 3]);
        let b = leaf(1, &[2, 3, 4]);
        let m = GlobalView::merge(a, b, 3, usize::MAX);
        assert_eq!(m.len(), 4);
        assert_eq!(m.lookup(&fp(1)).unwrap().freq, 1);
        assert_eq!(m.lookup(&fp(2)).unwrap().freq, 2);
        assert_eq!(m.lookup(&fp(2)).unwrap().ranks, vec![0, 1]);
        assert_eq!(m.lookup(&fp(4)).unwrap().ranks, vec![1]);
    }

    #[test]
    fn merge_truncates_to_k_designated_ranks() {
        let mut acc = leaf(0, &[7]);
        for r in 1..6 {
            acc = GlobalView::merge(acc, leaf(r, &[7]), 3, usize::MAX);
        }
        let e = acc.lookup(&fp(7)).unwrap();
        assert_eq!(e.freq, 6, "frequency keeps counting past K");
        assert_eq!(e.ranks.len(), 3, "designated ranks capped at K");
        assert!(e.ranks.windows(2).all(|w| w[0] < w[1]), "ranks sorted");
    }

    #[test]
    fn top_f_selection_keeps_most_frequent() {
        // fp 10 appears on both ranks, fps 1..=3 on one each.
        let a = leaf(0, &[10, 1, 2]);
        let b = leaf(1, &[10, 3]);
        let m = GlobalView::merge(a, b, 3, 2);
        assert_eq!(m.len(), 2);
        assert!(m.lookup(&fp(10)).is_some(), "most frequent must survive");
        // The tie among freq-1 entries breaks by fingerprint order.
        let survivors: Vec<u64> = m.entries.iter().map(|e| e.freq).collect();
        assert_eq!(survivors.iter().max(), Some(&2));
    }

    #[test]
    fn load_balanced_truncation_spreads_designations() {
        // All 6 ranks hold the same 12 chunks; K=3 means each chunk keeps 3
        // designated ranks — load balance should give every rank 12*3/6 = 6
        // designations, never the naive "first 3 ranks get everything".
        let chunks: Vec<u64> = (0..12).collect();
        let mut acc = leaf(0, &chunks);
        for r in 1..6 {
            acc = GlobalView::merge(acc, leaf(r, &chunks), 3, usize::MAX);
        }
        let loads = acc.designation_loads();
        assert_eq!(loads.len(), 6, "every rank must be designated somewhere");
        for (r, l) in &loads {
            assert!(
                (4..=8).contains(l),
                "rank {r} got {l} designations; expected ~6 (even spread)"
            );
        }
        let total: u32 = loads.values().sum();
        assert_eq!(total, 12 * 3);
    }

    #[test]
    fn merge_is_deterministic() {
        let a = leaf(0, &[1, 2, 3, 4, 5]);
        let b = leaf(1, &[3, 4, 5, 6, 7]);
        let m1 = GlobalView::merge(a.clone(), b.clone(), 2, 4);
        let m2 = GlobalView::merge(a, b, 2, 4);
        assert_eq!(m1, m2);
    }

    #[test]
    fn merged_view_stays_sorted() {
        let a = leaf(0, &[9, 1, 5]);
        let b = leaf(1, &[2, 8]);
        let m = GlobalView::merge(a, b, 3, usize::MAX);
        assert!(m.entries.windows(2).all(|w| w[0].fp < w[1].fp));
    }

    #[test]
    fn wire_roundtrip() {
        let a = leaf(0, &[1, 2]);
        let b = leaf(1, &[2, 3]);
        let m = GlobalView::merge(a, b, 3, usize::MAX);
        let bytes = m.to_bytes();
        assert_eq!(GlobalView::from_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn wire_size_matches_actual_encoding() {
        for view in [
            GlobalView::default(),
            leaf(0, &[1, 2, 3]),
            GlobalView::merge(leaf(0, &[1, 2, 3]), leaf(1, &[2, 3, 4]), 3, usize::MAX),
            GlobalView::merge(leaf(0, &[7]), leaf(1, &[7]), 1, usize::MAX),
        ] {
            assert_eq!(view.wire_size(), view.to_bytes().len());
        }
    }

    #[test]
    fn wire_rejects_unsorted_view() {
        let bad = GlobalView {
            entries: vec![
                GlobalEntry {
                    fp: fp(5),
                    freq: 1,
                    ranks: vec![0],
                },
                GlobalEntry {
                    fp: fp(1),
                    freq: 1,
                    ranks: vec![1],
                },
            ],
        };
        let mut buf = Vec::new();
        bad.entries.encode(&mut buf);
        assert!(GlobalView::from_bytes(&buf).is_err());
    }

    #[test]
    fn reduction_counts_exactly_across_world() {
        // 8 ranks; rank r holds chunks {r, r+1, 100}: chunk 100 is on all 8,
        // interior chunks on exactly 2 ranks, endpoints on 1.
        let out = WorldConfig::default()
            .launch(8, |comm| {
                let me = comm.rank();
                let local = GlobalView::from_local(
                    me,
                    [fp(u64::from(me)), fp(u64::from(me) + 1), fp(100)],
                    usize::MAX,
                );
                reduce_global_view(comm, local, 3, usize::MAX)
            })
            .expect_all();
        let first = &out.results[0];
        for r in &out.results {
            assert_eq!(r, first, "all ranks must hold the identical view");
        }
        assert_eq!(first.lookup(&fp(100)).unwrap().freq, 8);
        assert_eq!(first.lookup(&fp(100)).unwrap().ranks.len(), 3);
        assert_eq!(first.lookup(&fp(0)).unwrap().freq, 1);
        for mid in 1..8u64 {
            assert_eq!(first.lookup(&fp(mid)).unwrap().freq, 2, "chunk {mid}");
        }
    }

    #[test]
    fn reduction_respects_f_threshold() {
        let out = WorldConfig::default()
            .launch(5, |comm| {
                let me = comm.rank();
                // Every rank holds chunk 0 (freq 5) plus 10 private chunks.
                let mut ids = vec![0u64];
                ids.extend((0..10).map(|i| 1000 + u64::from(me) * 100 + i));
                let local = GlobalView::from_local(me, ids.into_iter().map(fp), 4);
                reduce_global_view(comm, local, 2, 4)
            })
            .expect_all();
        for view in &out.results {
            assert!(view.len() <= 4);
            assert_eq!(
                view.lookup(&fp(0)).unwrap().freq,
                5,
                "the genuinely frequent chunk must survive selection"
            );
        }
    }

    #[test]
    fn designated_ranks_are_actual_holders() {
        let out = WorldConfig::default()
            .launch(6, |comm| {
                let me = comm.rank();
                // Even ranks hold chunk 42; odd ranks hold chunk 43.
                let id = if me % 2 == 0 { 42 } else { 43 };
                let local = GlobalView::from_local(me, [fp(id)], usize::MAX);
                reduce_global_view(comm, local, 2, usize::MAX)
            })
            .expect_all();
        let view = &out.results[0];
        for &r in &view.lookup(&fp(42)).unwrap().ranks {
            assert_eq!(r % 2, 0, "designated rank {r} does not hold chunk 42");
        }
        for &r in &view.lookup(&fp(43)).unwrap().ranks {
            assert_eq!(r % 2, 1, "designated rank {r} does not hold chunk 43");
        }
    }
}
