//! Per-rank chunk planning (the Load computation of Algorithm 1).
//!
//! After the global view is broadcast, every rank decides the fate of each
//! locally unique chunk:
//!
//! * **in the view, me designated** — keep it locally; if fewer than `K`
//!   ranks are designated, the `K - D` missing replicas are split
//!   round-robin over the `D` designated ranks and my share goes to my
//!   first partners;
//! * **in the view, me not designated** — discard: either `K` ranks keep it
//!   already, or the under-replicated designated ranks top it up to `K`
//!   copies themselves — either way `K` copies materialize without me;
//! * **not in the view** — treated as unique ("considering the rest of them
//!   unique even if they are not"): keep it and send to all `K-1` partners.
//!
//! The resulting `Load` vector follows the paper's convention: `Load[0]` is
//! the number of chunks stored locally, `Load[j]` the number sent to
//! partner `j`.

use replidedup_hash::Fingerprint;
use replidedup_mpi::Rank;

use crate::global::GlobalView;
use crate::local::LocalIndex;

/// Outcome of planning one rank's chunks against the global view.
#[derive(Debug, Clone, Default)]
pub struct ChunkPlan {
    /// Fingerprints stored locally (designated + treated-unique), sorted.
    pub keep: Vec<Fingerprint>,
    /// `send_lists[j-1]` = fingerprints sent to partner `j` (1-based).
    pub send_lists: Vec<Vec<Fingerprint>>,
    /// Fingerprints discarded because `K` copies materialize elsewhere.
    pub discarded: Vec<Fingerprint>,
    /// The paper's `Load` vector: `load[0] == keep.len()`,
    /// `load[j] == send_lists[j-1].len()`.
    pub load: Vec<u64>,
}

impl ChunkPlan {
    /// Total chunks this rank sends to all partners.
    pub fn total_send_chunks(&self) -> u64 {
        self.load[1..].iter().sum()
    }
}

/// Build the chunk plan for rank `me`. `k` must already be clamped to the
/// world size.
pub fn plan_chunks(me: Rank, local: &LocalIndex, view: &GlobalView, k: u32) -> ChunkPlan {
    assert!(k >= 1, "replication factor must be at least 1");
    let partners = (k - 1) as usize;
    let mut plan = ChunkPlan {
        keep: Vec::new(),
        send_lists: vec![Vec::new(); partners],
        discarded: Vec::new(),
        load: vec![0; k as usize],
    };
    // Iterate in fingerprint order for reproducible plans.
    let mut fps: Vec<Fingerprint> = local.unique.keys().copied().collect();
    fps.sort_unstable();
    for fp in fps {
        match view.lookup(&fp) {
            Some(entry) => {
                match entry.ranks.binary_search(&me) {
                    Ok(idx) => {
                        plan.keep.push(fp);
                        let d = entry.ranks.len() as u32;
                        if d < k {
                            // Round-robin the K-D missing replicas over the
                            // D designated ranks; my share is every D-th.
                            let missing = k - d;
                            let mine = (0..missing).filter(|i| i % d == idx as u32).count();
                            for j in 0..mine {
                                plan.send_lists[j].push(fp);
                            }
                        }
                    }
                    Err(_) => {
                        // K copies materialize without me (see module docs).
                        plan.discarded.push(fp);
                    }
                }
            }
            None => {
                plan.keep.push(fp);
                for list in &mut plan.send_lists {
                    list.push(fp);
                }
            }
        }
    }
    plan.load[0] = plan.keep.len() as u64;
    for (j, list) in plan.send_lists.iter().enumerate() {
        plan.load[j + 1] = list.len() as u64;
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::GlobalEntry;
    use replidedup_hash::{FixedChunker, Sha1ChunkHasher};

    fn index_of(buf: &[u8], cs: usize) -> LocalIndex {
        LocalIndex::build(&Sha1ChunkHasher, buf, &FixedChunker::new(cs), false)
    }

    fn view(entries: Vec<GlobalEntry>) -> GlobalView {
        let mut v = GlobalView { entries };
        v.entries.sort_unstable_by_key(|a| a.fp);
        v
    }

    #[test]
    fn unique_chunk_goes_everywhere() {
        let buf = vec![1u8; 8]; // one chunk of 8
        let idx = index_of(&buf, 8);
        let plan = plan_chunks(0, &idx, &GlobalView::default(), 3);
        assert_eq!(plan.load, vec![1, 1, 1]);
        assert_eq!(plan.keep.len(), 1);
        assert_eq!(plan.send_lists[0].len(), 1);
        assert_eq!(plan.send_lists[1].len(), 1);
        assert!(plan.discarded.is_empty());
    }

    #[test]
    fn non_designated_holder_discards() {
        let buf = vec![1u8; 8];
        let idx = index_of(&buf, 8);
        let fp = idx.in_order[0];
        let v = view(vec![GlobalEntry {
            fp,
            freq: 5,
            ranks: vec![1, 2, 3],
        }]);
        let plan = plan_chunks(0, &idx, &v, 3);
        assert_eq!(plan.load, vec![0, 0, 0]);
        assert_eq!(plan.discarded, vec![fp]);
    }

    #[test]
    fn fully_designated_chunk_is_kept_not_sent() {
        let buf = vec![1u8; 8];
        let idx = index_of(&buf, 8);
        let fp = idx.in_order[0];
        let v = view(vec![GlobalEntry {
            fp,
            freq: 3,
            ranks: vec![0, 1, 2],
        }]);
        let plan = plan_chunks(0, &idx, &v, 3);
        assert_eq!(plan.load, vec![1, 0, 0]);
    }

    #[test]
    fn round_robin_splits_missing_replicas() {
        // D=2 designated, K=5 → 3 missing replicas; rank 0 (idx 0) takes
        // i=0 and i=2 (2 partners), rank 4 (idx 1) takes i=1 (1 partner).
        let buf = vec![1u8; 8];
        let idx = index_of(&buf, 8);
        let fp = idx.in_order[0];
        let v = view(vec![GlobalEntry {
            fp,
            freq: 2,
            ranks: vec![0, 4],
        }]);
        let plan0 = plan_chunks(0, &idx, &v, 5);
        assert_eq!(plan0.load, vec![1, 1, 1, 0, 0]);
        let plan4 = plan_chunks(4, &idx, &v, 5);
        assert_eq!(plan4.load, vec![1, 1, 0, 0, 0]);
        // Total new copies = D kept + 3 sent = 5 = K.
        let sent: u64 = plan0.total_send_chunks() + plan4.total_send_chunks();
        assert_eq!(sent, 3);
    }

    #[test]
    fn sole_designated_rank_tops_up_everything() {
        let buf = vec![1u8; 8];
        let idx = index_of(&buf, 8);
        let fp = idx.in_order[0];
        let v = view(vec![GlobalEntry {
            fp,
            freq: 1,
            ranks: vec![2],
        }]);
        let plan = plan_chunks(2, &idx, &v, 4);
        assert_eq!(
            plan.load,
            vec![1, 1, 1, 1],
            "K-1 replicas all from the sole holder"
        );
    }

    #[test]
    fn k1_plans_store_only() {
        let buf = vec![7u8; 16];
        let idx = index_of(&buf, 8);
        let plan = plan_chunks(0, &idx, &GlobalView::default(), 1);
        assert_eq!(plan.load, vec![1]); // one unique chunk, no partners
        assert!(plan.send_lists.is_empty());
        assert_eq!(plan.total_send_chunks(), 0);
    }

    #[test]
    fn mixed_plan_counts_are_consistent() {
        // Buffer with 4 distinct chunks; two covered by the view.
        let mut buf = Vec::new();
        for i in 0..4u8 {
            buf.extend_from_slice(&[i; 8]);
        }
        let idx = index_of(&buf, 8);
        let f0 = idx.in_order[0];
        let f1 = idx.in_order[1];
        let v = view(vec![
            GlobalEntry {
                fp: f0,
                freq: 4,
                ranks: vec![0, 1, 2],
            }, // me designated, full
            GlobalEntry {
                fp: f1,
                freq: 4,
                ranks: vec![1, 2, 3],
            }, // me not designated
        ]);
        let plan = plan_chunks(0, &idx, &v, 3);
        // keep: f0 + two uncovered; discard: f1; uncovered send to both.
        assert_eq!(plan.load, vec![3, 2, 2]);
        assert_eq!(plan.discarded, vec![f1]);
        assert_eq!(plan.keep.len(), 3);
    }
}
