//! Configuration of the collective dump.

use serde::{Deserialize, Serialize};

/// Which replication scheme to run — the three settings of the paper's
/// evaluation (Section V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// `no-dedup`: full replication. Every chunk is stored locally and sent
    /// to `K-1` partners; no redundancy elimination at all.
    NoDedup,
    /// `local-dedup`: each rank removes its own duplicate chunks first,
    /// then replicates the locally unique remainder to `K-1` partners.
    LocalDedup,
    /// `coll-dedup`: the paper's contribution. Local dedup plus the
    /// collective fingerprint reduction; chunks already duplicated on at
    /// least `K` ranks are not replicated (surplus copies are discarded),
    /// under-replicated ones get topped up to `K` copies.
    CollDedup,
}

impl Strategy {
    /// The label the paper uses for this setting.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::NoDedup => "no-dedup",
            Strategy::LocalDedup => "local-dedup",
            Strategy::CollDedup => "coll-dedup",
        }
    }
}

/// Parameters of one `DUMP_OUTPUT` collective.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DumpConfig {
    /// Replication scheme.
    pub strategy: Strategy,
    /// Desired replication factor `K` (total copies, including the local
    /// one). Clamped to the world size at run time.
    pub replication: u32,
    /// Fixed chunk size in bytes (paper: 4 KiB, the memory page size).
    pub chunk_size: usize,
    /// Reduction threshold `F`: at most this many fingerprints survive each
    /// merge; the rest are conservatively treated as unique. Paper: 2^17.
    pub f_threshold: usize,
    /// Load-aware partner selection (Algorithm 2). `false` gives the
    /// `coll-no-shuffle` ablation / the naive ring of the baselines.
    pub shuffle: bool,
    /// Hash chunks with rayon inside each rank.
    pub parallel_hash: bool,
}

impl DumpConfig {
    /// Paper-faithful defaults for the given strategy: `K = 3`,
    /// 4 KiB chunks, `F = 2^17`, shuffling on for `coll-dedup`.
    pub fn paper_defaults(strategy: Strategy) -> Self {
        Self {
            strategy,
            replication: 3,
            chunk_size: 4096,
            f_threshold: 1 << 17,
            shuffle: matches!(strategy, Strategy::CollDedup),
            parallel_hash: false,
        }
    }

    /// Builder-style: set the replication factor.
    pub fn with_replication(mut self, k: u32) -> Self {
        self.replication = k;
        self
    }

    /// Builder-style: set the chunk size.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size;
        self
    }

    /// Builder-style: set the reduction threshold `F`.
    pub fn with_f_threshold(mut self, f: usize) -> Self {
        self.f_threshold = f;
        self
    }

    /// Builder-style: enable or disable rank shuffling.
    pub fn with_shuffle(mut self, shuffle: bool) -> Self {
        self.shuffle = shuffle;
        self
    }

    /// Validate parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.replication == 0 {
            return Err("replication factor must be at least 1".into());
        }
        if self.chunk_size == 0 {
            return Err("chunk_size must be positive".into());
        }
        if self.chunk_size > u32::MAX as usize {
            return Err("chunk_size must fit in a u32 record header".into());
        }
        if self.f_threshold == 0 {
            return Err("f_threshold must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_paper() {
        let c = DumpConfig::paper_defaults(Strategy::CollDedup);
        assert_eq!(c.replication, 3);
        assert_eq!(c.chunk_size, 4096);
        assert_eq!(c.f_threshold, 1 << 17);
        assert!(c.shuffle);
        let c = DumpConfig::paper_defaults(Strategy::NoDedup);
        assert!(!c.shuffle, "baselines use the naive ring");
    }

    #[test]
    fn labels() {
        assert_eq!(Strategy::NoDedup.label(), "no-dedup");
        assert_eq!(Strategy::LocalDedup.label(), "local-dedup");
        assert_eq!(Strategy::CollDedup.label(), "coll-dedup");
    }

    #[test]
    fn builders_chain() {
        let c = DumpConfig::paper_defaults(Strategy::CollDedup)
            .with_replication(6)
            .with_chunk_size(512)
            .with_f_threshold(128)
            .with_shuffle(false);
        assert_eq!(c.replication, 6);
        assert_eq!(c.chunk_size, 512);
        assert_eq!(c.f_threshold, 128);
        assert!(!c.shuffle);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_params() {
        let base = DumpConfig::paper_defaults(Strategy::CollDedup);
        assert!(base.with_replication(0).validate().is_err());
        assert!(base.with_chunk_size(0).validate().is_err());
        assert!(base.with_f_threshold(0).validate().is_err());
        assert!(base.validate().is_ok());
    }
}
