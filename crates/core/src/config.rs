//! Configuration of the collective dump.

use std::fmt;

use replidedup_hash::ChunkerKind;

/// A dump configuration rejected at build/validation time.
///
/// Produced by [`DumpConfig::validate`] and by
/// [`crate::ReplicatorBuilder::build`], so malformed parameters surface as
/// typed errors before any collective starts.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `K = 0`: at least the local copy is required.
    ZeroReplication,
    /// `chunk_size = 0`: chunks must hold at least one byte.
    ZeroChunkSize,
    /// `chunk_size` does not fit the `u32` record header used on the wire.
    ChunkSizeOverflow {
        /// The rejected chunk size.
        chunk_size: usize,
    },
    /// `F = 0`: the reduction must be allowed to keep fingerprints.
    ZeroFThreshold,
    /// No [`replidedup_storage::Cluster`] was supplied to the builder.
    MissingCluster,
    /// The chunker's parameters are inconsistent (e.g. `min_size >
    /// max_size`).
    InvalidChunker {
        /// What the chunker validation rejected.
        reason: &'static str,
    },
    /// The Reed-Solomon geometry of a [`RedundancyPolicy`] is unusable:
    /// `k` and `m` must both be at least 1 and `k + m` must fit GF(2^8)
    /// (at most 255 shards).
    InvalidRsParams {
        /// Data shard count of the rejected policy.
        k: u8,
        /// Parity shard count of the rejected policy.
        m: u8,
    },
    /// Another live [`crate::Replicator`] already registered the same
    /// `session_label` on the target cluster. Concurrent sessions must
    /// carry distinct labels so their tag namespaces and dump-id
    /// generations cannot collide.
    DuplicateSession {
        /// The label that is already active on the cluster.
        label: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroReplication => write!(f, "replication factor must be at least 1"),
            ConfigError::ZeroChunkSize => write!(f, "chunk_size must be positive"),
            ConfigError::ChunkSizeOverflow { chunk_size } => {
                write!(f, "chunk_size {chunk_size} must fit in a u32 record header")
            }
            ConfigError::ZeroFThreshold => write!(f, "f_threshold must be positive"),
            ConfigError::MissingCluster => {
                write!(
                    f,
                    "a target cluster is required: call .cluster(..) before .build()"
                )
            }
            ConfigError::InvalidChunker { reason } => {
                write!(f, "invalid chunker parameters: {reason}")
            }
            ConfigError::InvalidRsParams { k, m } => {
                write!(
                    f,
                    "invalid Reed-Solomon geometry k={k} m={m}: need k >= 1, m >= 1, k + m <= 255"
                )
            }
            ConfigError::DuplicateSession { label } => {
                write!(
                    f,
                    "session label {label:?} is already active on this cluster; \
                     concurrent sessions need distinct labels"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which replication scheme to run — the three settings of the paper's
/// evaluation (Section V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Strategy {
    /// `no-dedup`: full replication. Every chunk is stored locally and sent
    /// to `K-1` partners; no redundancy elimination at all.
    NoDedup,
    /// `local-dedup`: each rank removes its own duplicate chunks first,
    /// then replicates the locally unique remainder to `K-1` partners.
    LocalDedup,
    /// `coll-dedup`: the paper's contribution. Local dedup plus the
    /// collective fingerprint reduction; chunks already duplicated on at
    /// least `K` ranks are not replicated (surplus copies are discarded),
    /// under-replicated ones get topped up to `K` copies.
    CollDedup,
}

impl Strategy {
    /// The label the paper uses for this setting.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::NoDedup => "no-dedup",
            Strategy::LocalDedup => "local-dedup",
            Strategy::CollDedup => "coll-dedup",
        }
    }
}

/// Per-chunk redundancy scheme: how a chunk survives node losses once the
/// dedup pass has decided who holds it.
///
/// The paper's scheme is [`RedundancyPolicy::Replicate`] — `K` full
/// copies, fault tolerance `K - 1` at `K`× storage. Erasure coding
/// ([`RedundancyPolicy::Rs`]) reaches the same tolerance `m` at
/// `(k + m) / k`× storage by striping each payload into `k` data +
/// `m` parity shards on distinct nodes. [`RedundancyPolicy::Auto`]
/// chooses per chunk.
///
/// Both coded policies apply the *dedup credit*: a chunk the application
/// already wrote on `m + 1` or more ranks survives any `m` losses with no
/// redundancy added, so the HMERGE reduction keeps `m + 1` of its natural
/// copies and skips parity generation entirely. Only chunks the cluster
/// cannot cover naturally pay for a stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RedundancyPolicy {
    /// Full replication with `K` total copies (the paper's scheme).
    Replicate(u32),
    /// Reed-Solomon `k + m` striping for every chunk that is not already
    /// naturally duplicated on `m + 1` ranks.
    Rs {
        /// Data shards per stripe.
        k: u8,
        /// Parity shards per stripe; the stripe survives any `m` losses.
        m: u8,
    },
    /// Per-chunk choice: chunks smaller than `replicate_below` bytes or
    /// naturally duplicated on `m + 1` ranks stay replicated (striping a
    /// tiny chunk costs more in shard bookkeeping than the parity saves);
    /// large cold chunks are coded as `k + m` stripes.
    Auto {
        /// Data shards per stripe for the coded chunks.
        k: u8,
        /// Parity shards per stripe for the coded chunks.
        m: u8,
        /// Chunks strictly smaller than this many bytes are replicated.
        replicate_below: usize,
    },
}

impl Default for RedundancyPolicy {
    /// The paper's default: 3× replication.
    fn default() -> Self {
        RedundancyPolicy::Replicate(3)
    }
}

impl RedundancyPolicy {
    /// Short label used in benchmark output: `rep3`, `rs4+2`, `auto4+2`.
    pub fn label(self) -> String {
        match self {
            RedundancyPolicy::Replicate(k) => format!("rep{k}"),
            RedundancyPolicy::Rs { k, m } => format!("rs{k}+{m}"),
            RedundancyPolicy::Auto { k, m, .. } => format!("auto{k}+{m}"),
        }
    }

    /// The Reed-Solomon geometry, when the policy can code chunks.
    pub fn rs_params(self) -> Option<(u8, u8)> {
        match self {
            RedundancyPolicy::Replicate(_) => None,
            RedundancyPolicy::Rs { k, m } | RedundancyPolicy::Auto { k, m, .. } => Some((k, m)),
        }
    }

    /// Losses this policy tolerates: `K - 1` for replication, `m` for the
    /// coded policies (the dedup credit keeps `m + 1` natural copies, so
    /// replicated-by-credit chunks match the stripes' tolerance).
    pub fn fault_tolerance(self) -> u32 {
        match self {
            RedundancyPolicy::Replicate(k) => k.saturating_sub(1),
            RedundancyPolicy::Rs { m, .. } | RedundancyPolicy::Auto { m, .. } => u32::from(m),
        }
    }

    /// Whether a chunk of `len` bytes that the reduction saw on `freq`
    /// ranks gets coded into a stripe (as opposed to replicated / credited
    /// with its natural copies).
    pub fn codes_chunk(self, len: usize, freq: usize) -> bool {
        match self {
            RedundancyPolicy::Replicate(_) => false,
            RedundancyPolicy::Rs { m, .. } => freq <= m as usize,
            RedundancyPolicy::Auto {
                m, replicate_below, ..
            } => len >= replicate_below && freq <= m as usize,
        }
    }

    /// The copy target the HMERGE reduction designates keepers for. Under
    /// replication this is `K`; under `Rs` it is `m + 1`, so naturally
    /// duplicated chunks retain exactly enough copies to match the stripe
    /// tolerance and surplus copies are still discarded. `Auto` keeps the
    /// larger of the two, since its small chunks are replicated to `K`.
    pub fn hmerge_k(self, cfg_k: u32) -> u32 {
        match self {
            RedundancyPolicy::Replicate(k) => k,
            RedundancyPolicy::Rs { m, .. } => u32::from(m) + 1,
            RedundancyPolicy::Auto { m, .. } => cfg_k.max(u32::from(m) + 1),
        }
    }

    /// Validate the policy parameters.
    pub fn validate(self) -> Result<(), ConfigError> {
        match self {
            RedundancyPolicy::Replicate(0) => Err(ConfigError::ZeroReplication),
            RedundancyPolicy::Replicate(_) => Ok(()),
            RedundancyPolicy::Rs { k, m } | RedundancyPolicy::Auto { k, m, .. } => {
                if k == 0 || m == 0 || u16::from(k) + u16::from(m) > 255 {
                    Err(ConfigError::InvalidRsParams { k, m })
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// How the dump pipeline moves payload bytes between the application
/// buffer, the exchange and storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum CopyMode {
    /// The zero-copy hot path (default): chunks are reference-counted
    /// slices of the application buffer from chunking through RMA to
    /// storage puts, and the exchange window is stolen (not copied) at
    /// commit.
    #[default]
    ZeroCopy,
    /// The pre-zero-copy behaviour: records are staged into per-target
    /// `Vec<u8>` buffers before the RMA put and every stored payload is a
    /// fresh copy. Every staging memcpy is recorded against the copy
    /// accounting, which is how `repro --bench` measures the baseline this
    /// refactor removes.
    Staged,
}

impl CopyMode {
    /// Short label used in benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            CopyMode::ZeroCopy => "zero-copy",
            CopyMode::Staged => "staged",
        }
    }
}

/// Parameters of one `DUMP_OUTPUT` collective.
///
/// Construct via [`DumpConfig::paper_defaults`] and the `with_*` builders
/// (the struct is `#[non_exhaustive]`), or go through
/// [`crate::Replicator::builder`], which validates at build time.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct DumpConfig {
    /// Replication scheme.
    pub strategy: Strategy,
    /// Desired replication factor `K` (total copies, including the local
    /// one). Clamped to the world size at run time.
    pub replication: u32,
    /// Fixed chunk size in bytes (paper: 4 KiB, the memory page size).
    /// Used by the [`ChunkerKind::Fixed`] chunker and as the transport
    /// framing unit for `no-dedup` dumps (which never hash or chunk by
    /// content).
    pub chunk_size: usize,
    /// Chunking algorithm for the dedup strategies (default: fixed-size,
    /// the paper's scheme). CDC kinds carry their own size parameters.
    pub chunker: ChunkerKind,
    /// Reduction threshold `F`: at most this many fingerprints survive each
    /// merge; the rest are conservatively treated as unique. Paper: 2^17.
    pub f_threshold: usize,
    /// Load-aware partner selection (Algorithm 2). `false` gives the
    /// `coll-no-shuffle` ablation / the naive ring of the baselines.
    pub shuffle: bool,
    /// Hash chunks across all cores inside each rank.
    pub parallel_hash: bool,
    /// Payload movement discipline (zero-copy hot path vs the staged
    /// baseline the benchmark compares against).
    pub copy_mode: CopyMode,
    /// Per-chunk redundancy scheme (replication, Reed-Solomon stripes, or
    /// the automatic per-chunk choice). Defaults to the paper's `K`×
    /// replication.
    pub policy: RedundancyPolicy,
}

impl DumpConfig {
    /// Paper-faithful defaults for the given strategy: `K = 3`,
    /// 4 KiB chunks, `F = 2^17`, shuffling on for `coll-dedup`.
    pub fn paper_defaults(strategy: Strategy) -> Self {
        Self {
            strategy,
            replication: 3,
            chunk_size: 4096,
            chunker: ChunkerKind::Fixed,
            f_threshold: 1 << 17,
            shuffle: matches!(strategy, Strategy::CollDedup),
            parallel_hash: false,
            copy_mode: CopyMode::ZeroCopy,
            policy: RedundancyPolicy::Replicate(3),
        }
    }

    /// Builder-style: set the replication factor. Keeps a
    /// [`RedundancyPolicy::Replicate`] policy in sync so the two `K`s
    /// cannot silently diverge.
    pub fn with_replication(mut self, k: u32) -> Self {
        self.replication = k;
        if matches!(self.policy, RedundancyPolicy::Replicate(_)) {
            self.policy = RedundancyPolicy::Replicate(k);
        }
        self
    }

    /// Builder-style: select the redundancy policy. A
    /// [`RedundancyPolicy::Replicate`] policy also sets the replication
    /// factor; the coded policies leave `K` in place for the chunks they
    /// keep replicated (manifests, `Auto`'s small chunks).
    pub fn with_policy(mut self, policy: RedundancyPolicy) -> Self {
        self.policy = policy;
        if let RedundancyPolicy::Replicate(k) = policy {
            self.replication = k;
        }
        self
    }

    /// Builder-style: set the chunk size.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size;
        self
    }

    /// Builder-style: select the chunking algorithm.
    pub fn with_chunker(mut self, chunker: ChunkerKind) -> Self {
        self.chunker = chunker;
        self
    }

    /// Builder-style: set the reduction threshold `F`.
    pub fn with_f_threshold(mut self, f: usize) -> Self {
        self.f_threshold = f;
        self
    }

    /// Builder-style: enable or disable rank shuffling.
    pub fn with_shuffle(mut self, shuffle: bool) -> Self {
        self.shuffle = shuffle;
        self
    }

    /// Builder-style: enable or disable intra-rank parallel hashing.
    pub fn with_parallel_hash(mut self, parallel: bool) -> Self {
        self.parallel_hash = parallel;
        self
    }

    /// Builder-style: select the payload movement discipline.
    pub fn with_copy_mode(mut self, mode: CopyMode) -> Self {
        self.copy_mode = mode;
        self
    }

    /// Validate parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.replication == 0 {
            return Err(ConfigError::ZeroReplication);
        }
        if self.chunk_size == 0 {
            return Err(ConfigError::ZeroChunkSize);
        }
        if self.chunk_size > u32::MAX as usize {
            return Err(ConfigError::ChunkSizeOverflow {
                chunk_size: self.chunk_size,
            });
        }
        if self.f_threshold == 0 {
            return Err(ConfigError::ZeroFThreshold);
        }
        self.chunker
            .validate()
            .map_err(|reason| ConfigError::InvalidChunker { reason })?;
        self.policy.validate()?;
        if self.record_payload_cap() > u32::MAX as usize {
            return Err(ConfigError::ChunkSizeOverflow {
                chunk_size: self.record_payload_cap(),
            });
        }
        Ok(())
    }

    /// Largest chunk payload one exchange-record cell must hold for this
    /// config: the fixed chunk size for `no-dedup` (pure transport
    /// framing, no content chunking) and for the fixed chunker; the CDC
    /// chunker's `max_size` otherwise.
    pub fn record_payload_cap(&self) -> usize {
        match self.strategy {
            Strategy::NoDedup => self.chunk_size,
            Strategy::LocalDedup | Strategy::CollDedup => {
                self.chunker.max_chunk_len(self.chunk_size)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_paper() {
        let c = DumpConfig::paper_defaults(Strategy::CollDedup);
        assert_eq!(c.replication, 3);
        assert_eq!(c.chunk_size, 4096);
        assert_eq!(c.f_threshold, 1 << 17);
        assert!(c.shuffle);
        let c = DumpConfig::paper_defaults(Strategy::NoDedup);
        assert!(!c.shuffle, "baselines use the naive ring");
    }

    #[test]
    fn labels() {
        assert_eq!(Strategy::NoDedup.label(), "no-dedup");
        assert_eq!(Strategy::LocalDedup.label(), "local-dedup");
        assert_eq!(Strategy::CollDedup.label(), "coll-dedup");
    }

    #[test]
    fn builders_chain() {
        let c = DumpConfig::paper_defaults(Strategy::CollDedup)
            .with_replication(6)
            .with_chunk_size(512)
            .with_f_threshold(128)
            .with_shuffle(false);
        assert_eq!(c.replication, 6);
        assert_eq!(c.chunk_size, 512);
        assert_eq!(c.f_threshold, 128);
        assert!(!c.shuffle);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_params() {
        let base = DumpConfig::paper_defaults(Strategy::CollDedup);
        assert_eq!(
            base.with_replication(0).validate(),
            Err(ConfigError::ZeroReplication)
        );
        assert_eq!(
            base.with_chunk_size(0).validate(),
            Err(ConfigError::ZeroChunkSize)
        );
        assert_eq!(
            base.with_f_threshold(0).validate(),
            Err(ConfigError::ZeroFThreshold)
        );
        assert_eq!(
            base.with_chunk_size(u32::MAX as usize + 1).validate(),
            Err(ConfigError::ChunkSizeOverflow {
                chunk_size: u32::MAX as usize + 1
            })
        );
        assert!(base.validate().is_ok());
    }

    #[test]
    fn chunker_selection_validates_and_sizes_the_cell() {
        use replidedup_hash::{GearParams, RabinParams};
        let base = DumpConfig::paper_defaults(Strategy::CollDedup);
        assert_eq!(base.chunker, ChunkerKind::Fixed);
        assert_eq!(base.record_payload_cap(), 4096);

        let gear = base.with_chunker(ChunkerKind::Gear(GearParams::default()));
        assert!(gear.validate().is_ok());
        assert_eq!(gear.record_payload_cap(), GearParams::default().max_size);

        let rabin = base.with_chunker(ChunkerKind::Rabin(RabinParams::default()));
        assert_eq!(rabin.record_payload_cap(), RabinParams::default().max_size);

        // no-dedup never chunks by content: the cap is transport framing.
        let nd = DumpConfig::paper_defaults(Strategy::NoDedup)
            .with_chunker(ChunkerKind::Gear(GearParams::default()));
        assert_eq!(nd.record_payload_cap(), 4096);

        let bad = base.with_chunker(ChunkerKind::Gear(GearParams {
            min_size: 0,
            avg_size: 64,
            max_size: 128,
        }));
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::InvalidChunker { .. })
        ));
    }

    #[test]
    fn policy_validation_and_selection() {
        let base = DumpConfig::paper_defaults(Strategy::CollDedup);
        assert_eq!(base.policy, RedundancyPolicy::Replicate(3));

        // Replicate policy and K stay in sync in both directions.
        let c = base.with_policy(RedundancyPolicy::Replicate(2));
        assert_eq!(c.replication, 2);
        let c = base.with_replication(5);
        assert_eq!(c.policy, RedundancyPolicy::Replicate(5));

        // Coded policies leave K alone (manifests and Auto's small chunks
        // still replicate K times).
        let rs = base.with_policy(RedundancyPolicy::Rs { k: 4, m: 2 });
        assert_eq!(rs.replication, 3);
        assert!(rs.validate().is_ok());

        for bad in [
            RedundancyPolicy::Rs { k: 0, m: 2 },
            RedundancyPolicy::Rs { k: 4, m: 0 },
            RedundancyPolicy::Auto {
                k: 200,
                m: 56,
                replicate_below: 0,
            },
        ] {
            let (k, m) = bad.rs_params().unwrap();
            assert_eq!(
                base.with_policy(bad).validate(),
                Err(ConfigError::InvalidRsParams { k, m })
            );
        }
        assert_eq!(
            base.with_policy(RedundancyPolicy::Replicate(0)).validate(),
            Err(ConfigError::ZeroReplication)
        );
    }

    #[test]
    fn policy_chunk_classification() {
        let rep = RedundancyPolicy::Replicate(3);
        let rs = RedundancyPolicy::Rs { k: 4, m: 2 };
        let auto = RedundancyPolicy::Auto {
            k: 4,
            m: 2,
            replicate_below: 1024,
        };

        // Replication never codes.
        assert!(!rep.codes_chunk(1 << 20, 1));
        // Rs codes everything the cluster does not cover naturally: the
        // dedup credit keeps m+1 natural copies instead of a stripe.
        assert!(rs.codes_chunk(100, 1));
        assert!(rs.codes_chunk(100, 2));
        assert!(!rs.codes_chunk(100, 3), "freq >= m+1 is credited");
        // Auto also exempts small chunks.
        assert!(!auto.codes_chunk(1023, 1));
        assert!(auto.codes_chunk(1024, 1));
        assert!(!auto.codes_chunk(1 << 20, 3), "hot chunks stay replicated");

        assert_eq!(rep.hmerge_k(3), 3);
        assert_eq!(rs.hmerge_k(3), 3, "m + 1 natural copies");
        assert_eq!(RedundancyPolicy::Rs { k: 4, m: 1 }.hmerge_k(3), 2);
        assert_eq!(auto.hmerge_k(2), 3, "Auto keeps max(K, m+1)");

        assert_eq!(rep.fault_tolerance(), 2);
        assert_eq!(rs.fault_tolerance(), 2);
        assert_eq!(rep.label(), "rep3");
        assert_eq!(rs.label(), "rs4+2");
        assert_eq!(auto.label(), "auto4+2");
        assert_eq!(rep.rs_params(), None);
        assert_eq!(auto.rs_params(), Some((4, 2)));
    }

    #[test]
    fn config_error_display_is_informative() {
        assert!(ConfigError::ZeroReplication
            .to_string()
            .contains("replication"));
        assert!(ConfigError::ChunkSizeOverflow { chunk_size: 5 }
            .to_string()
            .contains('5'));
    }
}
