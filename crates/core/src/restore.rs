//! Collective restore: reconstruct every rank's buffer after failures.
//!
//! The paper's evaluation exercises checkpoint *writing*; restart is left
//! implicit. A replication library is only useful if the replicas are
//! reachable again, so this module adds the missing half as a collective
//! protocol that uses only messages (no shared-memory shortcuts):
//!
//! 1. **Manifest recovery** — each rank advertises which manifests its node
//!    holds (its own plus the ones replicated to it as a partner); ranks
//!    whose node lost the manifest get it from the lowest-ranked advertiser
//!    (all ranks compute the identical assignment from the allgather, so no
//!    negotiation is needed — the same trick the dump uses for offsets).
//! 2. **Chunk recovery** — each rank lists the manifest chunks missing from
//!    its local store; holders are discovered with a second allgather over
//!    the union of requested fingerprints; the lowest-ranked live holder
//!    serves each chunk. Restored chunks are written back to the local
//!    store, so a revived node is re-seeded as a side effect.
//!
//! `no-dedup` dumps restore the raw blob through the same
//! advertise/assign/serve pattern at blob granularity.
//!
//! When the dump ran under an erasure-coding redundancy policy, a payload
//! whose replicas are all gone gets one last chance: Reed-Solomon
//! reconstruction from any `k` surviving shards of its stripe
//! ([`replidedup_storage::Cluster::reconstruct_payload`]). Reconstructed
//! payloads are hash-verified and re-seeded locally, exactly like replica
//! rescues.
//!
//! Every rank participates in every collective step even when its own
//! restore already failed (e.g. manifest unrecoverable), so one lost rank
//! can never deadlock the others.

use bytes::Bytes;
use replidedup_buf::{global_pool, record_copy, Chunk};
use replidedup_hash::{Fingerprint, FpHashSet};
use replidedup_mpi::wire::{FrameReader, FrameWriter};
use replidedup_mpi::{Comm, CommError, Tag};
use replidedup_storage::{DumpId, StorageError, StripeKey};

use crate::config::Strategy;
use crate::dump::DumpContext;
use crate::retry::RetryPolicy;

const TAG_RESTORE_MANIFEST: Tag = 0x5250_0002;
const TAG_RESTORE_CHUNKS: Tag = 0x5250_0003;
const TAG_RESTORE_BLOB: Tag = 0x5250_0004;

/// Failures of a collective restore (per rank).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RestoreError {
    /// Local node refused I/O.
    Storage(StorageError),
    /// No live node holds this rank's manifest: more than `K-1` of its
    /// replica holders failed.
    ManifestLost {
        /// The rank whose manifest is gone.
        rank: u32,
    },
    /// No live node holds this rank's raw blob (`no-dedup`).
    BlobLost {
        /// The rank whose blob is gone.
        rank: u32,
    },
    /// A chunk referenced by the manifest has no live holder.
    ChunkLost(Fingerprint),
    /// The dump this restore targets committed in degraded mode while this
    /// rank was dead: its data was never written anywhere. Distinct from
    /// [`RestoreError::ManifestLost`], where the data existed but every
    /// replica holder has since failed.
    AbsentAtDump {
        /// The rank whose data was absent.
        rank: u32,
        /// The degraded dump generation.
        dump_id: DumpId,
    },
    /// A rank died (or a deadlock was suspected) during one of the restore
    /// protocol's collective steps.
    Comm(CommError),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Storage(e) => write!(f, "storage failure during restore: {e}"),
            RestoreError::ManifestLost { rank } => write!(f, "manifest of rank {rank} lost"),
            RestoreError::BlobLost { rank } => write!(f, "blob of rank {rank} lost"),
            RestoreError::ChunkLost(fp) => write!(f, "chunk {fp} lost on all nodes"),
            RestoreError::AbsentAtDump { rank, dump_id } => write!(
                f,
                "rank {rank}'s data was absent when dump {dump_id} committed (degraded dump)"
            ),
            RestoreError::Comm(e) => write!(f, "communication failure during restore: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RestoreError::Storage(e) => Some(e),
            RestoreError::Comm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for RestoreError {
    fn from(e: StorageError) -> Self {
        RestoreError::Storage(e)
    }
}

impl From<CommError> for RestoreError {
    fn from(e: CommError) -> Self {
        RestoreError::Comm(e)
    }
}

pub(crate) fn restore_impl(
    comm: &mut Comm,
    ctx: &DumpContext<'_>,
    strategy: Strategy,
    policy: &RetryPolicy,
) -> Result<Chunk, RestoreError> {
    match strategy {
        Strategy::NoDedup => restore_blob(comm, ctx, policy),
        Strategy::LocalDedup | Strategy::CollDedup => restore_chunks(comm, ctx, policy),
    }
}

/// Run one storage read under the restore retry policy. Retries are only
/// taken on [`StorageError::is_transient`] failures; when any happen, a
/// zero-length `restore.retry` span marks the spot in the phase trace and
/// the `restore_retries` counter records how many attempts it cost.
fn fetch_with_retry<T>(
    comm: &mut Comm,
    policy: &RetryPolicy,
    op: impl FnMut() -> Result<T, StorageError>,
) -> Result<T, StorageError> {
    let (out, retries) = policy.run(op);
    if retries > 0 {
        comm.tracer().enter("restore.retry");
        comm.tracer().exit("restore.retry");
        comm.tracer().counter("restore_retries", u64::from(retries));
    }
    out
}

/// Verified chunk fetch for the reassemble step: read the local copy,
/// re-hash it against its fingerprint, and on corruption (or a local copy
/// that is missing / past its retry budget) fall back to any intact live
/// replica through [`replidedup_storage::Cluster::find_chunk`]'s repair
/// index — a deliberate storage-layer escape hatch outside the restore
/// message protocol, taken only when the protocol's own recovery already
/// ran and the local device still cannot produce intact bytes. Corrupt
/// copies are quarantined wherever they are found; a rescued chunk is
/// re-seeded locally so the next read is clean.
fn fetch_verified(
    comm: &mut Comm,
    ctx: &DumpContext<'_>,
    policy: &RetryPolicy,
    node: replidedup_storage::NodeId,
    fp: &Fingerprint,
) -> Result<Bytes, RestoreError> {
    match fetch_with_retry(comm, policy, || ctx.cluster.get_chunk(node, fp)) {
        Ok(data) if ctx.hasher.fingerprint(&data) == *fp => return Ok(data),
        Ok(_) => {
            // Bit rot slipped past the dump: drop the bad copy so it can
            // never be served again, then go hunting for a good one.
            ctx.cluster.quarantine_chunk(node, fp).ok();
        }
        // Anything else (missing, node down, retries exhausted): the
        // replica scan below is the last line before declaring loss.
        Err(_) => {}
    }
    comm.tracer().counter("restore_replica_fallback", 1);
    for nd in 0..ctx.cluster.node_count() {
        if nd == node || !ctx.cluster.has_chunk(nd, fp) {
            continue;
        }
        if let Ok(data) = fetch_with_retry(comm, policy, || ctx.cluster.get_chunk(nd, fp)) {
            if ctx.hasher.fingerprint(&data) == *fp {
                ctx.cluster.put_chunk(node, *fp, data.clone()).ok();
                return Ok(data);
            }
            ctx.cluster.quarantine_chunk(nd, fp).ok();
        }
    }
    // Last line of defence: the chunk was erasure-coded and any `k` of its
    // stripe's shards survive somewhere in the cluster.
    if let Some(data) = ctx.cluster.reconstruct_payload(StripeKey::Chunk(*fp)) {
        if ctx.hasher.fingerprint(&data) == *fp {
            comm.tracer().counter("restore_rs_reconstructed", 1);
            ctx.cluster.put_chunk(node, *fp, data.clone()).ok();
            return Ok(data);
        }
    }
    Err(RestoreError::ChunkLost(*fp))
}

/// Deterministic service assignment shared by all ranks: for each needy
/// rank, the lowest-ranked advertiser serves. Returns `served[s]` = list of
/// needy ranks rank `s` must serve, and `server_of[r]` = server of rank `r`
/// (`None` when no one can).
fn assign_servers(
    world: u32,
    needs: &[bool],
    holders: &[Vec<u32>],
) -> (Vec<Vec<u32>>, Vec<Option<u32>>) {
    let mut served = vec![Vec::new(); world as usize];
    let mut server_of = vec![None; world as usize];
    for r in 0..world {
        if !needs[r as usize] {
            continue;
        }
        let server = (0..world).find(|&s| s != r && holders[s as usize].binary_search(&r).is_ok());
        if let Some(s) = server {
            served[s as usize].push(r);
            server_of[r as usize] = Some(s);
        }
    }
    (served, server_of)
}

fn restore_blob(
    comm: &mut Comm,
    ctx: &DumpContext<'_>,
    policy: &RetryPolicy,
) -> Result<Chunk, RestoreError> {
    let me = comm.rank();
    let n = comm.size();
    let node = ctx.cluster.node_of(me);
    comm.tracer().enter("blob_recovery");
    let local = fetch_with_retry(comm, policy, || ctx.cluster.get_blob(node, me, ctx.dump_id)).ok();
    let advertised = ctx
        .cluster
        .blob_owners(node, ctx.dump_id)
        .unwrap_or_default();
    let tombstoned = ctx
        .cluster
        .absent_ranks(node, ctx.dump_id)
        .unwrap_or_default();
    let info = comm.try_allgather((local.is_none(), advertised, tombstoned))?;
    let needs: Vec<bool> = info.iter().map(|(need, _, _)| *need).collect();
    let absent = info.iter().any(|(_, _, a)| a.binary_search(&me).is_ok());
    let holders: Vec<Vec<u32>> = info.into_iter().map(|(_, h, _)| h).collect();
    let (served, server_of) = assign_servers(n, &needs, &holders);
    for &r in &served[me as usize] {
        // The served blob travels as the stored allocation itself — no
        // length-prefixed re-encode, no copy.
        let blob = fetch_with_retry(comm, policy, || ctx.cluster.get_blob(node, r, ctx.dump_id))?;
        comm.try_send_bytes(r, TAG_RESTORE_BLOB, blob)?;
    }
    let result = match local {
        Some(b) => Ok(Chunk::from(b)),
        None => match server_of[me as usize] {
            Some(s) => {
                let data = comm.try_recv_chunk(s, TAG_RESTORE_BLOB)?;
                // Re-seed the local device so this node serves next time
                // (refcount bump — the stored blob is the received one).
                ctx.cluster
                    .put_blob(node, me, ctx.dump_id, data.as_bytes().clone())
                    .ok();
                Ok(data)
            }
            None => {
                // No live replica — but a blob dumped under an `Rs` policy
                // was striped instead of replicated, so any `k` surviving
                // shards can still rebuild it.
                if let Some(data) = ctx.cluster.reconstruct_payload(StripeKey::Blob {
                    owner: me,
                    dump_id: ctx.dump_id,
                }) {
                    comm.tracer().counter("restore_rs_reconstructed", 1);
                    ctx.cluster
                        .put_blob(node, me, ctx.dump_id, data.clone())
                        .ok();
                    Ok(Chunk::from(data))
                } else if absent {
                    Err(RestoreError::AbsentAtDump {
                        rank: me,
                        dump_id: ctx.dump_id,
                    })
                } else {
                    Err(RestoreError::BlobLost { rank: me })
                }
            }
        },
    };
    comm.try_barrier()?;
    comm.tracer().exit("blob_recovery");
    result
}

fn restore_chunks(
    comm: &mut Comm,
    ctx: &DumpContext<'_>,
    policy: &RetryPolicy,
) -> Result<Chunk, RestoreError> {
    let me = comm.rank();
    let n = comm.size();
    let node = ctx.cluster.node_of(me);

    // ---- Step 1: manifest recovery --------------------------------------
    comm.tracer().enter("manifest_recovery");
    let mut manifest = fetch_with_retry(comm, policy, || {
        ctx.cluster.get_manifest(node, me, ctx.dump_id)
    })
    .ok();
    let advertised = ctx
        .cluster
        .manifest_owners(node, ctx.dump_id)
        .unwrap_or_default();
    let tombstoned = ctx
        .cluster
        .absent_ranks(node, ctx.dump_id)
        .unwrap_or_default();
    let info = comm.try_allgather((manifest.is_none(), advertised, tombstoned))?;
    let needs: Vec<bool> = info.iter().map(|(need, _, _)| *need).collect();
    let absent = info.iter().any(|(_, _, a)| a.binary_search(&me).is_ok());
    let holders: Vec<Vec<u32>> = info.into_iter().map(|(_, h, _)| h).collect();
    let (served, server_of) = assign_servers(n, &needs, &holders);
    for &r in &served[me as usize] {
        let m = fetch_with_retry(comm, policy, || {
            ctx.cluster.get_manifest(node, r, ctx.dump_id)
        })?;
        comm.try_send_val(r, TAG_RESTORE_MANIFEST, &m)?;
    }
    if manifest.is_none() {
        if let Some(s) = server_of[me as usize] {
            let m: replidedup_storage::Manifest = comm.try_recv_val(s, TAG_RESTORE_MANIFEST)?;
            ctx.cluster.put_manifest(node, m.clone()).ok();
            manifest = Some(m);
        }
    }
    let manifest_lost = manifest.is_none();
    comm.tracer().exit("manifest_recovery");

    // ---- Step 2: chunk recovery ------------------------------------------
    comm.tracer().enter("chunk_recovery");
    // Missing = manifest chunks absent from my node (deduplicated).
    let mut missing: Vec<Fingerprint> = Vec::new();
    if let Some(m) = &manifest {
        let mut seen = FpHashSet::default();
        for fp in &m.chunks {
            if seen.insert(*fp) && !ctx.cluster.has_chunk(node, fp) {
                missing.push(*fp);
            }
        }
        missing.sort_unstable();
    }
    let all_missing: Vec<Vec<Fingerprint>> = comm.try_allgather(missing.clone())?;

    // Union of every requested fingerprint, sorted for stable indexing.
    let mut union: Vec<Fingerprint> = all_missing.iter().flatten().copied().collect();
    union.sort_unstable();
    union.dedup();

    // Who holds what: one bit per union entry, allgathered.
    let my_have: Vec<bool> = union
        .iter()
        .map(|fp| ctx.cluster.has_chunk(node, fp))
        .collect();
    let all_have: Vec<Vec<bool>> = comm.try_allgather(my_have)?;

    let index_of = |fp: &Fingerprint| union.binary_search(fp).expect("fp from union");
    let server_of_fp = |fp: &Fingerprint| -> Option<u32> {
        let i = index_of(fp);
        (0..n).find(|&s| all_have[s as usize][i])
    };

    // Serve: group my outgoing chunks per requester into one scatter-gather
    // frame — fingerprints in the header segments, chunk bodies attached as
    // zero-copy slices of the store's own allocations.
    for (r, wanted) in all_missing.iter().enumerate() {
        if r as u32 == me || wanted.is_empty() {
            continue;
        }
        let mut batch = FrameWriter::new();
        let mut batched = 0usize;
        for fp in wanted {
            if server_of_fp(fp) == Some(me) {
                let data = fetch_with_retry(comm, policy, || ctx.cluster.get_chunk(node, fp))?;
                batch.put(fp);
                batch.attach(data);
                batched += 1;
            }
        }
        if batched > 0 {
            comm.try_send_frame(r as u32, TAG_RESTORE_CHUNKS, batch.finish())?;
        }
    }

    // Receive: I know exactly which servers owe me a batch.
    let mut lost: Option<Fingerprint> = None;
    let mut expected_servers: Vec<u32> = Vec::new();
    for fp in &missing {
        match server_of_fp(fp) {
            Some(s) if s != me => expected_servers.push(s),
            Some(_) => {} // cannot happen: missing means I do not have it
            None => {
                // No live holder anywhere — try Reed-Solomon reconstruction
                // from surviving shards before declaring the chunk lost.
                // A rescued chunk is seeded locally so the reassemble step
                // (and every later restore) reads it like any other copy.
                let rebuilt = ctx
                    .cluster
                    .reconstruct_payload(StripeKey::Chunk(*fp))
                    .filter(|data| ctx.hasher.fingerprint(data) == *fp);
                match rebuilt {
                    Some(data) => {
                        comm.tracer().counter("restore_rs_reconstructed", 1);
                        ctx.cluster.put_chunk(node, *fp, data).ok();
                    }
                    None => lost = lost.or(Some(*fp)),
                }
            }
        }
    }
    expected_servers.sort_unstable();
    expected_servers.dedup();
    for s in expected_servers {
        let mut batch = FrameReader::new(comm.try_recv_frame(s, TAG_RESTORE_CHUNKS)?);
        while batch.remaining() > 0 {
            let fp: Fingerprint = batch
                .get()
                .unwrap_or_else(|e| panic!("rank {me}: corrupt chunk batch from {s}: {e}"));
            let data = batch
                .take_payload()
                .unwrap_or_else(|e| panic!("rank {me}: corrupt chunk batch from {s}: {e}"));
            // Write back: restores the failed node's share of the data
            // (zero-copy — the stored chunk is a slice of the frame).
            ctx.cluster.put_chunk(node, fp, data.into_bytes()).ok();
        }
    }

    comm.tracer().exit("chunk_recovery");
    comm.tracer()
        .counter("chunks_recovered", missing.len() as u64);

    // ---- Step 3: reassemble ----------------------------------------------
    comm.tracer().enter("reassemble");
    let result = if manifest_lost && absent {
        Err(RestoreError::AbsentAtDump {
            rank: me,
            dump_id: ctx.dump_id,
        })
    } else if manifest_lost {
        Err(RestoreError::ManifestLost { rank: me })
    } else if let Some(fp) = lost {
        Err(RestoreError::ChunkLost(fp))
    } else {
        let m = manifest.expect("checked above");
        // Pool-recycled reassembly buffer; the gather below is the one
        // unavoidable copy of a chunked restore (scattered chunks into a
        // contiguous buffer), so it is charged to the copy accounting. The
        // filled buffer freezes into the returned `Chunk` without another
        // copy.
        let mut buf = global_pool().take(m.total_len as usize);
        let mut err = None;
        for (i, fp) in m.chunks.iter().enumerate() {
            // Verified reassemble: every chunk is re-hashed before use, so
            // silent bit rot can never leak into a restored buffer.
            match fetch_verified(comm, ctx, policy, node, fp) {
                Ok(data) => {
                    debug_assert_eq!(data.len(), m.chunk_len(i), "chunk {i} length mismatch");
                    buf.extend_from_slice(&data);
                    record_copy(data.len());
                }
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        match err {
            Some(e) => Err(e),
            None => Ok(Chunk::from(buf)),
        }
    };
    comm.try_barrier()?;
    comm.tracer().exit("reassemble");
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DumpConfig, Strategy};
    use crate::dump::dump_impl;
    use replidedup_buf::Chunk;
    use replidedup_hash::Sha1ChunkHasher;
    use replidedup_mpi::WorldConfig;
    use replidedup_storage::{Cluster, Placement};

    fn buffer_of(rank: u32) -> Vec<u8> {
        // Mixed shared/private content with a tail chunk.
        let mut buf = vec![0xAB; 64]; // shared across ranks
        buf.extend_from_slice(&[rank as u8 + 1; 64]);
        buf.extend_from_slice(&[0xCD; 20]); // tail
        buf
    }

    fn dump_then<T: Send>(
        n: u32,
        strategy: Strategy,
        k: u32,
        between: impl Fn(&Cluster) + Sync,
        after: impl Fn(&mut Comm, &DumpContext<'_>) -> T + Sync,
    ) -> Vec<T> {
        let cluster = Cluster::new(Placement::one_per_node(n));
        let cfg = DumpConfig::paper_defaults(strategy)
            .with_replication(k)
            .with_chunk_size(64);
        let out = WorldConfig::default()
            .launch(n, |comm| {
                let ctx = DumpContext {
                    cluster: &cluster,
                    hasher: &Sha1ChunkHasher,
                    dump_id: 1,
                };
                let buf = buffer_of(comm.rank());
                dump_impl(comm, &ctx, &Chunk::from(&buf[..]), &cfg).expect("dump");
                comm.barrier();
                if comm.rank() == 0 {
                    between(&cluster);
                }
                comm.barrier();
                after(comm, &ctx)
            })
            .expect_all();
        out.results
    }

    #[test]
    fn restore_without_failures_roundtrips_all_strategies() {
        for strategy in [Strategy::NoDedup, Strategy::LocalDedup, Strategy::CollDedup] {
            let results = dump_then(
                4,
                strategy,
                3,
                |_| {},
                |comm, ctx| {
                    let buf = restore_impl(comm, ctx, strategy, &RetryPolicy::default_restore())
                        .map(Vec::from)
                        .expect("restore");
                    (comm.rank(), buf)
                },
            );
            for (rank, buf) in results {
                assert_eq!(buf, buffer_of(rank), "{strategy:?} rank {rank}");
            }
        }
    }

    #[test]
    fn restore_survives_k_minus_1_failures() {
        for strategy in [Strategy::NoDedup, Strategy::LocalDedup, Strategy::CollDedup] {
            let results = dump_then(
                5,
                strategy,
                3,
                |cluster| {
                    // Fail K-1 = 2 nodes; revive as blank replacements.
                    cluster.fail_node(1);
                    cluster.fail_node(3);
                    cluster.revive_node(1);
                    cluster.revive_node(3);
                },
                |comm, ctx| {
                    let buf = restore_impl(comm, ctx, strategy, &RetryPolicy::default_restore())
                        .map(Vec::from)
                        .expect("restore after failures");
                    (comm.rank(), buf)
                },
            );
            for (rank, buf) in results {
                assert_eq!(buf, buffer_of(rank), "{strategy:?} rank {rank}");
            }
        }
    }

    #[test]
    fn restore_reseeds_revived_nodes() {
        let results = dump_then(
            4,
            Strategy::CollDedup,
            2,
            |cluster| {
                cluster.fail_node(2);
                cluster.revive_node(2);
            },
            |comm, ctx| {
                restore_impl(
                    comm,
                    ctx,
                    Strategy::CollDedup,
                    &RetryPolicy::default_restore(),
                )
                .map(Vec::from)
                .expect("restore");
                comm.barrier();
                // After restore, node 2 must again hold rank 2's chunks.
                if comm.rank() == 2 {
                    let m = ctx
                        .cluster
                        .get_manifest(2, 2, 1)
                        .expect("manifest re-seeded");
                    m.chunks.iter().all(|fp| ctx.cluster.has_chunk(2, fp))
                } else {
                    true
                }
            },
        );
        assert!(results.into_iter().all(|ok| ok));
    }

    #[test]
    fn too_many_failures_report_loss_without_deadlock() {
        // K=2 but both copies of rank 1's data die (its own node plus its
        // partner's). Rank 1 must get a loss error; everyone else restores.
        let results = dump_then(
            4,
            Strategy::CollDedup,
            2,
            |cluster| {
                // With identity shuffle (no-shuffle default is shuffle=true
                // for coll; partners depend on loads — fail rank 1's node
                // and every other node that could hold its manifest: for
                // K=2 exactly one partner holds it. Failing all nodes but
                // one that holds nothing of rank 1 is fiddly; instead fail
                // every node except node 0 and revive them, guaranteeing
                // loss unless node 0 happens to hold everything of rank 1.
                for nd in 1..4 {
                    cluster.fail_node(nd);
                    cluster.revive_node(nd);
                }
            },
            |comm, ctx| {
                (
                    comm.rank(),
                    restore_impl(
                        comm,
                        ctx,
                        Strategy::CollDedup,
                        &RetryPolicy::default_restore(),
                    )
                    .map(Vec::from),
                )
            },
        );
        // Node 0 alone cannot hold all four ranks' data for K=2: at least
        // one rank must report loss — as a typed error, not a deadlock or
        // panic (which is the property under test).
        let losses = results.iter().filter(|(_, r)| r.is_err()).count();
        assert!(losses >= 1, "expected at least one loss, got {results:?}");
        // Whatever did restore must be byte-correct.
        for (rank, r) in &results {
            if let Ok(buf) = r {
                assert_eq!(*buf, buffer_of(*rank), "rank {rank} restored corrupt data");
            }
        }
    }

    #[test]
    fn assign_servers_picks_lowest_and_skips_self() {
        let needs = vec![true, false, true, false];
        let holders = vec![
            vec![0, 2], // rank 0 holds 0 and 2 (but needs 0 itself)
            vec![0, 1], // rank 1 holds 0
            vec![2],    // rank 2 holds 2 (itself, needy)
            vec![2, 3], // rank 3 holds 2
        ];
        let (served, server_of) = assign_servers(4, &needs, &holders);
        assert_eq!(server_of[0], Some(1), "lowest non-self holder of 0");
        assert_eq!(server_of[2], Some(0));
        assert_eq!(served[1], vec![0]);
        assert_eq!(served[0], vec![2]);
        assert!(served[2].is_empty() && served[3].is_empty());
    }

    #[test]
    fn assign_servers_reports_unservable() {
        let needs = vec![true, false];
        let holders = vec![vec![], vec![]];
        let (served, server_of) = assign_servers(2, &needs, &holders);
        assert_eq!(server_of[0], None);
        assert!(served.iter().all(Vec::is_empty));
    }

    #[test]
    fn second_generation_dump_restores_independently() {
        let cluster = Cluster::new(Placement::one_per_node(3));
        let cfg = DumpConfig::paper_defaults(Strategy::CollDedup)
            .with_replication(2)
            .with_chunk_size(64);
        let out = WorldConfig::default()
            .launch(3, |comm| {
                let rank = comm.rank();
                let ctx1 = DumpContext {
                    cluster: &cluster,
                    hasher: &Sha1ChunkHasher,
                    dump_id: 1,
                };
                dump_impl(comm, &ctx1, &Chunk::from(&[rank as u8; 100][..]), &cfg).unwrap();
                let ctx2 = DumpContext {
                    cluster: &cluster,
                    hasher: &Sha1ChunkHasher,
                    dump_id: 2,
                };
                dump_impl(
                    comm,
                    &ctx2,
                    &Chunk::from(&[rank as u8 + 100; 100][..]),
                    &cfg,
                )
                .unwrap();
                let b1 = restore_impl(
                    comm,
                    &ctx1,
                    Strategy::CollDedup,
                    &RetryPolicy::default_restore(),
                )
                .map(Vec::from)
                .unwrap();
                let b2 = restore_impl(
                    comm,
                    &ctx2,
                    Strategy::CollDedup,
                    &RetryPolicy::default_restore(),
                )
                .map(Vec::from)
                .unwrap();
                (b1, b2, rank)
            })
            .expect_all();
        for (b1, b2, rank) in out.results {
            assert_eq!(b1, vec![rank as u8; 100]);
            assert_eq!(b2, vec![rank as u8 + 100; 100]);
        }
    }

    #[test]
    fn rs_coded_dump_restores_via_reconstruction() {
        use crate::config::RedundancyPolicy;
        // Under Rs(4+2) the private chunks exist only as stripe shards —
        // no replicas anywhere — so a successful restore proves the
        // decode-from-any-k reconstruction path end to end.
        let n = 6;
        let cluster = Cluster::new(Placement::one_per_node(n));
        let cfg = DumpConfig::paper_defaults(Strategy::CollDedup)
            .with_replication(3)
            .with_chunk_size(64)
            .with_policy(RedundancyPolicy::Rs { k: 4, m: 2 });
        let out = WorldConfig::default()
            .launch(n, |comm| {
                let ctx = DumpContext {
                    cluster: &cluster,
                    hasher: &Sha1ChunkHasher,
                    dump_id: 1,
                };
                let buf = buffer_of(comm.rank());
                dump_impl(comm, &ctx, &Chunk::from(&buf[..]), &cfg).expect("dump");
                comm.barrier();
                restore_impl(
                    comm,
                    &ctx,
                    Strategy::CollDedup,
                    &RetryPolicy::default_restore(),
                )
                .map(Vec::from)
                .expect("restore reconstructs coded chunks")
            })
            .expect_all();
        for (rank, buf) in out.results.into_iter().enumerate() {
            assert_eq!(buf, buffer_of(rank as u32), "rank {rank} byte-exact");
        }
    }
}
