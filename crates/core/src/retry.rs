//! Bounded retry with deterministic backoff for restore's storage reads.
//!
//! Local devices hiccup ([`StorageError::Transient`]) without being lost;
//! failing a whole collective restore over one recoverable read would be
//! self-inflicted data loss. A [`RetryPolicy`] bounds how often a fetch is
//! retried and spaces the attempts with a pure, deterministic backoff
//! schedule: `delay(attempt)` is a function of the policy and the attempt
//! number only, never of wall-clock state, so a simulated clock (or a
//! recording sleeper in tests) replays the identical schedule. Only
//! transient errors are retried — every other [`StorageError`] is a stable
//! fact about the cluster that waiting cannot change.

use std::time::Duration;

use replidedup_storage::StorageError;

/// Deterministic backoff schedule between retry attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Backoff {
    /// Retry immediately.
    None,
    /// The same pause before every retry.
    Fixed(Duration),
    /// `base * attempt` before retry number `attempt` (1-based).
    Linear(Duration),
    /// `base * 2^(attempt-1)`, saturating at `cap`.
    Exponential {
        /// Pause before the first retry.
        base: Duration,
        /// Upper bound on any single pause.
        cap: Duration,
    },
}

/// Bounded retry policy: at most `max_attempts` tries of an operation,
/// spaced by `backoff`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`0` is treated as `1`:
    /// the operation always runs at least once).
    pub max_attempts: u32,
    /// Spacing between attempts.
    pub backoff: Backoff,
}

impl RetryPolicy {
    /// No retries: one attempt, transient errors surface immediately.
    pub const fn none() -> Self {
        Self {
            max_attempts: 1,
            backoff: Backoff::None,
        }
    }

    /// Restore's default: 4 attempts with a short exponential backoff
    /// (1 ms, 2 ms, 4 ms) — enough to ride out an injected hiccup burst
    /// without stretching test runtimes.
    pub const fn default_restore() -> Self {
        Self {
            max_attempts: 4,
            backoff: Backoff::Exponential {
                base: Duration::from_millis(1),
                cap: Duration::from_millis(16),
            },
        }
    }

    /// The pause before retry number `attempt` (1-based: the delay taken
    /// after the `attempt`-th failure). Pure — the whole schedule is
    /// derivable up front, which is what makes the policy
    /// simulated-clock friendly.
    pub fn delay(&self, attempt: u32) -> Duration {
        let attempt = attempt.max(1);
        match self.backoff {
            Backoff::None => Duration::ZERO,
            Backoff::Fixed(d) => d,
            Backoff::Linear(base) => base.saturating_mul(attempt),
            Backoff::Exponential { base, cap } => {
                // Every step saturates: the doubling factor pins to
                // u32::MAX once the shift leaves the type's width, the
                // multiply saturates Duration's range, and the cap bounds
                // the result — so even `attempt == u32::MAX` with a huge
                // base lands exactly on `cap` instead of wrapping.
                let factor = if attempt > u32::BITS {
                    u32::MAX
                } else {
                    1u32 << (attempt - 1)
                };
                base.saturating_mul(factor).min(cap)
            }
        }
    }

    /// Run `op` under this policy with an injectable sleeper: on each
    /// transient failure (while attempts remain) `sleep` is called with
    /// the deterministic [`RetryPolicy::delay`] for that attempt and `op`
    /// is retried. Non-transient errors and exhaustion return the error as
    /// is. Returns `(result, retries_taken)`.
    pub fn run_with_sleep<T>(
        &self,
        mut sleep: impl FnMut(Duration),
        mut op: impl FnMut() -> Result<T, StorageError>,
    ) -> (Result<T, StorageError>, u32) {
        let attempts = self.max_attempts.max(1);
        let mut retries = 0;
        loop {
            match op() {
                Err(e) if e.is_transient() && retries + 1 < attempts => {
                    retries += 1;
                    sleep(self.delay(retries));
                }
                done => return (done, retries),
            }
        }
    }

    /// [`RetryPolicy::run_with_sleep`] with a real thread sleep.
    pub fn run<T>(
        &self,
        op: impl FnMut() -> Result<T, StorageError>,
    ) -> (Result<T, StorageError>, u32) {
        self.run_with_sleep(std::thread::sleep, op)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::default_restore()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    fn transient() -> StorageError {
        StorageError::Transient { node: 0 }
    }

    #[test]
    fn delay_schedules_are_pure_and_deterministic() {
        let fixed = RetryPolicy {
            max_attempts: 5,
            backoff: Backoff::Fixed(Duration::from_millis(7)),
        };
        assert_eq!(fixed.delay(1), Duration::from_millis(7));
        assert_eq!(fixed.delay(4), Duration::from_millis(7));

        let linear = RetryPolicy {
            max_attempts: 5,
            backoff: Backoff::Linear(Duration::from_millis(2)),
        };
        assert_eq!(linear.delay(1), Duration::from_millis(2));
        assert_eq!(linear.delay(3), Duration::from_millis(6));

        let exp = RetryPolicy::default_restore();
        assert_eq!(exp.delay(1), Duration::from_millis(1));
        assert_eq!(exp.delay(2), Duration::from_millis(2));
        assert_eq!(exp.delay(3), Duration::from_millis(4));
        assert_eq!(exp.delay(40), Duration::from_millis(16), "cap holds");
        assert_eq!(RetryPolicy::none().delay(1), Duration::ZERO);
    }

    #[test]
    fn exponential_backoff_saturates_at_the_cap_for_extreme_attempts() {
        // The cap must hold at every point where the doubling could
        // overflow: right at the shift width, just past it, and at the
        // largest representable attempt count.
        let exp = RetryPolicy::default_restore();
        for attempt in [31, 32, 33, 64, 1_000_000, u32::MAX] {
            assert_eq!(
                exp.delay(attempt),
                Duration::from_millis(16),
                "attempt {attempt} must pin to the cap, never wrap"
            );
        }
        // Even a pathological base (Duration::MAX) cannot overflow — the
        // multiply saturates and the cap still bounds the pause.
        let huge = RetryPolicy {
            max_attempts: u32::MAX,
            backoff: Backoff::Exponential {
                base: Duration::MAX,
                cap: Duration::from_secs(30),
            },
        };
        for attempt in [1, 2, 40, u32::MAX] {
            assert_eq!(huge.delay(attempt), Duration::from_secs(30));
        }
        // Linear saturates the same way instead of wrapping.
        let linear = RetryPolicy {
            max_attempts: u32::MAX,
            backoff: Backoff::Linear(Duration::MAX),
        };
        assert_eq!(linear.delay(u32::MAX), Duration::MAX);
    }

    #[test]
    fn transient_errors_retry_until_success() {
        let policy = RetryPolicy {
            max_attempts: 4,
            backoff: Backoff::Fixed(Duration::from_millis(3)),
        };
        let failures = RefCell::new(2u32);
        let slept = RefCell::new(Vec::new());
        let (out, retries) = policy.run_with_sleep(
            |d| slept.borrow_mut().push(d),
            || {
                let mut left = failures.borrow_mut();
                if *left > 0 {
                    *left -= 1;
                    Err(transient())
                } else {
                    Ok(42)
                }
            },
        );
        assert_eq!(out, Ok(42));
        assert_eq!(retries, 2);
        assert_eq!(
            *slept.borrow(),
            vec![Duration::from_millis(3); 2],
            "the recorded schedule is exactly the policy's"
        );
    }

    #[test]
    fn exhaustion_returns_the_transient_error() {
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff: Backoff::None,
        };
        let mut calls = 0;
        let (out, retries) = policy.run_with_sleep(
            |_| {},
            || {
                calls += 1;
                Err::<(), _>(transient())
            },
        );
        assert_eq!(out, Err(transient()));
        assert_eq!(calls, 3, "exactly max_attempts tries");
        assert_eq!(retries, 2);
    }

    #[test]
    fn permanent_errors_never_retry() {
        let policy = RetryPolicy::default_restore();
        let mut calls = 0;
        let (out, retries) = policy.run_with_sleep(
            |_| panic!("must not sleep for a permanent error"),
            || {
                calls += 1;
                Err::<(), _>(StorageError::NodeDown(3))
            },
        );
        assert_eq!(out, Err(StorageError::NodeDown(3)));
        assert_eq!((calls, retries), (1, 0));
    }

    #[test]
    fn zero_max_attempts_still_runs_once() {
        let policy = RetryPolicy {
            max_attempts: 0,
            backoff: Backoff::None,
        };
        let (out, retries) = policy.run_with_sleep(|_| {}, || Ok(7));
        assert_eq!((out, retries), (Ok(7), 0));
    }
}
