//! Single-sided communication planning (Algorithm 3): window offsets.
//!
//! "Since there is a unique shuffling, rank i (in the shuffled order) knows
//! how many chunks the other ranks need to send to its partners. Thus, it
//! is possible to calculate an offset for each of the partners of rank i in
//! such way that the other ranks that share the same partners can
//! implicitly agree without extra communication. Furthermore, since each
//! rank knows how many chunks it needs to receive from all other ranks, it
//! can open a window of the right size from the beginning, avoiding any
//! waste." (Section III-B)
//!
//! Concretely: the window of the rank at shuffled position `p` is tiled by
//! its `K-1` senders in distance order — the sender at distance `d`
//! (shuffled position `p - d`, which sends `SendLoad[sender][d]` chunks to
//! its `d`-th partner) writes at offset `Σ_{d' < d} SendLoad[p - d'][d']`.
//! Every quantity is globally known after the load allgather, so no
//! receiver-side coordination or buffering is needed.
//!
//! ### Pseudocode erratum
//! Algorithm 3's printed index ranges (`1 ≤ i ≤ K` over `Shuffle`, `Off[j]`)
//! are garbled; the prose quoted above defines the semantics, which is what
//! this module implements and property-tests (regions are pairwise
//! disjoint, start at 0, and tile the receiver's window exactly).

use replidedup_mpi::Rank;

/// The complete exchange plan, identical on every rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowPlan {
    /// `recv_counts[r]` — number of chunk records rank `r` receives in
    /// total (its window size in records).
    pub recv_counts: Vec<u64>,
    /// `send_offsets[r][j-1]` — record offset at which rank `r` writes into
    /// the window of its `j`-th partner.
    pub send_offsets: Vec<Vec<u64>>,
    /// `partners[r][j-1]` — the rank that is `r`'s `j`-th partner.
    pub partners: Vec<Vec<Rank>>,
}

/// Compute the exchange plan from the shuffle and the allgathered Load
/// vectors. `send_load[r]` must have exactly `k` entries (`Load[0]` local,
/// `Load[1..k]` per partner).
///
/// # Panics
/// If the load vectors disagree with `k`, or `k > N` (callers clamp the
/// replication factor to the world size first).
pub fn window_plan(shuffle: &[Rank], send_load: &[Vec<u64>], k: u32) -> WindowPlan {
    let n = shuffle.len();
    assert_eq!(send_load.len(), n, "one Load vector per rank");
    assert!(
        k as usize <= n.max(1),
        "replication factor must be clamped to world size"
    );
    for (r, l) in send_load.iter().enumerate() {
        assert_eq!(
            l.len(),
            k as usize,
            "rank {r}: Load vector must have K entries"
        );
    }
    let positions = crate::shuffle::positions_of(shuffle);
    let sender_at = |p: usize, d: usize| -> Rank { shuffle[(p + n - d) % n] };

    let mut recv_counts = vec![0u64; n];
    let mut send_offsets = vec![Vec::with_capacity(k as usize - 1); n];
    let mut partners = vec![Vec::with_capacity(k as usize - 1); n];
    for r in 0..n {
        let p = positions[r] as usize;
        // What r receives: its K-1 senders tile the window in distance order.
        for d in 1..k as usize {
            recv_counts[r] += send_load[sender_at(p, d) as usize][d];
        }
        // Where r writes: for partner j at position p+j, r is the sender at
        // distance j; the senders at smaller distances come first.
        for j in 1..k as usize {
            let q = (p + j) % n;
            partners[r].push(shuffle[q]);
            let mut off = 0u64;
            for d in 1..j {
                off += send_load[sender_at(q, d) as usize][d];
            }
            send_offsets[r].push(off);
        }
    }
    WindowPlan {
        recv_counts,
        send_offsets,
        partners,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shuffle::{identity_shuffle, rank_shuffle};
    use proptest::prelude::*;

    /// Check the tiling invariant: for every receiver, the sender regions
    /// `[offset, offset + load)` are disjoint, start at 0, and cover the
    /// window exactly.
    fn assert_tiling(plan: &WindowPlan, send_load: &[Vec<u64>], k: u32) {
        let n = send_load.len();
        // Collect (receiver, offset, len) triples from the sender side.
        let mut regions: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
        for (r, load_r) in send_load.iter().enumerate() {
            for (jm1, &target) in plan.partners[r].iter().enumerate() {
                let len = load_r[jm1 + 1];
                let off = plan.send_offsets[r][jm1];
                regions[target as usize].push((off, len));
            }
        }
        for (recv, mut regs) in regions.into_iter().enumerate() {
            regs.sort_unstable();
            let mut cursor = 0u64;
            for (off, len) in regs {
                assert_eq!(
                    off, cursor,
                    "receiver {recv}: gap or overlap at offset {off} (k={k})"
                );
                cursor += len;
            }
            assert_eq!(
                cursor, plan.recv_counts[recv],
                "receiver {recv}: window size mismatch (k={k})"
            );
        }
    }

    fn mk_loads(totals_per_partner: &[Vec<u64>]) -> Vec<Vec<u64>> {
        totals_per_partner
            .iter()
            .map(|per| {
                let mut l = vec![0u64];
                l.extend(per);
                l
            })
            .collect()
    }

    #[test]
    fn simple_ring_k2() {
        // K=2: each rank has exactly one partner (the next in the ring).
        let send_load = mk_loads(&[vec![5], vec![7], vec![3]]);
        let plan = window_plan(&identity_shuffle(3), &send_load, 2);
        assert_eq!(plan.recv_counts, vec![3, 5, 7]);
        assert_eq!(plan.partners, vec![vec![1], vec![2], vec![0]]);
        assert_eq!(plan.send_offsets, vec![vec![0], vec![0], vec![0]]);
        assert_tiling(&plan, &send_load, 2);
    }

    #[test]
    fn k3_offsets_stack_by_distance() {
        // 4 ranks, K=3, identity shuffle. Receiver 2 hears from rank 1
        // (distance 1, its Load[1]) at offset 0 and rank 0 (distance 2,
        // its Load[2]) at offset Load[1] of rank 1.
        let send_load = mk_loads(&[vec![10, 20], vec![30, 40], vec![50, 60], vec![70, 80]]);
        let plan = window_plan(&identity_shuffle(4), &send_load, 3);
        // rank 0's partners are 1 and 2.
        assert_eq!(plan.partners[0], vec![1, 2]);
        // Into partner 1's window rank 0 is the distance-1 sender: offset 0.
        assert_eq!(plan.send_offsets[0][0], 0);
        // Into partner 2's window rank 0 is the distance-2 sender: offset =
        // rank 1's Load[1] = 30.
        assert_eq!(plan.send_offsets[0][1], 30);
        // Receiver 2's window: 30 (rank1 d1) + 20 (rank0 d2) = 50.
        assert_eq!(plan.recv_counts[2], 50);
        assert_tiling(&plan, &send_load, 3);
    }

    #[test]
    fn tiling_holds_under_shuffled_order() {
        let send_load = mk_loads(&[
            vec![100, 100],
            vec![100, 100],
            vec![10, 10],
            vec![10, 10],
            vec![10, 10],
            vec![10, 10],
        ]);
        let shuffle = rank_shuffle(&send_load, 3);
        let plan = window_plan(&shuffle, &send_load, 3);
        assert_tiling(&plan, &send_load, 3);
        assert_eq!(plan.recv_counts.iter().max(), Some(&110));
    }

    #[test]
    fn k1_is_degenerate_but_legal() {
        let send_load = vec![vec![9u64], vec![4]];
        let plan = window_plan(&identity_shuffle(2), &send_load, 1);
        assert_eq!(plan.recv_counts, vec![0, 0]);
        assert!(plan.partners.iter().all(Vec::is_empty));
    }

    #[test]
    fn k_equal_n_wraps_but_never_self() {
        let send_load = mk_loads(&[vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9], vec![1, 1, 1]]);
        let plan = window_plan(&identity_shuffle(4), &send_load, 4);
        for (r, ps) in plan.partners.iter().enumerate() {
            assert!(!ps.contains(&(r as u32)), "rank {r} partnered with itself");
            let set: std::collections::HashSet<_> = ps.iter().collect();
            assert_eq!(set.len(), ps.len(), "rank {r}: duplicate partners");
        }
        assert_tiling(&plan, &send_load, 4);
    }

    #[test]
    #[should_panic(expected = "Load vector must have K entries")]
    fn mismatched_load_width_panics() {
        window_plan(&identity_shuffle(2), &[vec![1, 2], vec![3]], 2);
    }

    proptest! {
        #[test]
        fn prop_tiling_invariant(
            n in 2usize..24,
            k in 2u32..6,
            seed in any::<u64>(),
            use_shuffle in any::<bool>(),
        ) {
            let k = k.min(n as u32);
            let mut state = seed | 1;
            let mut rand = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % 500
            };
            let send_load: Vec<Vec<u64>> = (0..n)
                .map(|_| (0..k).map(|_| rand()).collect())
                .collect();
            let shuffle = if use_shuffle {
                rank_shuffle(&send_load, k)
            } else {
                identity_shuffle(n as u32)
            };
            let plan = window_plan(&shuffle, &send_load, k);
            assert_tiling(&plan, &send_load, k);
            // Conservation: Σ recv = Σ send.
            let total_recv: u64 = plan.recv_counts.iter().sum();
            let total_send: u64 = send_load.iter().map(|l| l[1..].iter().sum::<u64>()).sum();
            prop_assert_eq!(total_recv, total_send);
        }
    }
}
