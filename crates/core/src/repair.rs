//! Collective replication repair: heal a degraded cluster back to `K`
//! copies of everything a dump still needs.
//!
//! The paper replicates at dump time; a node that fails afterwards leaves
//! every chunk it held one copy short. Restore tolerates that (up to
//! `K-1` losses), but tolerance is not healing: a second failure eats into
//! margin that was never rebuilt. This collective closes the loop — run it
//! after reviving (or replacing) a failed node and the cluster converges
//! back to full replication:
//!
//! 1. **Scrub** (`repair.scrub`) — every node leader re-hashes its node's
//!    chunks ([`replidedup_storage::Cluster::scrub`]) and quarantines
//!    corrupt copies, so the planning phase only ever counts intact
//!    replicas.
//! 2. **Plan** (`repair.plan`) — leaders contribute their chunk inventory
//!    to the same `HMERGE` reduction the dump uses
//!    ([`crate::try_reduce_global_view`] with the full inventory,
//!    `F = ∞`). Run with `k = K`, the reduced view gives each
//!    fingerprint's live-copy count, and — the key observation — any entry
//!    with `freq < K` carries its *complete, untruncated* holder list
//!    (truncation only triggers past `K`), which is exactly the set of
//!    fingerprints repair cares about. An allgathered per-node inventory
//!    (manifest owners, blob owners, referenced fingerprints, tombstones)
//!    completes the picture, and every rank derives the identical transfer
//!    plan from the identical inputs: under-replicated chunks go to the
//!    least-loaded live non-holders, lost manifests/blobs are
//!    re-materialized from any surviving copy (the owner's own node
//!    first).
//! 3. **Transfer** (`repair.transfer`) — leaders execute the plan over the
//!    fallible point-to-point layer, then allreduce the healing counts so
//!    every rank returns the same [`RepairStats`].
//!
//! Dumps taken under an erasure-coding redundancy policy add a fourth
//! concern: coded payloads live as Reed-Solomon stripes, not replicas, so
//! the plan treats a referenced chunk (or blob) with no replica as healthy
//! as long as its stripe keeps at least `k` shards, and a dedicated
//! **stripe phase** (`repair.stripes`) rebuilds every missing shard on its
//! home node from any `k` survivors
//! ([`replidedup_storage::Cluster::rebuild_shard`]). Stripe parity
//! verification is inherently cluster-wide — a stripe's shards span nodes
//! — so the lowest live node leader runs it once and quarantines flagged
//! shard copies before planning.
//!
//! The collective is **idempotent**: the plan is derived from the current
//! cluster state and chunk/shard puts are content-addressed, so re-running
//! a repair that crashed half-way (every crash surfaces as
//! [`RepairError::Comm`]) simply finds less work and converges. Data with
//! zero surviving copies — or a stripe with fewer than `k` shards — is
//! beyond repair by construction; it is reported in [`RepairStats`]
//! instead of failing the collective, so one unrecoverable buffer does not
//! block healing everything else.

use std::collections::{BTreeMap, HashMap, HashSet};

use replidedup_ec::shard_nodes;
use replidedup_hash::{Fingerprint, FpHashSet};
use replidedup_mpi::wire::{FrameReader, FrameWriter, Wire, WireResult};
use replidedup_mpi::{Comm, CommError, Tag};
use replidedup_storage::{
    Cluster, DumpId, Manifest, NodeId, ScrubReport, ShardMeta, StorageError, StripeKey,
};

use crate::config::Strategy;
use crate::dump::DumpContext;
use crate::global::{try_reduce_global_view, GlobalView};

const TAG_REPAIR_MANIFEST: Tag = 0x5250_0005;
const TAG_REPAIR_CHUNKS: Tag = 0x5250_0006;
const TAG_REPAIR_BLOB: Tag = 0x5250_0007;

/// Phases of the repair collective, in execution order (trace span names).
pub const REPAIR_PHASES: [&str; 4] = [
    "repair.scrub",
    "repair.plan",
    "repair.stripes",
    "repair.transfer",
];

/// What a repair collective did. Identical on every rank (healing counts
/// are allreduced; the unrepairable lists fall out of the deterministic
/// plan every rank computes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct RepairStats {
    /// Chunk copies written to bring fingerprints back to `K` live copies.
    pub chunks_healed: u64,
    /// Bytes moved for those chunk copies.
    pub bytes_re_replicated: u64,
    /// Manifest copies re-materialized on nodes that lost them.
    pub manifests_rematerialized: u64,
    /// Raw blob copies re-materialized (`no-dedup` dumps).
    pub blobs_rematerialized: u64,
    /// Corrupt chunks the scrub phase quarantined before planning.
    pub corrupt_quarantined: u64,
    /// Erasure-coded shards reconstructed from `k` survivors and re-homed
    /// (the coded policies' analogue of `chunks_healed`).
    pub shards_rebuilt: u64,
    /// Bytes of reconstructed shard payloads written back.
    pub bytes_reconstructed: u64,
    /// Parity-inconsistent shard copies the stripe scrub quarantined
    /// before rebuilding (the coded analogue of `corrupt_quarantined`).
    pub shards_quarantined: u64,
    /// Referenced fingerprints with zero intact live copies (and, for
    /// coded chunks, no viable stripe): beyond repair.
    pub unrepairable_chunks: Vec<Fingerprint>,
    /// Ranks whose manifest for this dump has no surviving copy.
    pub unrepairable_manifests: Vec<u32>,
    /// Ranks whose raw blob for this dump has no surviving copy (and no
    /// viable stripe).
    pub unrepairable_blobs: Vec<u32>,
    /// Stripes with fewer than `k` surviving shards: beyond
    /// reconstruction. Disjoint per policy from the replica lists — a
    /// payload appears here exactly when it was *coded*, there when it was
    /// *replicated* — so [`RepairStats::is_fully_healed`] stays meaningful
    /// under mixed `Auto` policies.
    pub unrepairable_stripes: Vec<StripeKey>,
}

impl RepairStats {
    /// Did this repair leave the dump fully healed — nothing lost for
    /// good, whether it was replicated or erasure-coded?
    pub fn is_fully_healed(&self) -> bool {
        self.unrepairable_chunks.is_empty()
            && self.unrepairable_manifests.is_empty()
            && self.unrepairable_blobs.is_empty()
            && self.unrepairable_stripes.is_empty()
    }
}

/// Failures of a collective repair or scrub.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RepairError {
    /// A node refused I/O while scrubbing or moving data.
    Storage(StorageError),
    /// A rank died (or a deadlock was suspected) during one of the
    /// collective steps. Re-running the repair after reviving converges:
    /// the plan is recomputed from whatever state the crashed run left.
    Comm(CommError),
    /// A healing transfer frame from `from` failed to decode — the batch
    /// was truncated or malformed in flight. The step fails cleanly
    /// instead of panicking; a resumed heal re-plans the window and
    /// re-requests the data.
    CorruptFrame {
        /// Rank whose batch failed to decode.
        from: u32,
    },
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairError::Storage(e) => write!(f, "storage failure during repair: {e}"),
            RepairError::Comm(e) => write!(f, "communication failure during repair: {e}"),
            RepairError::CorruptFrame { from } => {
                write!(f, "corrupt healing frame from rank {from}")
            }
        }
    }
}

impl std::error::Error for RepairError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RepairError::Storage(e) => Some(e),
            RepairError::Comm(e) => Some(e),
            RepairError::CorruptFrame { .. } => None,
        }
    }
}

impl From<StorageError> for RepairError {
    fn from(e: StorageError) -> Self {
        RepairError::Storage(e)
    }
}

impl From<CommError> for RepairError {
    fn from(e: CommError) -> Self {
        RepairError::Comm(e)
    }
}

/// One node's allgathered repair inventory, contributed by its leader rank
/// (every other rank, and leaders of dead nodes, contribute the default).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct NodeInventory {
    /// True only in the entry of a live node's leader rank.
    pub(crate) leads_live_node: bool,
    /// Owner ranks whose manifests for the dump this node holds (sorted).
    pub(crate) manifest_owners: Vec<u32>,
    /// Owner ranks whose raw blobs for the dump this node holds (sorted).
    pub(crate) blob_owners: Vec<u32>,
    /// Fingerprints referenced by this node's manifests for the dump
    /// (sorted, deduplicated).
    pub(crate) referenced: Vec<Fingerprint>,
    /// Ranks tombstoned as absent when the dump committed (sorted).
    pub(crate) absent: Vec<u32>,
    /// Erasure-coded shards this node holds, as `(stripe, meta)` pairs
    /// sorted by stripe then shard index.
    pub(crate) shards: Vec<(StripeKey, ShardMeta)>,
}

impl Wire for NodeInventory {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.leads_live_node.encode(buf);
        self.manifest_owners.encode(buf);
        self.blob_owners.encode(buf);
        self.referenced.encode(buf);
        self.absent.encode(buf);
        self.shards.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> WireResult<Self> {
        Ok(NodeInventory {
            leads_live_node: bool::decode(input)?,
            manifest_owners: Vec::decode(input)?,
            blob_owners: Vec::decode(input)?,
            referenced: Vec::decode(input)?,
            absent: Vec::decode(input)?,
            shards: Vec::decode(input)?,
        })
    }
}

/// The deterministic transfer plan. Every rank computes the identical plan
/// from the identical allgathered inputs; moves name leader ranks.
#[derive(Debug, Default, PartialEq, Eq)]
pub(crate) struct RepairPlan {
    /// `(src_leader, dst_leader, fp)`: src serves the chunk, dst stores it.
    pub(crate) chunk_moves: Vec<(u32, u32, Fingerprint)>,
    /// `(src_leader, dst_leader, owner_rank)` manifest re-materializations.
    pub(crate) manifest_moves: Vec<(u32, u32, u32)>,
    /// `(src_leader, dst_leader, owner_rank)` blob re-materializations.
    pub(crate) blob_moves: Vec<(u32, u32, u32)>,
    /// `(dst_leader, stripe, shard index)`: dst reconstructs the shard
    /// from any `k` survivors and re-homes it on its node.
    pub(crate) shard_rebuilds: Vec<(u32, StripeKey, u8)>,
    pub(crate) unrepairable_chunks: Vec<Fingerprint>,
    pub(crate) unrepairable_manifests: Vec<u32>,
    pub(crate) unrepairable_blobs: Vec<u32>,
    pub(crate) unrepairable_stripes: Vec<StripeKey>,
}

/// Pick up to `deficit` destinations among live non-holder leaders,
/// preferring `home` (the owner's own node leader) and then the least
/// planned load, ties broken by rank for cross-rank determinism.
pub(crate) fn pick_destinations(
    live: &[u32],
    holders: &[u32],
    deficit: usize,
    home: Option<u32>,
    load: &mut HashMap<u32, u64>,
) -> Vec<u32> {
    let mut cands: Vec<u32> = live
        .iter()
        .copied()
        .filter(|r| !holders.contains(r))
        .collect();
    cands.sort_by_key(|r| {
        let is_home = Some(*r) == home;
        (!is_home, load.get(r).copied().unwrap_or(0), *r)
    });
    cands.truncate(deficit);
    for dst in &cands {
        *load.entry(*dst).or_insert(0) += 1;
    }
    cands
}

/// Derive the transfer plan. Pure: every rank calls this with the
/// identical reduced view and inventory and gets the identical plan.
///
/// `home_leader[r]` is the leader rank of rank `r`'s own node — the
/// preferred destination when re-materializing `r`'s manifest or blob, so
/// a healed cluster restores without network recovery.
pub(crate) fn build_plan(
    k: u32,
    strategy: Strategy,
    dump_id: DumpId,
    global: &GlobalView,
    inv: &[NodeInventory],
    home_leader: &[u32],
    leader_of_node: &[Option<u32>],
) -> RepairPlan {
    let mut plan = RepairPlan::default();
    let live: Vec<u32> = inv
        .iter()
        .enumerate()
        .filter(|(_, i)| i.leads_live_node)
        .map(|(r, _)| r as u32)
        .collect();
    let target = (k as usize).min(live.len());
    let tombstoned = |r: u32| inv.iter().any(|i| i.absent.binary_search(&r).is_ok());

    // Cluster-wide stripe map from the allgathered shard inventories:
    // geometry (from any shard's self-describing meta) plus surviving
    // indices, and which leader holds which shard.
    let mut stripes: BTreeMap<StripeKey, (ShardMeta, Vec<u8>)> = BTreeMap::new();
    let mut held: HashSet<(u32, StripeKey, u8)> = HashSet::new();
    for (r, i) in inv.iter().enumerate() {
        for (key, meta) in &i.shards {
            held.insert((r as u32, *key, meta.index));
            let e = stripes.entry(*key).or_insert((*meta, Vec::new()));
            if !e.1.contains(&meta.index) {
                e.1.push(meta.index);
            }
        }
    }
    // A coded payload is healthy — no replicas required — as long as its
    // stripe keeps at least `k` shards; the stripe pass heals the rest.
    let stripe_viable = |key: &StripeKey| {
        stripes
            .get(key)
            .is_some_and(|(meta, have)| have.len() >= meta.k as usize)
    };

    if strategy != Strategy::NoDedup {
        // ---- chunks: every fingerprint a surviving manifest references --
        let mut required: Vec<Fingerprint> = inv
            .iter()
            .flat_map(|i| i.referenced.iter().copied())
            .collect();
        required.sort_unstable();
        required.dedup();
        let mut load: HashMap<u32, u64> = HashMap::new();
        for fp in required {
            match global.lookup(&fp) {
                None => {
                    if !stripe_viable(&StripeKey::Chunk(fp)) {
                        plan.unrepairable_chunks.push(fp);
                    }
                }
                // freq >= K: at least K intact copies survive, nothing to do
                // (the holder list may be truncated, but is not needed).
                Some(e) if e.freq >= u64::from(k) => {}
                Some(e) => {
                    // freq < K: `ranks` is the complete live holder set.
                    let deficit = target.saturating_sub(e.ranks.len());
                    for (i, dst) in pick_destinations(&live, &e.ranks, deficit, None, &mut load)
                        .into_iter()
                        .enumerate()
                    {
                        let src = e.ranks[i % e.ranks.len()];
                        plan.chunk_moves.push((src, dst, fp));
                    }
                }
            }
        }

        // ---- manifests: one recipe per rank must survive K times --------
        let mut mload: HashMap<u32, u64> = HashMap::new();
        for r in 0..home_leader.len() as u32 {
            if tombstoned(r) {
                continue; // legitimately absent from this (degraded) dump
            }
            let holders: Vec<u32> = live
                .iter()
                .copied()
                .filter(|l| inv[*l as usize].manifest_owners.binary_search(&r).is_ok())
                .collect();
            if holders.is_empty() {
                plan.unrepairable_manifests.push(r);
                continue;
            }
            let deficit = target.saturating_sub(holders.len());
            let home = Some(home_leader[r as usize]);
            for (i, dst) in pick_destinations(&live, &holders, deficit, home, &mut mload)
                .into_iter()
                .enumerate()
            {
                plan.manifest_moves
                    .push((holders[i % holders.len()], dst, r));
            }
        }
    } else {
        // ---- blobs: the no-dedup storage format ------------------------
        let mut bload: HashMap<u32, u64> = HashMap::new();
        for r in 0..home_leader.len() as u32 {
            if tombstoned(r) {
                continue;
            }
            let holders: Vec<u32> = live
                .iter()
                .copied()
                .filter(|l| inv[*l as usize].blob_owners.binary_search(&r).is_ok())
                .collect();
            if holders.is_empty() {
                if !stripe_viable(&StripeKey::Blob { owner: r, dump_id }) {
                    plan.unrepairable_blobs.push(r);
                }
                continue;
            }
            let deficit = target.saturating_sub(holders.len());
            let home = Some(home_leader[r as usize]);
            for (i, dst) in pick_destinations(&live, &holders, deficit, home, &mut bload)
                .into_iter()
                .enumerate()
            {
                plan.blob_moves.push((holders[i % holders.len()], dst, r));
            }
        }
    }

    // ---- stripes: every viable stripe healed back to full k+m shards on
    // their home nodes (a stripe below k survivors is beyond rebuild) ----
    let node_count = leader_of_node.len() as u32;
    for (key, (meta, have)) in &stripes {
        if have.len() < meta.k as usize {
            plan.unrepairable_stripes.push(*key);
            continue;
        }
        let shards = meta.k + meta.m;
        let homes = shard_nodes(key.seed(), shards, node_count);
        for index in 0..shards {
            // Dead (or unpopulated) home nodes have nowhere to re-home the
            // shard; a later repair after reviving picks them up.
            let Some(leader) = leader_of_node[homes[index as usize] as usize] else {
                continue;
            };
            if !held.contains(&(leader, *key, index)) {
                plan.shard_rebuilds.push((leader, *key, index));
            }
        }
    }
    plan
}

/// Leader rank of `node`: the lowest rank placed on it.
pub(crate) fn leader_of(cluster: &Cluster, node: NodeId, world: u32) -> Option<u32> {
    let ranks = cluster.placement().ranks_on(node, world);
    if ranks.is_empty() {
        None
    } else {
        Some(ranks.start)
    }
}

/// The lowest rank leading a live node: the one rank that runs the
/// cluster-wide stripe verification (a stripe's shards span nodes, so no
/// single node's leader can check parity consistency alone).
pub(crate) fn lowest_live_leader(cluster: &Cluster, world: u32) -> Option<u32> {
    (0..world).find(|&r| {
        let nd = cluster.node_of(r);
        leader_of(cluster, nd, world) == Some(r) && cluster.is_alive(nd)
    })
}

/// Collective scrub: every live node is scrubbed by its leader rank and
/// the per-node reports are merged, so all ranks return the identical
/// cluster-wide [`ScrubReport`]. Read-only — corrupt chunks are reported,
/// not quarantined (that is the repair collective's first phase).
///
/// Node-local findings are resolved against cluster-wide knowledge before
/// the report is returned: a manifest on one node legitimately references
/// chunks that live on *other* nodes (that is how coll-dedup distributes
/// data), so a reference is only **dangling** if no live node holds the
/// chunk, and a chunk is only an **orphan** if no manifest anywhere
/// references it. Corruption is intrinsic to the bytes and passes through
/// unfiltered.
pub(crate) fn scrub_impl(
    comm: &mut Comm,
    ctx: &DumpContext<'_>,
) -> Result<ScrubReport, RepairError> {
    let me = comm.rank();
    let n = comm.size();
    let node = ctx.cluster.node_of(me);
    comm.enter_phase("scrub.collect");
    let mut contribution =
        if leader_of(ctx.cluster, node, n) == Some(me) && ctx.cluster.is_alive(node) {
            (
                ctx.cluster.scrub(node, ctx.hasher)?,
                ctx.cluster.chunk_fps(node)?,
                ctx.cluster.referenced_fps(node)?,
            )
        } else {
            (ScrubReport::default(), Vec::new(), Vec::new())
        };
    if lowest_live_leader(ctx.cluster, n) == Some(me) {
        // Parity consistency is a property of whole stripes, not single
        // nodes: exactly one rank verifies every stripe cluster-wide and
        // folds the findings into its contribution.
        contribution.0.merge(&ctx.cluster.scrub_stripes(ctx.hasher));
    }
    let all = comm.try_allgather(contribution);
    comm.exit_phase("scrub.collect");
    let all = all?;
    let mut merged = ScrubReport::default();
    let mut present = FpHashSet::default();
    let mut referenced = FpHashSet::default();
    for (report, fps, refs) in &all {
        merged.merge(report);
        present.extend(fps.iter().copied());
        referenced.extend(refs.iter().copied());
    }
    merged
        .dangling
        .retain(|(_, _, _, fp)| !present.contains(fp));
    merged.orphans.retain(|(_, fp)| !referenced.contains(fp));
    comm.tracer()
        .counter("scrub_corrupt_chunks", merged.corrupt.len() as u64);
    Ok(merged)
}

pub(crate) fn repair_impl(
    comm: &mut Comm,
    ctx: &DumpContext<'_>,
    strategy: Strategy,
    k: u32,
) -> Result<RepairStats, RepairError> {
    let me = comm.rank();
    let n = comm.size();
    let cluster = ctx.cluster;
    let node = cluster.node_of(me);
    let i_lead = leader_of(cluster, node, n) == Some(me);

    // ---- Phase 1: scrub + quarantine ------------------------------------
    comm.enter_phase("repair.scrub");
    let mut corrupt_quarantined = 0u64;
    let mut shards_quarantined = 0u64;
    if i_lead && cluster.is_alive(node) {
        let report = cluster.scrub(node, ctx.hasher)?;
        for (nd, fp) in &report.corrupt {
            if cluster.quarantine_chunk(*nd, fp)? {
                corrupt_quarantined += 1;
            }
        }
    }
    if lowest_live_leader(cluster, n) == Some(me) {
        // Cluster-wide stripe verification, run once: quarantine every
        // parity-inconsistent shard copy so the stripe phase below rebuilds
        // it from intact survivors instead of propagating rot.
        let report = cluster.scrub_stripes(ctx.hasher);
        for (nd, key, index) in &report.stripe_mismatches {
            if cluster.quarantine_shard(*nd, *key, *index)? {
                shards_quarantined += 1;
            }
        }
    }
    comm.exit_phase("repair.scrub");

    // ---- Phase 2: inventory + plan --------------------------------------
    comm.enter_phase("repair.plan");
    let view = if i_lead && cluster.is_alive(node) {
        GlobalView::from_local(me, cluster.chunk_fps(node)?, usize::MAX)
    } else {
        GlobalView::default()
    };
    let mut inv = NodeInventory::default();
    if i_lead && cluster.is_alive(node) {
        inv.leads_live_node = true;
        inv.manifest_owners = cluster.manifest_owners(node, ctx.dump_id)?;
        inv.blob_owners = cluster.blob_owners(node, ctx.dump_id)?;
        inv.absent = cluster.absent_ranks(node, ctx.dump_id)?;
        inv.shards = cluster.shard_inventory(node)?;
        let mut refs = FpHashSet::default();
        for m in cluster.manifests_for(node, ctx.dump_id)? {
            refs.extend(m.chunks.iter().copied());
        }
        let mut referenced: Vec<Fingerprint> = refs.into_iter().collect();
        referenced.sort_unstable();
        inv.referenced = referenced;
    }
    let global = try_reduce_global_view(comm, view, k, usize::MAX);
    let world_inv = comm.try_allgather(inv);
    comm.exit_phase("repair.plan");
    let (global, world_inv) = (global?, world_inv?);
    let home_leader: Vec<u32> = (0..n)
        .map(|r| leader_of(cluster, cluster.node_of(r), n).unwrap_or(r))
        .collect();
    let leader_of_node: Vec<Option<u32>> = (0..cluster.node_count())
        .map(|nd| leader_of(cluster, nd, n).filter(|_| cluster.is_alive(nd)))
        .collect();
    let plan = build_plan(
        k,
        strategy,
        ctx.dump_id,
        &global,
        &world_inv,
        &home_leader,
        &leader_of_node,
    );

    // ---- Phase 3: rebuild erasure-coded shards ---------------------------
    comm.enter_phase("repair.stripes");
    let mut shards_rebuilt = 0u64;
    let mut bytes_reconstructed = 0u64;
    for (leader, key, index) in &plan.shard_rebuilds {
        if *leader != me {
            continue;
        }
        // Reconstruction reads any `k` survivors through the storage
        // repair index — the same escape hatch restore's last-resort path
        // uses — and the content-addressed put keeps re-runs idempotent.
        if let Some(shard) = cluster.rebuild_shard(*key, *index) {
            let len = shard.data.len() as u64;
            if cluster.put_shard(node, *key, shard.meta, shard.data)? {
                shards_rebuilt += 1;
                bytes_reconstructed += len;
            }
        }
    }
    comm.exit_phase("repair.stripes");

    // ---- Phase 4: execute the transfer plan ------------------------------
    comm.enter_phase("repair.transfer");
    let mut healed = 0u64;
    let mut bytes = 0u64;
    let mut manifests_remat = 0u64;
    let mut blobs_remat = 0u64;
    let result = (|| -> Result<(), RepairError> {
        // Sends first (point-to-point sends are buffered, never blocking),
        // one batch per (src, dst) pair so recv counts are derivable.
        let mut chunk_out: BTreeMap<u32, Vec<Fingerprint>> = BTreeMap::new();
        let mut manifest_out: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        let mut blob_out: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for (src, dst, fp) in &plan.chunk_moves {
            if *src == me {
                chunk_out.entry(*dst).or_default().push(*fp);
            }
        }
        for (src, dst, owner) in &plan.manifest_moves {
            if *src == me {
                manifest_out.entry(*dst).or_default().push(*owner);
            }
        }
        for (src, dst, owner) in &plan.blob_moves {
            if *src == me {
                blob_out.entry(*dst).or_default().push(*owner);
            }
        }
        for (dst, fps) in &chunk_out {
            // Frame the batch: fingerprint headers interleaved with the
            // stored payloads, which ride along by reference — the stored
            // chunk is never copied into a staging buffer.
            let mut batch = FrameWriter::new();
            for fp in fps {
                batch.put(fp);
                batch.attach(cluster.get_chunk(node, fp)?);
            }
            comm.try_send_frame(*dst, TAG_REPAIR_CHUNKS, batch.finish())?;
        }
        for (dst, owners) in &manifest_out {
            let mut batch: Vec<Manifest> = Vec::with_capacity(owners.len());
            for owner in owners {
                batch.push(cluster.get_manifest(node, *owner, ctx.dump_id)?);
            }
            comm.try_send_val(*dst, TAG_REPAIR_MANIFEST, &batch)?;
        }
        for (dst, owners) in &blob_out {
            let mut batch = FrameWriter::new();
            for owner in owners {
                batch.put(owner);
                batch.attach(cluster.get_blob(node, *owner, ctx.dump_id)?);
            }
            comm.try_send_frame(*dst, TAG_REPAIR_BLOB, batch.finish())?;
        }

        // Receives: the plan tells me exactly which sources owe me what.
        let srcs_for = |moves: &[(u32, u32, Fingerprint)]| -> Vec<u32> {
            let mut srcs: Vec<u32> = moves
                .iter()
                .filter(|(_, dst, _)| *dst == me)
                .map(|(src, _, _)| *src)
                .collect();
            srcs.sort_unstable();
            srcs.dedup();
            srcs
        };
        for src in srcs_for(&plan.chunk_moves) {
            let mut batch = FrameReader::new(comm.try_recv_frame(src, TAG_REPAIR_CHUNKS)?);
            while batch.remaining() > 0 {
                let fp: Fingerprint = batch
                    .get()
                    .unwrap_or_else(|e| panic!("rank {me}: corrupt repair batch from {src}: {e}"));
                let data = batch
                    .take_payload()
                    .unwrap_or_else(|e| panic!("rank {me}: corrupt repair batch from {src}: {e}"));
                bytes += data.len() as u64;
                if cluster.put_chunk(node, fp, data.into_bytes())? {
                    healed += 1;
                }
            }
        }
        let owner_srcs = |moves: &[(u32, u32, u32)]| -> Vec<u32> {
            let mut srcs: Vec<u32> = moves
                .iter()
                .filter(|(_, dst, _)| *dst == me)
                .map(|(src, _, _)| *src)
                .collect();
            srcs.sort_unstable();
            srcs.dedup();
            srcs
        };
        for src in owner_srcs(&plan.manifest_moves) {
            let batch: Vec<Manifest> = comm.try_recv_val(src, TAG_REPAIR_MANIFEST)?;
            for m in batch {
                cluster.put_manifest(node, m)?;
                manifests_remat += 1;
            }
        }
        for src in owner_srcs(&plan.blob_moves) {
            let mut batch = FrameReader::new(comm.try_recv_frame(src, TAG_REPAIR_BLOB)?);
            while batch.remaining() > 0 {
                let owner: u32 = batch
                    .get()
                    .unwrap_or_else(|e| panic!("rank {me}: corrupt blob batch from {src}: {e}"));
                let data = batch
                    .take_payload()
                    .unwrap_or_else(|e| panic!("rank {me}: corrupt blob batch from {src}: {e}"));
                bytes += data.len() as u64;
                cluster.put_blob(node, owner, ctx.dump_id, data.into_bytes())?;
                blobs_remat += 1;
            }
        }
        Ok(())
    })();
    comm.exit_phase("repair.transfer");
    result?;

    // All ranks agree on what the repair did before anyone returns.
    let sums = comm.try_allreduce(
        vec![
            healed,
            bytes,
            manifests_remat,
            blobs_remat,
            corrupt_quarantined,
            shards_rebuilt,
            bytes_reconstructed,
            shards_quarantined,
        ],
        |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect(),
    )?;
    comm.tracer().counter("repair_chunks_healed", sums[0]);
    comm.tracer().counter("repair_bytes_re_replicated", sums[1]);
    comm.tracer()
        .counter("repair_manifests_rematerialized", sums[2]);
    comm.tracer().counter("scrub_corrupt_chunks", sums[4]);
    comm.tracer().counter("repair_shards_rebuilt", sums[5]);
    Ok(RepairStats {
        chunks_healed: sums[0],
        bytes_re_replicated: sums[1],
        manifests_rematerialized: sums[2],
        blobs_rematerialized: sums[3],
        corrupt_quarantined: sums[4],
        shards_rebuilt: sums[5],
        bytes_reconstructed: sums[6],
        shards_quarantined: sums[7],
        unrepairable_chunks: plan.unrepairable_chunks,
        unrepairable_manifests: plan.unrepairable_manifests,
        unrepairable_blobs: plan.unrepairable_blobs,
        unrepairable_stripes: plan.unrepairable_stripes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::synthetic(n)
    }

    fn entry(n: u64, ranks: Vec<u32>) -> crate::global::GlobalEntry {
        crate::global::GlobalEntry {
            fp: fp(n),
            freq: ranks.len() as u64,
            ranks,
        }
    }

    fn inv(live: bool, manifests: Vec<u32>, referenced: Vec<u64>) -> NodeInventory {
        NodeInventory {
            leads_live_node: live,
            manifest_owners: manifests,
            blob_owners: Vec::new(),
            referenced: referenced.into_iter().map(fp).collect(),
            absent: Vec::new(),
            shards: Vec::new(),
        }
    }

    /// `build_plan` over a one-rank-per-node world: home leaders are the
    /// ranks themselves and live leaders fall out of the inventory.
    fn plan_for(
        k: u32,
        strategy: Strategy,
        global: &GlobalView,
        inv: &[NodeInventory],
    ) -> RepairPlan {
        let home: Vec<u32> = (0..inv.len() as u32).collect();
        let leaders: Vec<Option<u32>> = inv
            .iter()
            .enumerate()
            .map(|(r, i)| i.leads_live_node.then_some(r as u32))
            .collect();
        build_plan(k, strategy, 1, global, inv, &home, &leaders)
    }

    #[test]
    fn node_inventory_wire_roundtrip() {
        let i = NodeInventory {
            leads_live_node: true,
            manifest_owners: vec![0, 2],
            blob_owners: vec![1],
            referenced: vec![fp(9), fp(11)],
            absent: vec![3],
            shards: vec![(StripeKey::Chunk(fp(9)), meta(4, 2, 5))],
        };
        assert_eq!(NodeInventory::from_bytes(&i.to_bytes()).unwrap(), i);
    }

    #[test]
    fn plan_heals_under_replicated_chunks_to_target() {
        // 4 one-rank nodes, K=3. Chunk 1 has one live copy (node 0),
        // chunk 2 already has three, chunk 3 is referenced but gone.
        let global = GlobalView {
            entries: vec![entry(1, vec![0]), entry(2, vec![0, 1, 2])],
        };
        let world_inv = vec![
            inv(true, vec![0], vec![1, 2, 3]),
            inv(true, vec![1], vec![]),
            inv(true, vec![2], vec![]),
            inv(true, vec![3], vec![]),
        ];
        let plan = plan_for(3, Strategy::CollDedup, &global, &world_inv);
        let for_one: Vec<_> = plan
            .chunk_moves
            .iter()
            .filter(|(_, _, f)| *f == fp(1))
            .collect();
        assert_eq!(for_one.len(), 2, "deficit of chunk 1 is 3-1=2");
        assert!(for_one.iter().all(|(src, dst, _)| *src == 0 && *dst != 0));
        assert!(
            plan.chunk_moves.iter().all(|(_, _, f)| *f != fp(2)),
            "healthy chunks are left alone"
        );
        assert_eq!(plan.unrepairable_chunks, vec![fp(3)]);
        assert!(plan.unrepairable_manifests.is_empty());
    }

    #[test]
    fn plan_caps_target_at_live_node_count() {
        // K=3 but only 2 live nodes: target is 2, one extra copy suffices.
        let global = GlobalView {
            entries: vec![entry(1, vec![0])],
        };
        let world_inv = vec![
            inv(true, vec![0, 1], vec![1]),
            inv(true, vec![0, 1], vec![]),
            inv(false, vec![], vec![]),
        ];
        let plan = plan_for(3, Strategy::CollDedup, &global, &world_inv);
        assert_eq!(plan.chunk_moves, vec![(0, 1, fp(1))]);
    }

    #[test]
    fn plan_rematerializes_manifest_on_owner_home_node_first() {
        // Rank 2's manifest survives only on node 0; its home node 2 is
        // live and empty — it must be the first destination.
        let world_inv = vec![
            inv(true, vec![0, 1, 2], vec![]),
            inv(true, vec![0, 1], vec![]),
            inv(true, vec![], vec![]),
        ];
        let plan = plan_for(2, Strategy::CollDedup, &GlobalView::default(), &world_inv);
        assert!(
            plan.manifest_moves.contains(&(0, 2, 2)),
            "rank 2's manifest must land on its own node: {:?}",
            plan.manifest_moves
        );
    }

    #[test]
    fn plan_skips_tombstoned_ranks_and_flags_truly_lost_manifests() {
        let mut absent_inv = inv(true, vec![0], vec![]);
        absent_inv.absent = vec![1];
        let world_inv = vec![absent_inv, inv(true, vec![0], vec![])];
        let plan = plan_for(2, Strategy::CollDedup, &GlobalView::default(), &world_inv);
        // Rank 1 is tombstoned (degraded dump): not unrepairable, just
        // absent. Rank 0's manifest already has 2 copies: nothing to do.
        assert!(plan.unrepairable_manifests.is_empty());
        assert!(plan.manifest_moves.is_empty());
    }

    #[test]
    fn no_dedup_plan_repairs_blobs_not_manifests() {
        let mut a = inv(true, vec![], vec![]);
        a.blob_owners = vec![0, 1];
        let b = inv(true, vec![], vec![]);
        let world_inv = vec![a, b];
        let plan = plan_for(2, Strategy::NoDedup, &GlobalView::default(), &world_inv);
        assert_eq!(plan.blob_moves, vec![(0, 1, 0), (0, 1, 1)]);
        assert!(plan.manifest_moves.is_empty() && plan.chunk_moves.is_empty());
    }

    #[test]
    fn plan_is_deterministic_and_idempotent_on_healthy_state() {
        let global = GlobalView {
            entries: vec![entry(1, vec![0, 1])],
        };
        let world_inv = vec![
            inv(true, vec![0, 1], vec![1]),
            inv(true, vec![0, 1], vec![]),
        ];
        let p1 = plan_for(2, Strategy::CollDedup, &global, &world_inv);
        let p2 = plan_for(2, Strategy::CollDedup, &global, &world_inv);
        assert_eq!(p1, p2);
        assert!(p1.chunk_moves.is_empty(), "healthy state plans no work");
        assert!(p1.unrepairable_chunks.is_empty());
    }

    #[test]
    fn destinations_spread_by_planned_load() {
        // Two one-copy chunks on node 0, three spare nodes, K=2: the two
        // new copies must land on different nodes.
        let global = GlobalView {
            entries: vec![entry(1, vec![0]), entry(2, vec![0])],
        };
        let world_inv = vec![
            inv(true, vec![0], vec![1, 2]),
            inv(true, vec![], vec![]),
            inv(true, vec![], vec![]),
            inv(true, vec![], vec![]),
        ];
        let plan = plan_for(2, Strategy::CollDedup, &global, &world_inv);
        assert_eq!(plan.chunk_moves.len(), 2);
        assert_ne!(
            plan.chunk_moves[0].1, plan.chunk_moves[1].1,
            "load balancing must spread new copies: {:?}",
            plan.chunk_moves
        );
    }

    fn meta(k: u8, m: u8, index: u8) -> ShardMeta {
        ShardMeta {
            k,
            m,
            index,
            total_len: 64,
        }
    }

    #[test]
    fn plan_rebuilds_missing_shards_on_their_home_leaders() {
        let key = StripeKey::Chunk(fp(7));
        let homes = shard_nodes(key.seed(), 3, 4);
        let mut world_inv = vec![
            inv(true, vec![], vec![]),
            inv(true, vec![], vec![]),
            inv(true, vec![], vec![]),
            inv(true, vec![], vec![]),
        ];
        // Indices 0 and 1 sit on their home nodes; index 2 is lost.
        for index in [0u8, 1] {
            world_inv[homes[index as usize] as usize]
                .shards
                .push((key, meta(2, 1, index)));
        }
        let plan = plan_for(2, Strategy::CollDedup, &GlobalView::default(), &world_inv);
        assert_eq!(
            plan.shard_rebuilds,
            vec![(homes[2], key, 2)],
            "exactly the lost shard is rebuilt, on its home node's leader"
        );
        assert!(plan.unrepairable_stripes.is_empty());
    }

    #[test]
    fn plan_flags_stripes_below_k_survivors() {
        let key = StripeKey::Chunk(fp(9));
        let mut world_inv = vec![inv(true, vec![], vec![]), inv(true, vec![], vec![])];
        world_inv[0].shards.push((key, meta(2, 1, 0)));
        let plan = plan_for(2, Strategy::CollDedup, &GlobalView::default(), &world_inv);
        assert_eq!(plan.unrepairable_stripes, vec![key]);
        assert!(
            plan.shard_rebuilds.is_empty(),
            "a dead stripe plans no rebuilds"
        );
    }

    #[test]
    fn coded_chunks_with_viable_stripes_are_not_unrepairable() {
        // fp 7 has no replica anywhere but a viable 2-survivor stripe;
        // fp 8 has neither replicas nor shards.
        let key = StripeKey::Chunk(fp(7));
        let mut world_inv = vec![
            inv(true, vec![0], vec![7, 8]),
            inv(true, vec![], vec![]),
            inv(true, vec![], vec![]),
        ];
        world_inv[0].shards.push((key, meta(2, 1, 0)));
        world_inv[1].shards.push((key, meta(2, 1, 1)));
        let plan = plan_for(2, Strategy::CollDedup, &GlobalView::default(), &world_inv);
        assert_eq!(plan.unrepairable_chunks, vec![fp(8)]);
        assert!(plan.unrepairable_stripes.is_empty());
    }

    #[test]
    fn coded_blob_with_viable_stripe_is_not_unrepairable() {
        // Neither rank has a stored blob; rank 1's was striped at dump
        // time (dump_id 1 — the one `plan_for` plans for), rank 0's is
        // truly gone.
        let key = StripeKey::Blob {
            owner: 1,
            dump_id: 1,
        };
        let mut world_inv = vec![inv(true, vec![], vec![]), inv(true, vec![], vec![])];
        world_inv[0].shards.push((key, meta(1, 1, 0)));
        let plan = plan_for(2, Strategy::NoDedup, &GlobalView::default(), &world_inv);
        assert_eq!(plan.unrepairable_blobs, vec![0]);
    }
}
