//! Per-rank and world-level statistics of one collective dump.
//!
//! These are the raw measurements behind every figure of the paper:
//! unique-content sizes (Fig. 3(a)), reduction overhead (Figs. 3(b)/(c)),
//! per-process replication traffic (Figs. 4(b)/5(b)) and maximal receive
//! sizes (Figs. 4(c)/5(c)). Byte counts are *measured* from the runtime's
//! traffic instrumentation and the storage layer, never estimated.

use replidedup_storage::SessionId;

use crate::config::Strategy;

/// Statistics of the collective fingerprint reduction (coll-dedup only).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReductionStats {
    /// Entries in the final global view (≤ F).
    pub view_entries: u64,
    /// Encoded size of the final view in bytes.
    pub view_bytes: u64,
    /// Number of view entries this rank is designated for.
    pub designations: u64,
    /// Bytes this rank injected into the reduction collective.
    pub traffic_bytes: u64,
}

/// Per-rank statistics of one collective dump.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DumpStats {
    /// Rank these statistics belong to.
    pub rank: u32,
    /// The [`crate::Replicator`] session that drove this dump
    /// ([`SessionId::DEFAULT`] for an unlabeled session).
    pub session: SessionId,
    /// Effective replication factor (clamped to the world size).
    pub k: u32,
    /// Buffer length in bytes.
    pub buffer_bytes: u64,
    /// Number of chunks in the buffer (duplicates included).
    pub chunks_total: u64,
    /// Locally unique chunks (after phase-one dedup; equals `chunks_total`
    /// for `no-dedup`).
    pub chunks_locally_unique: u64,
    /// Bytes of locally unique content.
    pub bytes_locally_unique: u64,
    /// Chunks stored locally from this rank's own data.
    pub chunks_kept: u64,
    /// Chunks discarded because K copies materialize on other ranks.
    pub chunks_discarded: u64,
    /// Locally unique chunks *not* covered by the global view (treated as
    /// unique). Equals `chunks_locally_unique` for the baselines.
    pub chunks_uncovered: u64,
    /// Bytes of uncovered unique content (for the Fig. 3(a) aggregation).
    pub bytes_uncovered: u64,
    /// Chunks sent to each partner (`[j-1]` = partner `j`).
    pub chunks_sent: Vec<u64>,
    /// Chunk records received from partners.
    pub records_received: u64,
    /// Bytes hashed during fingerprinting (0 for `no-dedup`).
    pub bytes_hashed: u64,
    /// Replication payload bytes sent (records, headers included).
    pub bytes_sent_replication: u64,
    /// Replication payload bytes received.
    pub bytes_received_replication: u64,
    /// Bytes physically written to the local device by this rank (own data
    /// plus received replicas; content-address hits write nothing).
    pub bytes_written_local: u64,
    /// Payload bytes memcpy'd between buffers on this rank during the dump
    /// (the allocator copy accounting; 0 on the zero-copy path except for
    /// unavoidable gathers). RMA window writes — the modelled network
    /// transfer — are not counted.
    pub bytes_copied: u64,
    /// Locally unique chunks classified for erasure coding by the
    /// redundancy policy (0 under pure replication).
    pub chunks_coded: u64,
    /// Stripes this rank encoded and fanned out in the stripe-assembly
    /// phase (each coded chunk/blob is striped by exactly one designated
    /// rank, or by every holder when uncovered — shard puts are
    /// idempotent).
    pub stripes_assembled: u64,
    /// Parity bytes this rank generated (`m × shard_len` per assembled
    /// stripe). The dedup-credit metric: naturally duplicated chunks skip
    /// parity generation entirely, so coll-dedup drives this strictly
    /// below the baselines under the same `Rs` policy.
    pub parity_bytes: u64,
    /// Shard payload bytes sent during stripe assembly (data + parity).
    pub bytes_sent_stripes: u64,
    /// Reduction statistics (`Some` only for coll-dedup).
    pub reduction: Option<ReductionStats>,
    /// The dump completed in degraded mode: one or more ranks died
    /// mid-collective, so this rank fell back to a communication-free
    /// local commit (its data is safe but only on its own node).
    pub degraded: bool,
    /// Ranks known dead when this rank committed (empty for a clean dump).
    pub failed_ranks: Vec<u32>,
}

impl DumpStats {
    /// Total chunks sent to all partners.
    pub fn total_chunks_sent(&self) -> u64 {
        self.chunks_sent.iter().sum()
    }
}

/// World-level aggregation of one dump (all ranks, same call).
#[derive(Debug, Clone, Default)]
pub struct WorldDumpStats {
    /// Strategy that produced these statistics.
    pub strategy: Option<Strategy>,
    /// Per-rank statistics, indexed by rank.
    pub ranks: Vec<DumpStats>,
    /// Entries in the global view (0 for baselines).
    pub view_entries: u64,
    /// Chunk size used.
    pub chunk_size: usize,
}

impl WorldDumpStats {
    /// Assemble from per-rank stats (as returned by `WorldConfig::launch`).
    pub fn from_ranks(strategy: Strategy, chunk_size: usize, ranks: Vec<DumpStats>) -> Self {
        let view_entries = ranks
            .first()
            .and_then(|r| r.reduction.as_ref())
            .map_or(0, |r| r.view_entries);
        Self {
            strategy: Some(strategy),
            ranks,
            view_entries,
            chunk_size,
        }
    }

    /// Total dataset size across ranks.
    pub fn total_data_bytes(&self) -> u64 {
        self.ranks.iter().map(|r| r.buffer_bytes).sum()
    }

    /// The paper's "total size of unique content identified" (Fig. 3(a)):
    /// * `no-dedup` — the full dataset (no duplication identified);
    /// * `local-dedup` — Σ per-rank locally-unique bytes;
    /// * `coll-dedup` — view entries counted once globally, plus each
    ///   rank's uncovered unique bytes.
    ///
    /// View entries are assumed to be full chunks (a tail chunk in the view
    /// overcounts by less than one chunk size — negligible at evaluation
    /// scales and impossible when buffers are page-aligned, as in the
    /// paper's AC-FTE setting).
    pub fn unique_content_bytes(&self) -> u64 {
        match self.strategy {
            Some(Strategy::NoDedup) | None => self.total_data_bytes(),
            Some(Strategy::LocalDedup) => self.ranks.iter().map(|r| r.bytes_locally_unique).sum(),
            Some(Strategy::CollDedup) => {
                self.view_entries * self.chunk_size as u64
                    + self.ranks.iter().map(|r| r.bytes_uncovered).sum::<u64>()
            }
        }
    }

    /// Average replication bytes sent per process (Figs. 4(b)/5(b)).
    pub fn avg_sent_bytes(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks
            .iter()
            .map(|r| r.bytes_sent_replication)
            .sum::<u64>() as f64
            / self.ranks.len() as f64
    }

    /// Maximum replication bytes sent by any process.
    pub fn max_sent_bytes(&self) -> u64 {
        self.ranks
            .iter()
            .map(|r| r.bytes_sent_replication)
            .max()
            .unwrap_or(0)
    }

    /// Maximum replication bytes received by any process (Figs. 4(c)/5(c)).
    pub fn max_recv_bytes(&self) -> u64 {
        self.ranks
            .iter()
            .map(|r| r.bytes_received_replication)
            .max()
            .unwrap_or(0)
    }

    /// Maximum bytes written to a local device by any process.
    pub fn max_written_bytes(&self) -> u64 {
        self.ranks
            .iter()
            .map(|r| r.bytes_written_local)
            .max()
            .unwrap_or(0)
    }

    /// Maximum reduction traffic injected by any rank (Figs. 3(b)/(c) input).
    pub fn max_reduction_bytes(&self) -> u64 {
        self.ranks
            .iter()
            .filter_map(|r| r.reduction.as_ref())
            .map(|r| r.traffic_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Maximum bytes hashed by any rank.
    pub fn max_hashed_bytes(&self) -> u64 {
        self.ranks.iter().map(|r| r.bytes_hashed).max().unwrap_or(0)
    }

    /// Total payload bytes memcpy'd across all ranks (copy accounting).
    pub fn total_copied_bytes(&self) -> u64 {
        self.ranks.iter().map(|r| r.bytes_copied).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank_stats(
        buffer: u64,
        local_unique: u64,
        uncovered: u64,
        sent: u64,
        recv: u64,
    ) -> DumpStats {
        DumpStats {
            buffer_bytes: buffer,
            bytes_locally_unique: local_unique,
            bytes_uncovered: uncovered,
            bytes_sent_replication: sent,
            bytes_received_replication: recv,
            ..Default::default()
        }
    }

    #[test]
    fn unique_content_no_dedup_is_total() {
        let w = WorldDumpStats {
            strategy: Some(Strategy::NoDedup),
            ranks: vec![rank_stats(100, 40, 40, 0, 0), rank_stats(200, 50, 50, 0, 0)],
            view_entries: 0,
            chunk_size: 10,
        };
        assert_eq!(w.unique_content_bytes(), 300);
    }

    #[test]
    fn unique_content_local_dedup_sums_local_unique() {
        let w = WorldDumpStats {
            strategy: Some(Strategy::LocalDedup),
            ranks: vec![rank_stats(100, 40, 40, 0, 0), rank_stats(200, 50, 50, 0, 0)],
            view_entries: 0,
            chunk_size: 10,
        };
        assert_eq!(w.unique_content_bytes(), 90);
    }

    #[test]
    fn unique_content_coll_dedup_counts_view_once() {
        let w = WorldDumpStats {
            strategy: Some(Strategy::CollDedup),
            ranks: vec![rank_stats(100, 40, 10, 0, 0), rank_stats(200, 50, 20, 0, 0)],
            view_entries: 3,
            chunk_size: 10,
        };
        // 3 view chunks × 10 + 10 + 20 uncovered.
        assert_eq!(w.unique_content_bytes(), 60);
    }

    #[test]
    fn traffic_aggregates() {
        let w = WorldDumpStats {
            strategy: Some(Strategy::CollDedup),
            ranks: vec![rank_stats(0, 0, 0, 100, 60), rank_stats(0, 0, 0, 50, 90)],
            view_entries: 0,
            chunk_size: 1,
        };
        assert!((w.avg_sent_bytes() - 75.0).abs() < 1e-9);
        assert_eq!(w.max_sent_bytes(), 100);
        assert_eq!(w.max_recv_bytes(), 90);
    }

    #[test]
    fn from_ranks_lifts_view_entries() {
        let mut r = rank_stats(0, 0, 0, 0, 0);
        r.reduction = Some(ReductionStats {
            view_entries: 7,
            ..Default::default()
        });
        let w = WorldDumpStats::from_ranks(Strategy::CollDedup, 4096, vec![r]);
        assert_eq!(w.view_entries, 7);
        assert_eq!(w.chunk_size, 4096);
    }

    #[test]
    fn empty_world_is_zero() {
        let w = WorldDumpStats::default();
        assert_eq!(w.avg_sent_bytes(), 0.0);
        assert_eq!(w.max_sent_bytes(), 0);
        assert_eq!(w.unique_content_bytes(), 0);
    }
}
