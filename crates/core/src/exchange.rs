//! Chunk record wire format for the single-sided exchange.
//!
//! Partners `put` chunk *records* into each other's windows. A record is a
//! fixed-size cell — fingerprint, payload length, payload padded to the
//! chunk size — so that record offsets are pure arithmetic on the globally
//! known chunk counts (Algorithm 3 plans in chunks, not bytes). The 24-byte
//! header on a 4 KiB chunk costs 0.6 % — the fingerprint has to travel
//! anyway for content-addressed storage on the receiver.

use bytes::Bytes;
use replidedup_hash::Fingerprint;

/// Bytes of record header: fingerprint + little-endian `u32` payload length.
pub const RECORD_HEADER: usize = Fingerprint::SIZE + 4;

/// Total record cell size for a given chunk size.
pub const fn record_size(chunk_size: usize) -> usize {
    RECORD_HEADER + chunk_size
}

/// Append one record to `out`. `data` must fit in `chunk_size`.
pub fn encode_record(out: &mut Vec<u8>, fp: &Fingerprint, data: &[u8], chunk_size: usize) {
    assert!(
        data.len() <= chunk_size,
        "chunk of {} exceeds chunk size {chunk_size}",
        data.len()
    );
    out.extend_from_slice(fp.as_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out.extend_from_slice(data);
    // Pad to the fixed cell size.
    out.resize(out.len() + (chunk_size - data.len()), 0);
}

/// Record parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The region is shorter than `count` full records.
    Truncated {
        /// Record index at which input ran out.
        at: usize,
    },
    /// A record header declares a payload longer than the chunk size.
    BadLength {
        /// Record index with the bad header.
        at: usize,
        /// The declared length.
        len: u32,
    },
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Truncated { at } => write!(f, "record region truncated at record {at}"),
            RecordError::BadLength { at, len } => {
                write!(f, "record {at} declares impossible payload length {len}")
            }
        }
    }
}

impl std::error::Error for RecordError {}

/// Parse exactly `count` records from the front of `buf`.
pub fn parse_records(
    buf: &[u8],
    chunk_size: usize,
    count: usize,
) -> Result<Vec<(Fingerprint, Bytes)>, RecordError> {
    let cell = record_size(chunk_size);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let start = i * cell;
        let Some(record) = buf.get(start..start + cell) else {
            return Err(RecordError::Truncated { at: i });
        };
        let fp =
            Fingerprint::from_bytes(record[..Fingerprint::SIZE].try_into().expect("fixed slice"));
        let len = u32::from_le_bytes(
            record[Fingerprint::SIZE..RECORD_HEADER]
                .try_into()
                .expect("fixed slice"),
        );
        if len as usize > chunk_size {
            return Err(RecordError::BadLength { at: i, len });
        }
        let payload = Bytes::copy_from_slice(&record[RECORD_HEADER..RECORD_HEADER + len as usize]);
        out.push((fp, payload));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::synthetic(n)
    }

    #[test]
    fn roundtrip_full_and_tail_chunks() {
        let mut buf = Vec::new();
        encode_record(&mut buf, &fp(1), &[0xAA; 8], 8);
        encode_record(&mut buf, &fp(2), &[0xBB; 3], 8); // short tail
        assert_eq!(buf.len(), 2 * record_size(8));
        let records = parse_records(&buf, 8, 2).unwrap();
        assert_eq!(records[0], (fp(1), Bytes::from(vec![0xAA; 8])));
        assert_eq!(records[1], (fp(2), Bytes::from(vec![0xBB; 3])));
    }

    #[test]
    fn empty_payload_is_legal() {
        let mut buf = Vec::new();
        encode_record(&mut buf, &fp(1), &[], 8);
        let records = parse_records(&buf, 8, 1).unwrap();
        assert_eq!(records[0].1.len(), 0);
    }

    #[test]
    fn truncated_region_errors() {
        let mut buf = Vec::new();
        encode_record(&mut buf, &fp(1), &[1; 8], 8);
        assert_eq!(
            parse_records(&buf, 8, 2),
            Err(RecordError::Truncated { at: 1 })
        );
    }

    #[test]
    fn bad_length_errors() {
        let mut buf = Vec::new();
        encode_record(&mut buf, &fp(1), &[1; 8], 8);
        buf[Fingerprint::SIZE] = 0xFF; // corrupt the length field
        assert!(matches!(
            parse_records(&buf, 8, 1),
            Err(RecordError::BadLength { at: 0, .. })
        ));
    }

    #[test]
    fn zero_count_parses_empty() {
        assert_eq!(parse_records(&[], 8, 0).unwrap(), Vec::new());
    }

    #[test]
    #[should_panic(expected = "exceeds chunk size")]
    fn oversized_chunk_panics() {
        let mut buf = Vec::new();
        encode_record(&mut buf, &fp(1), &[1; 9], 8);
    }

    #[test]
    fn error_display() {
        assert!(RecordError::Truncated { at: 3 }.to_string().contains('3'));
        assert!(RecordError::BadLength { at: 0, len: 99 }
            .to_string()
            .contains("99"));
    }
}
