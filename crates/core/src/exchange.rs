//! Chunk record wire format for the single-sided exchange.
//!
//! Partners `put` chunk *records* into each other's windows. A record is a
//! fixed-size cell — fingerprint, payload length, payload padded to the
//! *payload cap* — so that record offsets are pure arithmetic on the
//! globally known chunk counts (Algorithm 3 plans in chunks, not bytes).
//! The cap is the largest chunk the configured chunker can emit: the
//! fixed chunk size for the paper's page chunker, `max_size` for the CDC
//! chunkers. Variable-length chunks ride in the same cells — the header's
//! explicit length says how much of the cell is payload; padding costs
//! window memory, never wire traffic (the vectored put sends header +
//! payload only). The 24-byte header on a 4 KiB chunk costs 0.6 % — the
//! fingerprint has to travel anyway for content-addressed storage on the
//! receiver.

use bytes::Bytes;
use replidedup_buf::Chunk;
use replidedup_hash::Fingerprint;

/// Bytes of record header: fingerprint + little-endian `u32` payload length.
pub const RECORD_HEADER: usize = Fingerprint::SIZE + 4;

/// Total record cell size for a given chunk size.
pub const fn record_size(payload_cap: usize) -> usize {
    RECORD_HEADER + payload_cap
}

/// Append one record to `out`. `data` must fit in `payload_cap`.
///
/// This stages a full copy of the payload, charged to the copy accounting;
/// the zero-copy exchange uses [`record_header`] plus a vectored put
/// instead.
pub fn encode_record(out: &mut Vec<u8>, fp: &Fingerprint, data: &[u8], payload_cap: usize) {
    assert!(
        data.len() <= payload_cap,
        "chunk of {} exceeds payload cap {payload_cap}",
        data.len()
    );
    out.extend_from_slice(fp.as_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out.extend_from_slice(data);
    replidedup_buf::record_copy(data.len());
    // Pad to the fixed cell size.
    out.resize(out.len() + (payload_cap - data.len()), 0);
}

/// The [`RECORD_HEADER`]-byte header of a record whose payload is `len`
/// bytes, as a stack array. The zero-copy exchange sends `[header, chunk]`
/// as one vectored RMA put — the chunk's bytes never leave the application
/// buffer on the sender side, and the cell's padding stays untouched
/// (windows are zero-initialised, so the gap is already zero).
pub fn record_header(fp: &Fingerprint, len: usize, payload_cap: usize) -> [u8; RECORD_HEADER] {
    assert!(
        len <= payload_cap,
        "chunk of {len} exceeds payload cap {payload_cap}"
    );
    let mut header = [0u8; RECORD_HEADER];
    header[..Fingerprint::SIZE].copy_from_slice(fp.as_bytes());
    header[Fingerprint::SIZE..].copy_from_slice(&(len as u32).to_le_bytes());
    header
}

/// Record parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The region is shorter than `count` full records.
    Truncated {
        /// Record index at which input ran out.
        at: usize,
    },
    /// A record header declares a payload longer than the chunk size.
    BadLength {
        /// Record index with the bad header.
        at: usize,
        /// The declared length.
        len: u32,
    },
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Truncated { at } => write!(f, "record region truncated at record {at}"),
            RecordError::BadLength { at, len } => {
                write!(f, "record {at} declares impossible payload length {len}")
            }
        }
    }
}

impl std::error::Error for RecordError {}

/// Parse exactly `count` records from the front of `buf`, copying every
/// payload into a fresh allocation (charged to the copy accounting). The
/// zero-copy commit path uses [`parse_records_zc`] instead.
pub fn parse_records(
    buf: &[u8],
    payload_cap: usize,
    count: usize,
) -> Result<Vec<(Fingerprint, Bytes)>, RecordError> {
    let cell = record_size(payload_cap);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let start = i * cell;
        let Some(record) = buf.get(start..start + cell) else {
            return Err(RecordError::Truncated { at: i });
        };
        let fp =
            Fingerprint::from_bytes(record[..Fingerprint::SIZE].try_into().expect("fixed slice"));
        let len = u32::from_le_bytes(
            record[Fingerprint::SIZE..RECORD_HEADER]
                .try_into()
                .expect("fixed slice"),
        );
        if len as usize > payload_cap {
            return Err(RecordError::BadLength { at: i, len });
        }
        let payload = Bytes::copy_from_slice(&record[RECORD_HEADER..RECORD_HEADER + len as usize]);
        replidedup_buf::record_copy(payload.len());
        out.push((fp, payload));
    }
    Ok(out)
}

/// Parse exactly `count` records from the front of `buf` *without copying
/// any payload bytes*: each returned [`Chunk`] is a zero-copy sub-slice of
/// `buf`'s allocation. This is how the commit phase lifts received records
/// straight out of the (stolen) exchange window into storage.
pub fn parse_records_zc(
    buf: &Bytes,
    payload_cap: usize,
    count: usize,
) -> Result<Vec<(Fingerprint, Chunk)>, RecordError> {
    let cell = record_size(payload_cap);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let start = i * cell;
        let Some(record) = buf.get(start..start + cell) else {
            return Err(RecordError::Truncated { at: i });
        };
        let fp =
            Fingerprint::from_bytes(record[..Fingerprint::SIZE].try_into().expect("fixed slice"));
        let len = u32::from_le_bytes(
            record[Fingerprint::SIZE..RECORD_HEADER]
                .try_into()
                .expect("fixed slice"),
        );
        if len as usize > payload_cap {
            return Err(RecordError::BadLength { at: i, len });
        }
        let payload =
            Chunk::from(buf.slice(start + RECORD_HEADER..start + RECORD_HEADER + len as usize));
        out.push((fp, payload));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::synthetic(n)
    }

    #[test]
    fn roundtrip_full_and_tail_chunks() {
        let mut buf = Vec::new();
        encode_record(&mut buf, &fp(1), &[0xAA; 8], 8);
        encode_record(&mut buf, &fp(2), &[0xBB; 3], 8); // short tail
        assert_eq!(buf.len(), 2 * record_size(8));
        let records = parse_records(&buf, 8, 2).unwrap();
        assert_eq!(records[0], (fp(1), Bytes::from(vec![0xAA; 8])));
        assert_eq!(records[1], (fp(2), Bytes::from(vec![0xBB; 3])));
    }

    #[test]
    fn empty_payload_is_legal() {
        let mut buf = Vec::new();
        encode_record(&mut buf, &fp(1), &[], 8);
        let records = parse_records(&buf, 8, 1).unwrap();
        assert_eq!(records[0].1.len(), 0);
    }

    #[test]
    fn truncated_region_errors() {
        let mut buf = Vec::new();
        encode_record(&mut buf, &fp(1), &[1; 8], 8);
        assert_eq!(
            parse_records(&buf, 8, 2),
            Err(RecordError::Truncated { at: 1 })
        );
    }

    #[test]
    fn bad_length_errors() {
        let mut buf = Vec::new();
        encode_record(&mut buf, &fp(1), &[1; 8], 8);
        buf[Fingerprint::SIZE] = 0xFF; // corrupt the length field
        assert!(matches!(
            parse_records(&buf, 8, 1),
            Err(RecordError::BadLength { at: 0, .. })
        ));
    }

    #[test]
    fn zero_count_parses_empty() {
        assert_eq!(parse_records(&[], 8, 0).unwrap(), Vec::new());
    }

    #[test]
    #[should_panic(expected = "exceeds payload cap")]
    fn oversized_chunk_panics() {
        let mut buf = Vec::new();
        encode_record(&mut buf, &fp(1), &[1; 9], 8);
    }

    #[test]
    fn zc_parse_shares_the_region_allocation() {
        let mut buf = Vec::new();
        encode_record(&mut buf, &fp(1), &[0xAA; 8], 8);
        encode_record(&mut buf, &fp(2), &[0xBB; 3], 8);
        let region = Bytes::from(buf);
        let records = parse_records_zc(&region, 8, 2).unwrap();
        assert_eq!(records[0].0, fp(1));
        assert_eq!(*records[0].1, [0xAA; 8]);
        assert_eq!(*records[1].1, [0xBB; 3]);
        for (_, payload) in &records {
            assert!(
                payload.as_bytes().shares_allocation_with(&region),
                "zero-copy parse must slice, not copy"
            );
        }
    }

    #[test]
    fn zc_parse_matches_copying_parse() {
        let mut buf = Vec::new();
        for i in 0..5u64 {
            encode_record(&mut buf, &fp(i), &vec![i as u8; (i as usize) % 9], 8);
        }
        let copied = parse_records(&buf, 8, 5).unwrap();
        let zc = parse_records_zc(&Bytes::from(buf), 8, 5).unwrap();
        assert_eq!(copied.len(), zc.len());
        for ((fa, da), (fb, db)) in copied.iter().zip(&zc) {
            assert_eq!(fa, fb);
            assert_eq!(&da[..], &db[..]);
        }
    }

    #[test]
    fn zc_parse_errors_match() {
        let mut buf = Vec::new();
        encode_record(&mut buf, &fp(1), &[1; 8], 8);
        let short = Bytes::from(buf.clone());
        assert_eq!(
            parse_records_zc(&short, 8, 2),
            Err(RecordError::Truncated { at: 1 })
        );
        buf[Fingerprint::SIZE] = 0xFF;
        assert!(matches!(
            parse_records_zc(&Bytes::from(buf), 8, 1),
            Err(RecordError::BadLength { at: 0, .. })
        ));
    }

    #[test]
    fn record_header_matches_encoded_record_prefix() {
        let mut buf = Vec::new();
        encode_record(&mut buf, &fp(7), &[9; 5], 8);
        assert_eq!(record_header(&fp(7), 5, 8), buf[..RECORD_HEADER]);
    }

    #[test]
    fn error_display() {
        assert!(RecordError::Truncated { at: 3 }.to_string().contains('3'));
        assert!(RecordError::BadLength { at: 0, len: 99 }
            .to_string()
            .contains("99"));
    }
}
