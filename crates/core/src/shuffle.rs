//! Load-aware partner selection (Algorithm 2): rank shuffling.
//!
//! "We gather from each rank information about the load [...] Once each
//! rank is aware of the load of every other rank, we calculate an
//! interleaving that is uniquely shared by all ranks and achieves our goal
//! of load-balancing of receive size." (Section III-B)
//!
//! The shuffle sorts ranks by descending total send size and repeatedly
//! pairs the heaviest unplaced rank with the `K-1` lightest ones, so that
//! each heavy sender's partners are light senders (and vice versa) once
//! the naive ring `i → i+1 .. i+K-1` is applied to the shuffled order.
//!
//! ### Pseudocode erratum
//! Algorithm 2 as printed initializes `tail ← 0`, never decrements it, and
//! never increments `j`, which would loop forever. The prose is
//! unambiguous: "we repeatedly pair a rank that has the most amount of
//! chunks to send (head) with K-1 ranks that have the least amount of
//! chunks to send (tail) until all ranks were processed." We implement
//! that: `tail` starts at `N-1` and walks down.

use replidedup_mpi::Rank;

/// Total bytes (or chunks — any consistent unit) each rank sends to its
/// partners: the sum of `Load[1..K]` per rank.
pub fn total_send_loads(send_load: &[Vec<u64>]) -> Vec<u64> {
    send_load.iter().map(|l| l.iter().skip(1).sum()).collect()
}

/// Algorithm 2: compute the shuffled rank order. `send_load[r]` is rank
/// `r`'s Load vector; `k` the replication factor. Returns a permutation
/// `shuffle` where `shuffle[position] = rank`; partner `j` of the rank at
/// position `p` is the rank at position `(p + j) mod N`.
///
/// Deterministic: ties in send size break by rank id, so every rank
/// computes the identical shuffle from the allgathered loads.
pub fn rank_shuffle(send_load: &[Vec<u64>], k: u32) -> Vec<Rank> {
    let n = send_load.len();
    if n == 0 {
        return Vec::new();
    }
    let totals = total_send_loads(send_load);
    // Sort rank indices by descending send size (ties by ascending rank).
    let mut rank_index: Vec<Rank> = (0..n as u32).collect();
    rank_index.sort_by_key(|&r| (std::cmp::Reverse(totals[r as usize]), r));

    let mut shuffle = Vec::with_capacity(n);
    let mut head = 0usize;
    let mut tail = n - 1;
    while head <= tail {
        shuffle.push(rank_index[head]);
        if head == tail {
            break;
        }
        head += 1;
        let mut j = 1;
        while j < k && head <= tail {
            shuffle.push(rank_index[tail]);
            if tail == head {
                // `head` now points past the consumed light rank.
                head += 1;
                break;
            }
            tail -= 1;
            j += 1;
        }
    }
    debug_assert_eq!(shuffle.len(), n);
    shuffle
}

/// The identity "shuffle" used by the naive partner selection of the
/// baselines and the `coll-no-shuffle` ablation.
pub fn identity_shuffle(n: u32) -> Vec<Rank> {
    (0..n).collect()
}

/// Invert a shuffle: `positions[rank] = position`.
pub fn positions_of(shuffle: &[Rank]) -> Vec<u32> {
    let mut pos = vec![0u32; shuffle.len()];
    for (p, &r) in shuffle.iter().enumerate() {
        pos[r as usize] = p as u32;
    }
    pos
}

/// Partner `j` (1-based) of `rank` under `shuffle`: the rank `j` positions
/// to the right on the shuffled ring.
pub fn partner_of(shuffle: &[Rank], positions: &[u32], rank: Rank, j: u32) -> Rank {
    let n = shuffle.len() as u32;
    let p = positions[rank as usize];
    shuffle[((p + j) % n) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads_from_totals(totals: &[u64], k: u32) -> Vec<Vec<u64>> {
        // Spread each total over K-1 partners; Load[0] arbitrary.
        totals
            .iter()
            .map(|&t| {
                let mut l = vec![0u64; k as usize];
                let partners = (k - 1).max(1) as u64;
                for lj in l.iter_mut().take(k as usize).skip(1) {
                    *lj = t / partners;
                }
                l[1] += t % partners;
                l
            })
            .collect()
    }

    /// Max receive volume under the naive ring applied to a shuffle:
    /// receiver at position p gets SendLoad[shuffle[p-d]][d] for d=1..K-1.
    fn max_receive(shuffle: &[Rank], send_load: &[Vec<u64>], k: u32) -> u64 {
        let n = shuffle.len();
        let mut recv = vec![0u64; n];
        for (p, _) in shuffle.iter().enumerate() {
            for d in 1..k as usize {
                let sender = shuffle[(p + n - (d % n)) % n];
                recv[p] += send_load[sender as usize][d];
            }
        }
        recv.into_iter().max().unwrap_or(0)
    }

    #[test]
    fn paper_figure_2_example() {
        // Six processes, K=3: the first two send 100 chunks to each of
        // their two partners, the rest 10. Figure 2: naive selection makes
        // some node receive 200 chunks; the shuffle (1,3,4,2,5,6) lowers
        // the maximum to 110.
        let heavy = vec![0u64, 100, 100];
        let light = vec![0u64, 10, 10];
        let send_load = vec![
            heavy.clone(),
            heavy,
            light.clone(),
            light.clone(),
            light.clone(),
            light,
        ];
        let naive = identity_shuffle(6);
        let shuffled = rank_shuffle(&send_load, 3);
        assert_eq!(max_receive(&naive, &send_load, 3), 200);
        assert_eq!(max_receive(&shuffled, &send_load, 3), 110);
        // The heavy senders must not be adjacent in the shuffle.
        let pos = positions_of(&shuffled);
        let gap = (i64::from(pos[0]) - i64::from(pos[1])).unsigned_abs();
        assert!(gap >= 2, "heavy ranks adjacent: {shuffled:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        for n in [1usize, 2, 3, 5, 8, 13, 40] {
            let totals: Vec<u64> = (0..n as u64).map(|i| (i * 37) % 11).collect();
            for k in 2..=4u32 {
                let shuffle = rank_shuffle(&loads_from_totals(&totals, k), k);
                let mut sorted = shuffle.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>(), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn uniform_loads_shuffle_is_harmless() {
        let send_load = loads_from_totals(&[50; 8], 3);
        let shuffled = rank_shuffle(&send_load, 3);
        let naive = identity_shuffle(8);
        assert_eq!(
            max_receive(&shuffled, &send_load, 3),
            max_receive(&naive, &send_load, 3),
            "uniform loads: shuffling cannot make things worse"
        );
    }

    #[test]
    fn shuffle_interleaves_heavy_and_light() {
        // 4 heavy + 8 light, K=3: every heavy rank should be followed by
        // two light ranks in the shuffle.
        let mut totals = vec![1000u64; 4];
        totals.extend(vec![1u64; 8]);
        let shuffle = rank_shuffle(&loads_from_totals(&totals, 3), 3);
        for (p, &r) in shuffle.iter().enumerate() {
            if r < 4 {
                // heavy
                let next = shuffle[(p + 1) % shuffle.len()];
                assert!(
                    next >= 4,
                    "heavy rank {r} at {p} followed by heavy {next}: {shuffle:?}"
                );
            }
        }
    }

    #[test]
    fn shuffle_beats_naive_on_average_and_never_badly_loses() {
        // The shuffle is a greedy heuristic: on skewed loads it should win
        // clearly in aggregate; on any individual draw it may lose by a
        // small margin but never catastrophically.
        let mut state = 0x1234_5678_u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut sum_shuffled = 0u64;
        let mut sum_naive = 0u64;
        for trial in 0..100 {
            let n = 6 + (trial % 20) as usize;
            let k = 2 + (trial % 4) as u32;
            // Skewed loads (the regime the paper motivates): a few heavy
            // senders, many light ones.
            let totals: Vec<u64> = (0..n)
                .map(|i| {
                    if i % 5 == 0 {
                        500 + rand() % 500
                    } else {
                        rand() % 50
                    }
                })
                .collect();
            let send_load = loads_from_totals(&totals, k);
            let shuffled_max = max_receive(&rank_shuffle(&send_load, k), &send_load, k);
            let naive_max = max_receive(&identity_shuffle(n as u32), &send_load, k);
            sum_shuffled += shuffled_max;
            sum_naive += naive_max;
            assert!(
                shuffled_max as f64 <= naive_max as f64 * 1.3,
                "trial {trial}: shuffled {shuffled_max} far worse than naive {naive_max} (n={n}, k={k})"
            );
        }
        assert!(
            sum_shuffled < sum_naive,
            "shuffle must win in aggregate: {sum_shuffled} vs {sum_naive}"
        );
    }

    #[test]
    fn partner_helpers_are_consistent() {
        let shuffle = vec![2u32, 0, 3, 1];
        let pos = positions_of(&shuffle);
        assert_eq!(pos, vec![1, 3, 0, 2]);
        // rank 2 is at position 0; partner 1 is position 1 → rank 0.
        assert_eq!(partner_of(&shuffle, &pos, 2, 1), 0);
        assert_eq!(partner_of(&shuffle, &pos, 2, 3), 1);
        // wraps around
        assert_eq!(partner_of(&shuffle, &pos, 1, 1), 2);
    }

    #[test]
    fn single_rank_world() {
        assert_eq!(rank_shuffle(&loads_from_totals(&[5], 3), 3), vec![0]);
        assert_eq!(rank_shuffle(&[], 3), Vec::<u32>::new());
    }

    #[test]
    fn total_send_loads_skips_local_slot() {
        let loads = vec![vec![100, 2, 3], vec![50, 0, 0]];
        assert_eq!(total_send_loads(&loads), vec![5, 0]);
    }
}
