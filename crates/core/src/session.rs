//! The session-based public API: [`Replicator`].
//!
//! The pre-session free functions took four loose parameters per call and
//! validated the configuration at run time, inside the collective. A
//! [`Replicator`] is built once via
//! [`Replicator::builder`] — which absorbs the [`DumpConfig`] fields, the
//! cluster, the hasher and the trace preference, and rejects invalid
//! configurations with a typed [`ConfigError`] *before* any rank enters a
//! collective — and then drives any number of dump/restore collectives
//! through one handle. Instrumentation, validation and future pipelined
//! execution all hang off the session instead of being re-plumbed per call.

use replidedup_buf::Chunk;
use replidedup_hash::{ChunkHasher, ChunkerKind, Sha1ChunkHasher};
use replidedup_mpi::{Comm, CommError};
use replidedup_storage::{Cluster, DumpId, ScrubReport, SessionId};

use crate::config::{ConfigError, DumpConfig, RedundancyPolicy, Strategy};
use crate::dump::{dump_impl, DumpContext, DumpError};
use crate::heal::{heal_impl, heal_step_impl, HealCursor, HealOptions, HealReport, TokenBucket};
use crate::repair::{repair_impl, scrub_impl, RepairError, RepairStats};
use crate::restore::{restore_impl, RestoreError};
use crate::retry::RetryPolicy;
use crate::stats::DumpStats;

/// Top-level error of the session API: every failure class of the
/// replication pipeline, with [`std::error::Error::source`] chains down to
/// the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReplError {
    /// The configuration was rejected (only from the builder — a built
    /// [`Replicator`] cannot carry an invalid config).
    Config(ConfigError),
    /// A collective dump failed.
    Dump(DumpError),
    /// A collective restore failed.
    Restore(RestoreError),
    /// A collective repair or scrub failed.
    Repair(RepairError),
    /// A rank died (or a deadlock was suspected) inside a collective this
    /// session drove. Dump-side rank deaths normally degrade instead of
    /// erroring; this arm carries the cases that cannot be absorbed.
    RankFailure(CommError),
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::Config(e) => write!(f, "invalid replicator config: {e}"),
            ReplError::Dump(e) => write!(f, "dump failed: {e}"),
            ReplError::Restore(e) => write!(f, "restore failed: {e}"),
            ReplError::Repair(e) => write!(f, "repair failed: {e}"),
            ReplError::RankFailure(e) => write!(f, "rank failure during collective: {e}"),
        }
    }
}

impl std::error::Error for ReplError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplError::Config(e) => Some(e),
            ReplError::Dump(e) => Some(e),
            ReplError::Restore(e) => Some(e),
            ReplError::Repair(e) => Some(e),
            ReplError::RankFailure(e) => Some(e),
        }
    }
}

impl From<ConfigError> for ReplError {
    fn from(e: ConfigError) -> Self {
        ReplError::Config(e)
    }
}

impl From<DumpError> for ReplError {
    fn from(e: DumpError) -> Self {
        match e {
            DumpError::Comm(c) => ReplError::RankFailure(c),
            other => ReplError::Dump(other),
        }
    }
}

impl From<RestoreError> for ReplError {
    fn from(e: RestoreError) -> Self {
        match e {
            RestoreError::Comm(c) => ReplError::RankFailure(c),
            other => ReplError::Restore(other),
        }
    }
}

impl From<RepairError> for ReplError {
    fn from(e: RepairError) -> Self {
        match e {
            RepairError::Comm(c) => ReplError::RankFailure(c),
            other => ReplError::Repair(other),
        }
    }
}

/// Builder for a [`Replicator`] session. Obtained from
/// [`Replicator::builder`]; finished with [`ReplicatorBuilder::build`],
/// where all validation happens.
pub struct ReplicatorBuilder<'a> {
    cfg: DumpConfig,
    cluster: Option<&'a Cluster>,
    hasher: &'a (dyn ChunkHasher + Sync),
    tracing: Option<bool>,
    retry: RetryPolicy,
    heal: HealOptions,
    session_label: Option<String>,
}

impl std::fmt::Debug for ReplicatorBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatorBuilder")
            .field("cfg", &self.cfg)
            .field("cluster", &self.cluster.map(|_| ".."))
            .field("tracing", &self.tracing)
            .field("retry", &self.retry)
            .field("heal", &self.heal)
            .field("session_label", &self.session_label)
            .finish_non_exhaustive() // hasher is a plain trait object
    }
}

impl<'a> ReplicatorBuilder<'a> {
    /// Target cluster (required).
    pub fn cluster(mut self, cluster: &'a Cluster) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Chunk hash function (default: SHA-1, the paper's choice).
    pub fn hasher(mut self, hasher: &'a (dyn ChunkHasher + Sync)) -> Self {
        self.hasher = hasher;
        self
    }

    /// Replication factor `K` (total copies including the local one).
    pub fn replication(mut self, k: u32) -> Self {
        self.cfg = self.cfg.with_replication(k);
        self
    }

    /// Fixed chunk size in bytes.
    pub fn chunk_size(mut self, chunk_size: usize) -> Self {
        self.cfg = self.cfg.with_chunk_size(chunk_size);
        self
    }

    /// Chunking algorithm (default: fixed-size, the paper's scheme).
    /// Content-defined kinds ([`ChunkerKind::Rabin`],
    /// [`ChunkerKind::Gear`]) carry their own min/avg/max parameters and
    /// realign chunk boundaries under byte shifts, trading hashing
    /// throughput for dedup on shifted duplicates.
    pub fn with_chunker(mut self, chunker: ChunkerKind) -> Self {
        self.cfg = self.cfg.with_chunker(chunker);
        self
    }

    /// Per-chunk redundancy policy: `K`× replication (the default and the
    /// paper's scheme), Reed-Solomon `k + m` striping, or the automatic
    /// per-chunk choice. See [`RedundancyPolicy`] for the dedup-credit
    /// rule the coded policies apply.
    pub fn with_policy(mut self, policy: RedundancyPolicy) -> Self {
        self.cfg = self.cfg.with_policy(policy);
        self
    }

    /// Reduction threshold `F`.
    pub fn f_threshold(mut self, f: usize) -> Self {
        self.cfg = self.cfg.with_f_threshold(f);
        self
    }

    /// Load-aware partner selection (Algorithm 2) on or off.
    pub fn shuffle(mut self, shuffle: bool) -> Self {
        self.cfg = self.cfg.with_shuffle(shuffle);
        self
    }

    /// Intra-rank parallel hashing on or off.
    pub fn parallel_hash(mut self, parallel: bool) -> Self {
        self.cfg = self.cfg.with_parallel_hash(parallel);
        self
    }

    /// Replace the whole configuration at once (including the strategy).
    /// Escape hatch for callers that already hold a [`DumpConfig`]; it is
    /// still validated by [`ReplicatorBuilder::build`].
    pub fn with_config(mut self, cfg: DumpConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Force the communicator's phase tracer on (or off) for every
    /// collective this session drives. Default: inherit whatever the world
    /// was configured with (the zero-cost no-op sink unless enabled).
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.tracing = Some(enabled);
        self
    }

    /// Retry policy for restore's storage reads (default:
    /// [`RetryPolicy::default_restore`] — 4 attempts, short exponential
    /// backoff). [`RetryPolicy::none`] turns retries off.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Tuning for the incremental background healer
    /// ([`Replicator::heal`] and friends): window sizes, the optional
    /// byte rate limit, and the optional superseded-generation GC bound.
    /// Must be identical on every rank driving the same heal.
    pub fn heal_options(mut self, opts: HealOptions) -> Self {
        self.heal = opts;
        self
    }

    /// Name this session on the cluster. Labeled sessions get their own
    /// [`SessionId`]: a private dump-id generation space and a private
    /// point-to-point tag namespace, so several labeled [`Replicator`]s
    /// can dump, restore and heal against the same cluster concurrently
    /// without their generations or in-flight messages colliding.
    ///
    /// Labels must be unique among *live* sessions on the cluster —
    /// [`ReplicatorBuilder::build`] returns
    /// [`ConfigError::DuplicateSession`] otherwise. The registration is
    /// released when the [`Replicator`] is dropped, but its [`SessionId`]
    /// is never reused, so a crashed session's stale messages and
    /// generations can never alias a later one's.
    pub fn session_label(mut self, label: impl Into<String>) -> Self {
        self.session_label = Some(label.into());
        self
    }

    /// Validate and build the session.
    pub fn build(self) -> Result<Replicator<'a>, ConfigError> {
        self.cfg.validate()?;
        let cluster = self.cluster.ok_or(ConfigError::MissingCluster)?;
        let session =
            match &self.session_label {
                Some(label) => Some(cluster.begin_session(label).ok_or_else(|| {
                    ConfigError::DuplicateSession {
                        label: label.clone(),
                    }
                })?),
                None => None,
            };
        Ok(Replicator {
            cfg: self.cfg,
            cluster,
            hasher: self.hasher,
            tracing: self.tracing,
            retry: self.retry,
            heal: self.heal,
            session,
        })
    }
}

/// A validated replication session: one strategy, one cluster, one hasher,
/// any number of dump/restore collectives.
///
/// ```
/// use replidedup_core::{Replicator, Strategy};
/// use replidedup_mpi::WorldConfig;
/// use replidedup_storage::{Cluster, Placement};
///
/// let cluster = Cluster::new(Placement::one_per_node(4));
/// let repl = Replicator::builder(Strategy::CollDedup)
///     .cluster(&cluster)
///     .replication(3)
///     .chunk_size(64)
///     .build()
///     .unwrap();
/// let out = WorldConfig::default().launch(4, |comm| {
///     let buf = vec![comm.rank() as u8; 256];
///     // Passing the Vec by value enters the zero-copy path.
///     repl.dump(comm, 1, buf.clone()).unwrap();
///     assert_eq!(repl.restore(comm, 1).unwrap(), buf);
/// }).expect_all();
/// ```
pub struct Replicator<'a> {
    cfg: DumpConfig,
    cluster: &'a Cluster,
    hasher: &'a (dyn ChunkHasher + Sync),
    tracing: Option<bool>,
    retry: RetryPolicy,
    heal: HealOptions,
    session: Option<SessionId>,
}

impl Drop for Replicator<'_> {
    fn drop(&mut self) {
        // Release the label so it can be claimed again; the SessionId
        // itself is never reused (see `Cluster::begin_session`).
        if let Some(id) = self.session {
            self.cluster.end_session(id);
        }
    }
}

impl std::fmt::Debug for Replicator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replicator")
            .field("cfg", &self.cfg)
            .field("tracing", &self.tracing)
            .field("retry", &self.retry)
            .field("session", &self.session)
            .finish_non_exhaustive() // cluster/hasher carry no useful Debug
    }
}

impl<'a> Replicator<'a> {
    /// Start building a session for `strategy`, from the paper-faithful
    /// defaults (`K = 3`, 4 KiB chunks, `F = 2^17`, shuffle for
    /// `coll-dedup`).
    pub fn builder(strategy: Strategy) -> ReplicatorBuilder<'a> {
        ReplicatorBuilder {
            cfg: DumpConfig::paper_defaults(strategy),
            cluster: None,
            hasher: &Sha1ChunkHasher,
            tracing: None,
            retry: RetryPolicy::default_restore(),
            heal: HealOptions::default(),
            session_label: None,
        }
    }

    /// The validated configuration this session runs with.
    pub fn config(&self) -> &DumpConfig {
        &self.cfg
    }

    /// The session's strategy.
    pub fn strategy(&self) -> Strategy {
        self.cfg.strategy
    }

    /// The cluster this session dumps into.
    pub fn cluster(&self) -> &'a Cluster {
        self.cluster
    }

    /// The session id this replicator operates under:
    /// [`SessionId::DEFAULT`] unless the builder registered a
    /// [`ReplicatorBuilder::session_label`].
    pub fn session_id(&self) -> SessionId {
        self.session.unwrap_or(SessionId::DEFAULT)
    }

    /// Fold the session into `dump_id`: labeled sessions address their
    /// own generation space ([`SessionId::scope`]); the default session
    /// keeps raw ids, so unlabeled callers see the historical layout.
    fn scoped_id(&self, dump_id: DumpId) -> DumpId {
        self.session_id().scope(dump_id)
    }

    fn apply_session(&self, comm: &mut Comm) {
        if let Some(on) = self.tracing {
            comm.set_tracing(on);
        }
        comm.set_tag_namespace(self.session_id().as_u16());
    }

    /// Collective `DUMP_OUTPUT(buffer, K)`: dump `data` as generation
    /// `dump_id`. Must be called by every rank of the world.
    ///
    /// Accepts anything convertible to a [`Chunk`]: a `Vec<u8>`, a
    /// [`bytes::Bytes`] or an existing [`Chunk`] enters the zero-copy hot
    /// path (the dumped chunks are slices of the buffer you pass); a
    /// borrowed `&[u8]` / `&Vec<u8>` still works but pays one recorded
    /// copy at the boundary.
    pub fn dump(
        &self,
        comm: &mut Comm,
        dump_id: DumpId,
        data: impl Into<Chunk>,
    ) -> Result<DumpStats, ReplError> {
        self.apply_session(comm);
        let ctx = DumpContext {
            cluster: self.cluster,
            hasher: self.hasher,
            dump_id: self.scoped_id(dump_id),
        };
        dump_impl(comm, &ctx, &data.into(), &self.cfg)
            .map(|mut stats| {
                stats.session = self.session_id();
                stats
            })
            .map_err(ReplError::from)
    }

    /// Collective restore of this rank's buffer from generation `dump_id`.
    /// Must be called by every rank of the world.
    ///
    /// Returns the reassembled buffer as a [`Chunk`]; callers that need a
    /// `Vec<u8>` can use `Vec::from(chunk)` (one recorded copy).
    pub fn restore(&self, comm: &mut Comm, dump_id: DumpId) -> Result<Chunk, ReplError> {
        self.apply_session(comm);
        let ctx = DumpContext {
            cluster: self.cluster,
            hasher: self.hasher,
            dump_id: self.scoped_id(dump_id),
        };
        restore_impl(comm, &ctx, self.cfg.strategy, &self.retry).map_err(ReplError::from)
    }

    /// Collective repair of generation `dump_id`: scrub + quarantine, plan
    /// against the live-copy census, re-replicate every under-replicated
    /// chunk, rebuild every missing erasure-coded shard on its home node,
    /// and re-materialize lost manifests/blobs until everything the dump
    /// still references has `min(K, live_nodes)` intact copies (or a full
    /// `k+m` stripe). Under an `Rs`/`Auto` policy the replica target is the
    /// same `m+1` floor the dump's pipeline used, so repair converges to
    /// exactly the dump's redundancy, not past it. Idempotent — re-running
    /// after a crash converges. Must be called by every rank of the world
    /// (a revived node's ranks included).
    pub fn repair(&self, comm: &mut Comm, dump_id: DumpId) -> Result<RepairStats, ReplError> {
        self.apply_session(comm);
        let ctx = DumpContext {
            cluster: self.cluster,
            hasher: self.hasher,
            dump_id: self.scoped_id(dump_id),
        };
        let k = self.cfg.policy.hmerge_k(self.cfg.replication);
        repair_impl(comm, &ctx, self.cfg.strategy, k).map_err(ReplError::from)
    }

    /// Collective incremental heal of generation `dump_id`, from the
    /// beginning: equivalent to [`Replicator::repair`] in outcome, but
    /// executed as a sequence of bounded, rate-limited steps (see
    /// [`ReplicatorBuilder::heal_options`]) that other collectives can
    /// interleave with. Must be called by every rank of the world.
    pub fn heal(&self, comm: &mut Comm, dump_id: DumpId) -> Result<HealReport, ReplError> {
        let mut cursor = HealCursor::new(self.scoped_id(dump_id));
        self.heal_from(comm, &mut cursor)
    }

    /// Collective incremental heal resumed from `cursor` — typically a
    /// [`HealCursor`] decoded from bytes a killed healer persisted.
    /// Drives the cursor to [`crate::HealStage::Done`]; the report
    /// covers the steps this call drove. Must be called by every rank
    /// of the world with an identical cursor.
    pub fn heal_from(
        &self,
        comm: &mut Comm,
        cursor: &mut HealCursor,
    ) -> Result<HealReport, ReplError> {
        self.apply_session(comm);
        let ctx = DumpContext {
            cluster: self.cluster,
            hasher: self.hasher,
            dump_id: cursor.dump_id,
        };
        let k = self.cfg.policy.hmerge_k(self.cfg.replication);
        heal_impl(comm, &ctx, self.cfg.strategy, k, &self.heal, cursor)
            .map(|mut report| {
                report.session = self.session_id();
                report
            })
            .map_err(ReplError::from)
    }

    /// Advance one bounded healing step, folding what it did into
    /// `report`. Returns `true` while steps remain — the operator's
    /// loop shape for healing under live traffic, pausing, persisting
    /// the cursor, or yielding the world between steps. Each call
    /// grants the rate limiter's burst anew; for a sustained bound over
    /// a whole heal prefer [`Replicator::heal_from`]. Collective.
    pub fn heal_step(
        &self,
        comm: &mut Comm,
        cursor: &mut HealCursor,
        report: &mut HealReport,
    ) -> Result<bool, ReplError> {
        self.apply_session(comm);
        let ctx = DumpContext {
            cluster: self.cluster,
            hasher: self.hasher,
            dump_id: cursor.dump_id,
        };
        let k = self.cfg.policy.hmerge_k(self.cfg.replication);
        let mut bucket = self.heal.rate.map(TokenBucket::new);
        report.session = self.session_id();
        heal_step_impl(
            comm,
            &ctx,
            self.cfg.strategy,
            k,
            &self.heal,
            &mut bucket,
            cursor,
            report,
        )?;
        Ok(!cursor.is_done())
    }

    /// Collective integrity scrub: every live node is re-hashed and
    /// cross-checked by its leader rank, stripe parity is verified
    /// cluster-wide, and all ranks return the identical merged
    /// cluster-wide [`ScrubReport`]. Read-only — use
    /// [`Replicator::repair`] to act on what it finds.
    pub fn scrub(&self, comm: &mut Comm) -> Result<ScrubReport, ReplError> {
        self.apply_session(comm);
        let ctx = DumpContext {
            cluster: self.cluster,
            hasher: self.hasher,
            dump_id: 0,
        };
        scrub_impl(comm, &ctx).map_err(ReplError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replidedup_hash::FnvChunkHasher;
    use replidedup_mpi::WorldConfig;
    use replidedup_storage::Placement;
    use std::error::Error as _;

    fn cluster(n: u32) -> Cluster {
        Cluster::new(Placement::one_per_node(n))
    }

    #[test]
    fn builder_rejects_invalid_configs_with_typed_errors() {
        let c = cluster(2);
        let err = |b: ReplicatorBuilder<'_>| b.build().err().unwrap();
        assert_eq!(
            err(Replicator::builder(Strategy::CollDedup)
                .cluster(&c)
                .replication(0)),
            ConfigError::ZeroReplication
        );
        assert_eq!(
            err(Replicator::builder(Strategy::CollDedup)
                .cluster(&c)
                .chunk_size(0)),
            ConfigError::ZeroChunkSize
        );
        assert_eq!(
            err(Replicator::builder(Strategy::CollDedup)
                .cluster(&c)
                .f_threshold(0)),
            ConfigError::ZeroFThreshold
        );
        assert_eq!(
            err(Replicator::builder(Strategy::CollDedup)),
            ConfigError::MissingCluster
        );
    }

    #[test]
    fn builder_absorbs_config_fields() {
        let c = cluster(2);
        let repl = Replicator::builder(Strategy::LocalDedup)
            .cluster(&c)
            .hasher(&FnvChunkHasher)
            .replication(2)
            .chunk_size(128)
            .f_threshold(64)
            .shuffle(true)
            .parallel_hash(true)
            .build()
            .unwrap();
        let cfg = repl.config();
        assert_eq!(cfg.replication, 2);
        assert_eq!(cfg.chunk_size, 128);
        assert_eq!(cfg.f_threshold, 64);
        assert!(cfg.shuffle);
        assert!(cfg.parallel_hash);
        assert_eq!(repl.strategy(), Strategy::LocalDedup);
    }

    #[test]
    fn session_round_trips_every_strategy() {
        for strategy in [Strategy::NoDedup, Strategy::LocalDedup, Strategy::CollDedup] {
            let c = cluster(3);
            let repl = Replicator::builder(strategy)
                .cluster(&c)
                .replication(2)
                .chunk_size(64)
                .build()
                .unwrap();
            let out = WorldConfig::default()
                .launch(3, |comm| {
                    let buf = vec![comm.rank() as u8 + 1; 300];
                    repl.dump(comm, 7, &buf).unwrap();
                    (repl.restore(comm, 7).unwrap(), buf)
                })
                .expect_all();
            for (restored, original) in out.results {
                assert_eq!(restored, original, "{}", strategy.label());
            }
        }
    }

    #[test]
    fn one_session_many_dumps() {
        let c = cluster(2);
        let repl = Replicator::builder(Strategy::CollDedup)
            .cluster(&c)
            .replication(2)
            .chunk_size(32)
            .build()
            .unwrap();
        let out = WorldConfig::default()
            .launch(2, |comm| {
                for gen in 1..=3u64 {
                    let buf = vec![(comm.rank() as u8) ^ (gen as u8); 128];
                    repl.dump(comm, gen, &buf).unwrap();
                }
                repl.restore(comm, 2).unwrap()
            })
            .expect_all();
        assert_eq!(out.results[0], vec![2u8; 128]);
        assert_eq!(out.results[1], vec![1u8 ^ 2; 128]);
    }

    #[test]
    fn repl_error_chains_to_source() {
        let e = ReplError::Dump(DumpError::Config(ConfigError::ZeroChunkSize));
        let dump_err = e.source().unwrap();
        assert!(dump_err.to_string().contains("chunk_size"));
        let config_err = dump_err.source().unwrap();
        assert!(config_err.downcast_ref::<ConfigError>().is_some());
        let e = ReplError::Restore(RestoreError::ManifestLost { rank: 3 });
        assert!(e.to_string().contains("rank 3"));
    }

    #[test]
    fn duplicate_session_labels_are_rejected_until_dropped() {
        let c = cluster(2);
        let build = |label: &str| {
            Replicator::builder(Strategy::CollDedup)
                .cluster(&c)
                .replication(2)
                .chunk_size(64)
                .session_label(label)
                .build()
        };
        let a = build("app-a").unwrap();
        let id_a = a.session_id();
        assert_ne!(id_a, SessionId::DEFAULT);
        assert_eq!(
            build("app-a").err().unwrap(),
            ConfigError::DuplicateSession {
                label: "app-a".into()
            }
        );
        let b = build("app-b").unwrap();
        assert_ne!(b.session_id(), id_a);
        drop(a);
        // The label frees on drop, but the id is never reused.
        let a2 = build("app-a").unwrap();
        assert_ne!(a2.session_id(), id_a);
        assert_ne!(a2.session_id(), b.session_id());
    }

    #[test]
    fn labeled_sessions_partition_generations_and_stamp_stats() {
        let c = cluster(2);
        let mk = |label: &str| {
            Replicator::builder(Strategy::CollDedup)
                .cluster(&c)
                .replication(2)
                .chunk_size(32)
                .session_label(label)
                .build()
                .unwrap()
        };
        let a = mk("writer-a");
        let b = mk("writer-b");
        // The same user-facing dump id in both sessions, different data.
        let out = WorldConfig::default()
            .launch(2, |comm| {
                let buf_a = vec![0xAAu8 ^ comm.rank() as u8; 128];
                let buf_b = vec![0xBBu8 ^ comm.rank() as u8; 128];
                let sa = a.dump(comm, 1, &buf_a).unwrap();
                let sb = b.dump(comm, 1, &buf_b).unwrap();
                assert_eq!(sa.session, a.session_id());
                assert_eq!(sb.session, b.session_id());
                let ra = Vec::from(a.restore(comm, 1).unwrap());
                let rb = Vec::from(b.restore(comm, 1).unwrap());
                (ra == buf_a, rb == buf_b)
            })
            .expect_all();
        assert!(out.results.iter().all(|&(ra, rb)| ra && rb));
    }

    #[test]
    fn default_session_keeps_raw_dump_ids() {
        let c = cluster(2);
        let repl = Replicator::builder(Strategy::LocalDedup)
            .cluster(&c)
            .replication(2)
            .chunk_size(64)
            .build()
            .unwrap();
        assert_eq!(repl.session_id(), SessionId::DEFAULT);
        assert_eq!(repl.scoped_id(42), 42);
    }

    #[test]
    fn session_tracing_override_enables_recorder() {
        let c = cluster(2);
        let repl = Replicator::builder(Strategy::CollDedup)
            .cluster(&c)
            .replication(2)
            .chunk_size(64)
            .tracing(true)
            .build()
            .unwrap();
        let out = WorldConfig::default()
            .launch(2, |comm| {
                repl.dump(comm, 1, &[7u8; 128]).unwrap();
                comm.take_trace_events().len()
            })
            .expect_all();
        assert!(
            out.results.iter().all(|&n| n > 0),
            "tracing(true) must record events"
        );
    }
}
