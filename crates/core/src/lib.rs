//! `replidedup-core` — dedup-aware collective replication.
//!
//! Rust reproduction of Bogdan Nicolae, *"Leveraging Naturally Distributed
//! Data Redundancy to Reduce Collective I/O Replication Overhead"*
//! (IPDPS 2015). The library exposes the paper's collective I/O write
//! primitive `DUMP_OUTPUT(buffer, K)` ([`dump_output`]) plus the restore
//! collective ([`restore_output`]) and implements all four design
//! principles of Section III:
//!
//! 1. collective interprocess deduplication ([`local`], [`global`]),
//! 2. load balancing via uniform rank assignment (inside
//!    [`GlobalView::merge`]),
//! 3. load-aware partner selection ([`shuffle`], Algorithm 2),
//! 4. single-sided communication planning ([`offsets`], Algorithm 3).
//!
//! The three evaluation settings (`no-dedup`, `local-dedup`, `coll-dedup`)
//! are selected by [`Strategy`]; the `coll-no-shuffle` ablation is
//! [`DumpConfig::with_shuffle`]`(false)`.
//!
//! # Example
//!
//! ```
//! use replidedup_core::{dump_output, restore_output, DumpConfig, DumpContext, Strategy};
//! use replidedup_hash::Sha1ChunkHasher;
//! use replidedup_mpi::World;
//! use replidedup_storage::{Cluster, Placement};
//!
//! let cluster = Cluster::new(Placement::one_per_node(4));
//! let cfg = DumpConfig::paper_defaults(Strategy::CollDedup)
//!     .with_replication(3)
//!     .with_chunk_size(64);
//! let out = World::run(4, |comm| {
//!     let ctx = DumpContext { cluster: &cluster, hasher: &Sha1ChunkHasher, dump_id: 1 };
//!     let buf = vec![comm.rank() as u8; 256];
//!     let stats = dump_output(comm, &ctx, &buf, &cfg).unwrap();
//!     let restored = restore_output(comm, &ctx, Strategy::CollDedup).unwrap();
//!     assert_eq!(restored, buf);
//!     stats
//! });
//! assert!(out.results.iter().all(|s| s.k == 3));
//! ```

pub mod config;
pub mod dump;
pub mod exchange;
pub mod global;
pub mod local;
pub mod offsets;
pub mod plan;
pub mod restore;
pub mod shuffle;
pub mod stats;

pub use config::{DumpConfig, Strategy};
pub use dump::{dump_output, DumpContext, DumpError};
pub use global::{reduce_global_view, GlobalEntry, GlobalView};
pub use local::LocalIndex;
pub use offsets::{window_plan, WindowPlan};
pub use plan::{plan_chunks, ChunkPlan};
pub use restore::{restore_output, RestoreError};
pub use shuffle::{identity_shuffle, rank_shuffle};
pub use stats::{DumpStats, ReductionStats, WorldDumpStats};
