//! `replidedup-core` — dedup-aware collective replication.
//!
//! Rust reproduction of Bogdan Nicolae, *"Leveraging Naturally Distributed
//! Data Redundancy to Reduce Collective I/O Replication Overhead"*
//! (IPDPS 2015). The library exposes the paper's collective I/O write
//! primitive `DUMP_OUTPUT(buffer, K)` plus the restore collective (both
//! driven through the [`Replicator`] session) and implements all four
//! design principles of Section III:
//!
//! 1. collective interprocess deduplication ([`local`], [`global`]),
//! 2. load balancing via uniform rank assignment (inside
//!    [`GlobalView::merge`]),
//! 3. load-aware partner selection ([`shuffle`], Algorithm 2),
//! 4. single-sided communication planning ([`offsets`], Algorithm 3).
//!
//! The three evaluation settings (`no-dedup`, `local-dedup`, `coll-dedup`)
//! are selected by [`Strategy`]; the `coll-no-shuffle` ablation is
//! [`ReplicatorBuilder::shuffle`]`(false)`.
//!
//! # Example
//!
//! The public entry point is the [`Replicator`] session: build it once
//! (validation happens at [`ReplicatorBuilder::build`]), then drive any
//! number of dump/restore collectives:
//!
//! ```
//! use replidedup_core::{Replicator, Strategy};
//! use replidedup_mpi::WorldConfig;
//! use replidedup_storage::{Cluster, Placement};
//!
//! let cluster = Cluster::new(Placement::one_per_node(4));
//! let repl = Replicator::builder(Strategy::CollDedup)
//!     .cluster(&cluster)
//!     .replication(3)
//!     .chunk_size(64)
//!     .build()
//!     .expect("valid config");
//! let out = WorldConfig::default().launch(4, |comm| {
//!     let buf = vec![comm.rank() as u8; 256];
//!     let stats = repl.dump(comm, 1, &buf).unwrap();
//!     let restored = repl.restore(comm, 1).unwrap();
//!     assert_eq!(restored, buf);
//!     stats
//! }).expect_all();
//! assert!(out.results.iter().all(|s| s.k == 3));
//! ```

pub mod config;
pub mod dump;
pub mod exchange;
pub mod global;
pub mod heal;
pub mod local;
pub mod offsets;
pub mod plan;
pub mod repair;
pub mod restore;
pub mod retry;
pub mod session;
pub mod shuffle;
pub mod stats;

pub use config::{ConfigError, CopyMode, DumpConfig, RedundancyPolicy, Strategy};
pub use dump::{DumpContext, DumpError, DUMP_PHASES};
pub use global::{reduce_global_view, try_reduce_global_view, GlobalEntry, GlobalView};
pub use heal::{
    HealCursor, HealOptions, HealReport, HealStage, RateLimit, TokenBucket, HEAL_PHASES,
};
pub use local::LocalIndex;
pub use offsets::{window_plan, WindowPlan};
pub use plan::{plan_chunks, ChunkPlan};
pub use repair::{RepairError, RepairStats, REPAIR_PHASES};
pub use replidedup_hash::{ChunkerKind, GearParams, RabinParams};
pub use replidedup_storage::SessionId;
pub use restore::RestoreError;
pub use retry::{Backoff, RetryPolicy};
pub use session::{ReplError, Replicator, ReplicatorBuilder};
pub use shuffle::{identity_shuffle, rank_shuffle};
pub use stats::{DumpStats, ReductionStats, WorldDumpStats};
