//! `DUMP_OUTPUT(buffer, K)` — the paper's collective I/O write primitive.
//!
//! All ranks of a [`replidedup_mpi::World`] enter the dump simultaneously
//! (it is a synchronization point) via `Replicator::dump`. Depending on [`Strategy`] the call runs:
//!
//! * `no-dedup` — raw buffer to local storage, all chunks to `K-1`
//!   partners via the single-sided plan;
//! * `local-dedup` — phase-one dedup, locally unique chunks stored and
//!   replicated to `K-1` partners;
//! * `coll-dedup` — the full pipeline of Algorithm 1: local dedup →
//!   `ALLREDUCE(HMERGE)` → Load computation → load allgather →
//!   `RANK_SHUFFLE` → `CALC_OFF` → one-sided exchange → local commit.
//!
//! Every strategy shares the same exchange machinery (windows, records,
//! offsets), exactly as in the paper where the baselines also "make use of
//! the single sided communication planning strategy".

use bytes::Bytes;
use replidedup_buf::{record_copy, thread_bytes_copied, Chunk};
use replidedup_ec::{shard_nodes, RsCode};
use replidedup_hash::{chunk_ranges, ChunkHasher, ChunkRange, Fingerprint, FpHashSet};
use replidedup_mpi::wire::{FrameReader, FrameWriter, Wire};
use replidedup_mpi::{Comm, CommError, Tag};
use replidedup_storage::{Cluster, DumpId, Manifest, ShardMeta, StorageError, StripeKey};

use crate::config::{CopyMode, DumpConfig, Strategy};
use crate::exchange::{
    encode_record, parse_records, parse_records_zc, record_header, record_size, RECORD_HEADER,
};
use crate::global::{try_reduce_global_view, GlobalView};
use crate::local::LocalIndex;
use crate::offsets::window_plan;
use crate::plan::plan_chunks;
use crate::shuffle::{identity_shuffle, positions_of, rank_shuffle};
use crate::stats::{DumpStats, ReductionStats};

/// User-tag space of the dump/restore protocols.
pub(crate) const TAG_MANIFEST: Tag = 0x5250_0001;

/// Stripe-assembly shard fan-out (coded redundancy policies).
pub(crate) const TAG_STRIPE: Tag = 0x5250_0008;

/// The phases of Algorithm 1 as the dump pipeline traces them, in order.
/// These names are the fault-injection anchors: a
/// [`FaultTrigger::PhaseStart`](replidedup_mpi::FaultTrigger) /
/// [`FaultTrigger::PhaseEnd`](replidedup_mpi::FaultTrigger) naming one of
/// them fires at that boundary of the dump.
pub const DUMP_PHASES: [&str; 8] = [
    "local_dedup",
    "hmerge_reduce",
    "load_allgather",
    "rank_shuffle",
    "calc_off",
    "exchange",
    "commit",
    "stripe_assembly",
];

/// Everything a dump needs besides the buffer: where to store, how to hash,
/// which generation this is.
pub struct DumpContext<'a> {
    /// The cluster whose node-local devices receive the data.
    pub cluster: &'a Cluster,
    /// Chunk hash function (paper default: SHA-1).
    pub hasher: &'a (dyn ChunkHasher + Sync),
    /// Dump generation (checkpoint number).
    pub dump_id: DumpId,
}

/// Failures of a collective dump. The collective itself always runs to
/// completion on every rank (so no rank deadlocks); the error reports what
/// went wrong locally.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DumpError {
    /// Invalid configuration (same on all ranks — configs are SPMD).
    Config(crate::ConfigError),
    /// The local node's storage failed during commit.
    Storage(StorageError),
    /// The communication runtime failed in a way graceful degradation
    /// cannot absorb (a suspected deadlock or a torn-down world — *not* a
    /// plain rank death, which degrades the dump instead of failing it).
    Comm(CommError),
}

impl std::fmt::Display for DumpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DumpError::Config(e) => write!(f, "invalid dump config: {e}"),
            DumpError::Storage(e) => write!(f, "storage failure during dump: {e}"),
            DumpError::Comm(e) => write!(f, "communication failure during dump: {e}"),
        }
    }
}

impl std::error::Error for DumpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DumpError::Config(e) => Some(e),
            DumpError::Storage(e) => Some(e),
            DumpError::Comm(e) => Some(e),
        }
    }
}

impl From<StorageError> for DumpError {
    fn from(e: StorageError) -> Self {
        DumpError::Storage(e)
    }
}

impl From<crate::ConfigError> for DumpError {
    fn from(e: crate::ConfigError) -> Self {
        DumpError::Config(e)
    }
}

pub(crate) fn dump_impl(
    comm: &mut Comm,
    ctx: &DumpContext<'_>,
    data: &Chunk,
    cfg: &DumpConfig,
) -> Result<DumpStats, DumpError> {
    cfg.validate()?;
    let buf: &[u8] = data;
    let copied_before = thread_bytes_copied();
    let me = comm.rank();
    let n = comm.size();
    // The pipeline's copy target: `K` under replication, `m + 1` under
    // `Rs` (naturally duplicated chunks keep exactly enough natural
    // copies to match the stripe tolerance), the larger of the two under
    // `Auto` — always clamped to the world size.
    let k = cfg.policy.hmerge_k(cfg.replication).min(n);
    let mut stats = DumpStats {
        rank: me,
        k,
        buffer_bytes: buf.len() as u64,
        ..Default::default()
    };
    // Defer storage errors so the collective completes on every rank.
    let mut storage_err: Option<StorageError> = None;

    comm.tracer()
        .gauge_bytes("dump_buffer_bytes", buf.len() as u64);

    match dump_pipeline(comm, ctx, data, cfg, k, &mut stats, &mut storage_err) {
        Ok(()) => {}
        Err(CommError::RankFailed { .. }) => {
            // A peer died mid-collective. The error may have unwound from
            // inside a traced phase; rebalance the span stack, then finish
            // through the communication-free degraded commit so this
            // rank's data still reaches stable storage.
            comm.tracer().close_open_spans();
            degraded_commit(comm, ctx, data, cfg, &mut stats, &mut storage_err);
        }
        Err(CommError::DeadlockSuspected { .. }) if !comm.failed_ranks().is_empty() => {
            // A point-to-point step timed out while some rank is known
            // dead: a survivor on the other end observed the death first
            // and already fell back to its degraded commit, so its sends
            // will never come. Collateral of the failure, not a protocol
            // bug — degrade like a direct RankFailed.
            comm.tracer().close_open_spans();
            degraded_commit(comm, ctx, data, cfg, &mut stats, &mut storage_err);
        }
        Err(e) => {
            // Deadlock suspicion with every rank alive / torn-down world:
            // nothing sane to degrade to — surface the runtime failure.
            comm.tracer().close_open_spans();
            return Err(DumpError::Comm(e));
        }
    }
    stats.bytes_copied = thread_bytes_copied() - copied_before;
    comm.tracer()
        .counter("alloc_bytes_copied", stats.bytes_copied);
    match storage_err {
        Some(e) => Err(e.into()),
        None => Ok(stats),
    }
}

/// The fault-aware body of Algorithm 1: every phase boundary is a
/// [`DUMP_PHASES`] anchor and every collective/RMA step is the fallible
/// `try_*` variant, so a rank death surfaces here as `Err(CommError)`
/// instead of a panic or a hang.
fn dump_pipeline(
    comm: &mut Comm,
    ctx: &DumpContext<'_>,
    data: &Chunk,
    cfg: &DumpConfig,
    k: u32,
    stats: &mut DumpStats,
    storage_err: &mut Option<StorageError>,
) -> Result<(), CommError> {
    let buf: &[u8] = data;
    let me = comm.rank();
    let n = comm.size();
    let node = ctx.cluster.node_of(me);
    let chunk_size = cfg.chunk_size;
    let mut record_storage = |r: Result<u64, StorageError>, written: &mut u64| match r {
        Ok(bytes) => *written += bytes,
        Err(e) => *storage_err = storage_err.take().or(Some(e)),
    };

    // ---- Phase 1+2: dedup (strategy dependent) -------------------------
    // `keep_indices` / `send_indices` are chunk indices into `buf`;
    // `fps_of` yields the record fingerprint for a chunk index.
    let local: Option<LocalIndex>;
    let view: Option<GlobalView>;
    let keep_indices: Vec<u32>;
    let send_indices: Vec<Vec<u32>>;
    // Transport framing for no-dedup: fixed-size ranges, no hashing. The
    // dedup strategies carry their (possibly variable-length) geometry in
    // the `LocalIndex` instead.
    let transport_ranges: Vec<ChunkRange>;
    // Redundancy-policy classification (coded policies only): chunks whose
    // redundancy comes from a Reed-Solomon stripe instead of replication.
    // `stripe_fps` is the subset *this* rank assembles; `blob_coded` marks
    // a no-dedup buffer that is striped whole instead of replicated.
    let rs = cfg.policy.rs_params();
    let mut coded_fps = FpHashSet::default();
    let mut stripe_fps: Vec<Fingerprint> = Vec::new();
    let mut blob_coded = false;
    comm.enter_phase("local_dedup");
    match cfg.strategy {
        Strategy::NoDedup => {
            // No hashing at all: the raw buffer is the unit of storage.
            local = None;
            view = None;
            transport_ranges = chunk_ranges(buf.len(), chunk_size);
            stats.chunks_total = transport_ranges.len() as u64;
            let all: Vec<u32> = (0..stats.chunks_total as u32).collect();
            keep_indices = all.clone();
            // A coded blob skips the replication exchange entirely: its
            // redundancy is the stripe assembled after commit.
            blob_coded = !buf.is_empty() && cfg.policy.codes_chunk(buf.len(), 1);
            send_indices = if blob_coded {
                stats.chunks_coded = stats.chunks_total;
                vec![Vec::new(); (k - 1) as usize]
            } else {
                vec![all; (k - 1) as usize]
            };
            stats.chunks_locally_unique = stats.chunks_total;
            stats.bytes_locally_unique = buf.len() as u64;
            stats.chunks_kept = stats.chunks_total;
            stats.chunks_uncovered = stats.chunks_total;
            stats.bytes_uncovered = buf.len() as u64;
            comm.exit_phase("local_dedup");
        }
        Strategy::LocalDedup | Strategy::CollDedup => {
            let chunker = cfg.chunker.resolve(chunk_size);
            let idx = LocalIndex::build(ctx.hasher, buf, &chunker, cfg.parallel_hash);
            transport_ranges = Vec::new();
            stats.chunks_total = idx.chunk_count() as u64;
            stats.bytes_hashed = buf.len() as u64;
            stats.chunks_locally_unique = idx.unique_count() as u64;
            stats.bytes_locally_unique = idx.unique_bytes(buf.len());
            comm.tracer()
                .counter("chunks_locally_unique", stats.chunks_locally_unique);
            comm.exit_phase("local_dedup");

            let g = if cfg.strategy == Strategy::CollDedup {
                comm.enter_phase("hmerge_reduce");
                let leaf = GlobalView::from_local(me, idx.unique.keys().copied(), cfg.f_threshold);
                let coll_before = comm.traffic().coll_sent;
                let g = try_reduce_global_view(comm, leaf, k, cfg.f_threshold)?;
                let traffic = comm.traffic().coll_sent - coll_before;
                comm.exit_phase("hmerge_reduce");
                comm.tracer().counter("view_entries", g.len() as u64);
                comm.tracer().gauge_bytes("hmerge_traffic_bytes", traffic);
                stats.reduction = Some(ReductionStats {
                    view_entries: g.len() as u64,
                    view_bytes: g.wire_size() as u64,
                    designations: g
                        .entries
                        .iter()
                        .filter(|e| e.ranks.binary_search(&me).is_ok())
                        .count() as u64,
                    traffic_bytes: traffic,
                });
                g
            } else {
                GlobalView::default()
            };

            let mut plan = plan_chunks(me, &idx, &g, k);
            // Policy classification with dedup credit: a chunk whose view
            // entry already designates `m + 1` natural holders has its
            // distributed copies credited against stripe redundancy — it
            // stays replicated and generates no parity. The rest of the
            // coded set leaves the replication exchange; exactly one
            // designated rank (the lowest) assembles its stripe, and every
            // holder stripes an uncovered chunk (shard puts are
            // idempotent and content-addressed, so concurrent assemblies
            // of the same chunk converge).
            if rs.is_some() {
                for (fp, c) in &idx.unique {
                    let len = idx.chunk_range(c.first_index).len();
                    let entry = g.lookup(fp);
                    let freq = entry.map_or(1, |e| e.ranks.len());
                    if cfg.policy.codes_chunk(len, freq) {
                        coded_fps.insert(*fp);
                        let striper = entry.and_then(|e| e.ranks.first()).copied().unwrap_or(me);
                        if striper == me {
                            stripe_fps.push(*fp);
                        }
                    }
                }
                stripe_fps.sort_unstable();
                plan.keep.retain(|fp| !coded_fps.contains(fp));
                for list in &mut plan.send_lists {
                    list.retain(|fp| !coded_fps.contains(fp));
                }
                stats.chunks_coded = coded_fps.len() as u64;
            }
            stats.chunks_kept = plan.keep.len() as u64;
            stats.chunks_discarded = plan.discarded.len() as u64;
            let covered = |fp: &Fingerprint| g.lookup(fp).is_some();
            stats.chunks_uncovered = idx.unique.keys().filter(|fp| !covered(fp)).count() as u64;
            stats.bytes_uncovered = idx
                .unique
                .iter()
                .filter(|(fp, _)| !covered(fp))
                .map(|(_, c)| idx.chunk_range(c.first_index).len() as u64)
                .sum();

            let to_idx = |fp: &Fingerprint| idx.unique[fp].first_index;
            keep_indices = plan.keep.iter().map(to_idx).collect();
            send_indices = plan
                .send_lists
                .iter()
                .map(|l| l.iter().map(to_idx).collect())
                .collect();
            local = Some(idx);
            view = Some(g);
        }
    }
    stats.chunks_sent = send_indices.iter().map(|l| l.len() as u64).collect();
    comm.tracer()
        .counter("dump_chunks_total", stats.chunks_total);

    // ---- Load allgather + partner selection ----------------------------
    let mut load: Vec<u64> = Vec::with_capacity(k as usize);
    load.push(keep_indices.len() as u64);
    load.extend(send_indices.iter().map(|l| l.len() as u64));
    comm.enter_phase("load_allgather");
    let send_load: Vec<Vec<u64>> = comm.try_allgather(load)?;
    comm.exit_phase("load_allgather");
    comm.enter_phase("rank_shuffle");
    let shuffle = if cfg.shuffle {
        rank_shuffle(&send_load, k)
    } else {
        identity_shuffle(n)
    };
    let positions = positions_of(&shuffle);
    comm.exit_phase("rank_shuffle");
    comm.enter_phase("calc_off");
    let wplan = window_plan(&shuffle, &send_load, k);
    comm.exit_phase("calc_off");

    // ---- Single-sided exchange ------------------------------------------
    comm.enter_phase("exchange");
    // Cells are sized for the largest chunk the configured chunker can
    // emit; the plan stays in record counts, so variable-length chunks
    // need no offset changes — their true length rides in each header.
    let payload_cap = cfg.record_payload_cap();
    let cell = record_size(payload_cap);
    let win = comm.try_win_create(wplan.recv_counts[me as usize] as usize * cell)?;
    let chunk_range = |i: u32| match &local {
        Some(idx) => idx.chunk_range(i),
        None => {
            let r = transport_ranges[i as usize];
            r.start..r.end
        }
    };
    let chunk_bytes = |i: u32| &buf[chunk_range(i)];
    let fp_of = |i: u32| match &local {
        Some(idx) => idx.in_order[i as usize],
        // no-dedup records carry no meaningful fingerprint (never hashed).
        None => Fingerprint::ZERO,
    };
    for (jm1, list) in send_indices.iter().enumerate() {
        if list.is_empty() {
            continue;
        }
        let target = wplan.partners[me as usize][jm1];
        let base = wplan.send_offsets[me as usize][jm1] as usize * cell;
        match cfg.copy_mode {
            CopyMode::ZeroCopy => {
                // Scatter-gather: one vectored put per record, header from
                // the stack, payload straight out of the application
                // buffer. The cell's padding gap is never written (windows
                // are zero-initialised), so each put moves exactly
                // header + payload bytes.
                for (r, &i) in list.iter().enumerate() {
                    let body = chunk_bytes(i);
                    let header = record_header(&fp_of(i), body.len(), payload_cap);
                    stats.bytes_sent_replication += (RECORD_HEADER + body.len()) as u64;
                    win.try_put_vectored(target, base + r * cell, &[&header, body])?;
                }
            }
            CopyMode::Staged => {
                // Baseline: stage full padded cells into a per-target
                // buffer, then put the whole region. `encode_record`
                // charges the staging memcpy to the copy accounting.
                let mut payload = Vec::with_capacity(list.len() * cell);
                for &i in list {
                    encode_record(&mut payload, &fp_of(i), chunk_bytes(i), payload_cap);
                }
                stats.bytes_sent_replication += payload.len() as u64;
                win.try_put(target, base, &payload)?;
            }
        }
    }
    win.try_fence(comm)?;
    comm.exit_phase("exchange");
    comm.tracer()
        .gauge_bytes("bytes_sent_replication", stats.bytes_sent_replication);

    // ---- Commit: own data -----------------------------------------------
    comm.enter_phase("commit");
    match cfg.strategy {
        Strategy::NoDedup => {
            if !blob_coded {
                let blob = match cfg.copy_mode {
                    // Refcount bump: the stored blob IS the app buffer.
                    CopyMode::ZeroCopy => data.as_bytes().clone(),
                    CopyMode::Staged => Chunk::copy_from_slice(buf).into_bytes(),
                };
                let len = blob.len() as u64;
                record_storage(
                    ctx.cluster
                        .put_blob(node, me, ctx.dump_id, blob)
                        .map(|()| len),
                    &mut stats.bytes_written_local,
                );
            }
            // A coded blob stores no full copy anywhere: its data shards
            // (payload slices) and parity land in the stripe phase below.
        }
        Strategy::LocalDedup | Strategy::CollDedup => {
            let idx = local
                .as_ref()
                .expect("dedup strategies build a local index");
            for &i in &keep_indices {
                let fp = idx.in_order[i as usize];
                let payload = match cfg.copy_mode {
                    // Zero-copy slice of the application buffer.
                    CopyMode::ZeroCopy => data.slice(chunk_range(i)).into_bytes(),
                    CopyMode::Staged => Chunk::copy_from_slice(chunk_bytes(i)).into_bytes(),
                };
                let len = payload.len() as u64;
                record_storage(
                    ctx.cluster
                        .put_chunk(node, fp, payload)
                        .map(|new| if new { len } else { 0 }),
                    &mut stats.bytes_written_local,
                );
            }
            // Stripe membership rides in the manifest: `coded` lists the
            // chunk positions whose redundancy is a stripe, so restore
            // knows reconstruction is worth attempting before declaring a
            // chunk lost. Strictly increasing by construction.
            let coded: Vec<u64> = idx
                .in_order
                .iter()
                .enumerate()
                .filter(|(_, fp)| coded_fps.contains(*fp))
                .map(|(i, _)| i as u64)
                .collect();
            let manifest = Manifest {
                owner_rank: me,
                dump_id: ctx.dump_id,
                total_len: buf.len() as u64,
                chunks: idx.in_order.clone(),
                chunk_lens: idx.chunk_lens(),
                rs: rs.filter(|_| !coded.is_empty()),
                coded,
            };
            record_storage(
                ctx.cluster.put_manifest(node, manifest.clone()).map(|()| 0),
                &mut stats.bytes_written_local,
            );
            // Replicate the manifest to the same partners as the data so a
            // failed node's recipe survives (restore-path extension; the
            // paper leaves restart implicit). Encode the fingerprint list
            // once and fan the same frozen buffer out to every partner —
            // re-encoding per partner copied the whole list K-1 times.
            let encoded = manifest.to_bytes();
            for &target in &wplan.partners[me as usize] {
                comm.try_send_bytes(target, TAG_MANIFEST, encoded.clone())?;
            }
        }
    }

    // ---- Commit: received replicas --------------------------------------
    let p = positions[me as usize] as usize;
    // Zero-copy mode steals the window's backing allocation after the
    // closing fence: every record parsed below is a sub-slice of it all the
    // way into storage. Staged mode borrows and lets `parse_records` copy
    // each payload out (charged to the copy accounting).
    let stolen: Option<Bytes> = match cfg.copy_mode {
        CopyMode::ZeroCopy => Some(win.take_local()),
        CopyMode::Staged => None,
    };
    let mut offset_records = 0u64;
    for d in 1..k as usize {
        let sender = shuffle[(p + n as usize - d) % n as usize];
        let count = send_load[sender as usize][d] as usize;
        if count == 0 {
            continue;
        }
        let start = offset_records as usize * cell;
        let records: Vec<(Fingerprint, Chunk)> = match &stolen {
            Some(window) => {
                let region = window.slice(start..start + count * cell);
                parse_records_zc(&region, payload_cap, count)
            }
            None => win.with_local(|window| {
                parse_records(&window[start..start + count * cell], payload_cap, count)
                    .map(|rs| rs.into_iter().map(|(fp, d)| (fp, Chunk::from(d))).collect())
            }),
        }
        .unwrap_or_else(|e| panic!("rank {me}: corrupt exchange region from {sender}: {e}"));
        stats.records_received += count as u64;
        stats.bytes_received_replication += match cfg.copy_mode {
            // Scatter-gather puts moved exactly header + payload per record.
            CopyMode::ZeroCopy => records
                .iter()
                .map(|(_, c)| (RECORD_HEADER + c.len()) as u64)
                .sum::<u64>(),
            // Staged puts moved whole padded cells.
            CopyMode::Staged => (count * cell) as u64,
        };
        match cfg.strategy {
            Strategy::NoDedup => {
                // Region payloads concatenate to the sender's raw buffer;
                // records interleave with headers in the window, so one
                // real gather copy is unavoidable even on the zero-copy
                // path.
                let mut blob = Vec::with_capacity(records.iter().map(|(_, c)| c.len()).sum());
                for (_, data) in &records {
                    blob.extend_from_slice(data);
                }
                record_copy(blob.len());
                let len = blob.len() as u64;
                record_storage(
                    ctx.cluster
                        .put_blob(node, sender, ctx.dump_id, Bytes::from(blob))
                        .map(|()| len),
                    &mut stats.bytes_written_local,
                );
            }
            Strategy::LocalDedup | Strategy::CollDedup => {
                for (fp, data) in records {
                    let len = data.len() as u64;
                    record_storage(
                        ctx.cluster
                            .put_chunk(node, fp, data.into_bytes())
                            .map(|new| if new { len } else { 0 }),
                        &mut stats.bytes_written_local,
                    );
                }
            }
        }
        offset_records += count as u64;
    }
    debug_assert_eq!(offset_records, wplan.recv_counts[me as usize]);

    // Receive partner manifests (dedup strategies).
    if cfg.strategy != Strategy::NoDedup {
        for d in 1..k as usize {
            let sender = shuffle[(p + n as usize - d) % n as usize];
            let m: Manifest = comm.try_recv_val(sender, TAG_MANIFEST)?;
            record_storage(
                ctx.cluster.put_manifest(node, m).map(|()| 0),
                &mut stats.bytes_written_local,
            );
        }
    }

    comm.try_barrier()?;
    comm.exit_phase("commit");

    // ---- Stripe assembly (coded policies) -------------------------------
    if let Some((rk, rm)) = rs {
        comm.enter_phase("stripe_assembly");
        let node_count = ctx.cluster.node_count();
        let code = RsCode::new(rk, rm).expect("geometry checked by DumpConfig::validate");
        // Payloads this rank stripes: its coded blob (no-dedup) or the
        // coded chunks it is the designated assembler for. Data shards are
        // zero-copy slices of the application buffer.
        let mut stripes: Vec<(StripeKey, Bytes)> = Vec::new();
        if blob_coded {
            stripes.push((
                StripeKey::Blob {
                    owner: me,
                    dump_id: ctx.dump_id,
                },
                data.as_bytes().clone(),
            ));
        }
        if let Some(idx) = &local {
            for fp in &stripe_fps {
                let first = idx.unique[fp].first_index;
                stripes.push((
                    StripeKey::Chunk(*fp),
                    data.slice(idx.chunk_range(first)).into_bytes(),
                ));
            }
        }
        stats.stripes_assembled = stripes.len() as u64;

        // Encode and bucket shards by home node (deterministic rotation
        // seeded by the stripe key — every rank re-derives the same
        // layout with no negotiation).
        let mut outbound: Vec<Vec<(StripeKey, ShardMeta, Bytes)>> =
            vec![Vec::new(); node_count as usize];
        for (key, payload) in &stripes {
            let shards = code.encode(payload);
            stats.parity_bytes += shards[rk as usize..]
                .iter()
                .map(|s| s.len() as u64)
                .sum::<u64>();
            let homes = shard_nodes(key.seed(), code.shards(), node_count);
            for (index, (shard, &home)) in shards.into_iter().zip(&homes).enumerate() {
                let meta = ShardMeta {
                    k: rk,
                    m: rm,
                    index: index as u8,
                    total_len: payload.len() as u64,
                };
                outbound[home as usize].push((*key, meta, shard));
            }
        }

        // Deterministic sends-then-receives over the existing wire
        // framing: every rank sends one (possibly empty) scatter-gather
        // frame to each node's leader; each leader then drains one frame
        // from every rank and commits the shards to its device.
        for nd in 0..node_count {
            let ranks = ctx.cluster.placement().ranks_on(nd, n);
            if ranks.is_empty() {
                continue;
            }
            let leader = ranks.start;
            let mut w = FrameWriter::new();
            w.put(&(outbound[nd as usize].len() as u64));
            for (key, meta, shard) in outbound[nd as usize].drain(..) {
                w.put(&key);
                w.put(&meta);
                stats.bytes_sent_stripes += shard.len() as u64;
                w.attach(shard);
            }
            comm.try_send_frame(leader, TAG_STRIPE, w.finish())?;
        }
        if ctx.cluster.placement().ranks_on(node, n).start == me {
            for r in 0..n {
                let mut reader = FrameReader::new(comm.try_recv_frame(r, TAG_STRIPE)?);
                let count: u64 = reader
                    .get()
                    .unwrap_or_else(|e| panic!("rank {me}: corrupt stripe frame from {r}: {e}"));
                for _ in 0..count {
                    let (key, meta, shard) = (|| -> replidedup_mpi::wire::WireResult<_> {
                        let key: StripeKey = reader.get()?;
                        let meta: ShardMeta = reader.get()?;
                        let shard = reader.take_payload()?;
                        Ok((key, meta, shard))
                    })()
                    .unwrap_or_else(|e| panic!("rank {me}: corrupt stripe frame from {r}: {e}"));
                    let len = shard.len() as u64;
                    record_storage(
                        ctx.cluster
                            .put_shard(node, key, meta, shard.into_bytes())
                            .map(|new| if new { len } else { 0 }),
                        &mut stats.bytes_written_local,
                    );
                }
            }
        }
        // The dump completes only when every shard reached its device.
        comm.try_barrier()?;
        comm.exit_phase("stripe_assembly");
    }
    comm.tracer()
        .gauge_bytes("bytes_written_local", stats.bytes_written_local);
    drop(view);
    Ok(())
}

/// Communication-free fallback after a mid-dump rank death: re-commit
/// *everything* this rank holds to its own node (an effective `K = 1` for
/// this generation), record the dead ranks as absent-at-dump-time, and mark
/// the statistics degraded.
///
/// The re-commit is idempotent — chunk stores are content-addressed and
/// manifest/blob puts overwrite — so it is safe regardless of how far the
/// pipeline got before failing.
fn degraded_commit(
    comm: &mut Comm,
    ctx: &DumpContext<'_>,
    data: &Chunk,
    cfg: &DumpConfig,
    stats: &mut DumpStats,
    storage_err: &mut Option<StorageError>,
) {
    let buf: &[u8] = data;
    let me = comm.rank();
    let node = ctx.cluster.node_of(me);
    let chunk_size = cfg.chunk_size;
    stats.degraded = true;
    stats.failed_ranks = comm.failed_ranks();
    comm.enter_phase("degraded_commit");
    let mut record_storage = |r: Result<u64, StorageError>, written: &mut u64| match r {
        Ok(bytes) => *written += bytes,
        Err(e) => *storage_err = storage_err.take().or(Some(e)),
    };
    match cfg.strategy {
        Strategy::NoDedup => {
            // Refcount bump: the degraded blob is still the app buffer.
            stats.chunks_total = buf.len().div_ceil(chunk_size) as u64;
            let blob = data.as_bytes().clone();
            let len = blob.len() as u64;
            record_storage(
                ctx.cluster
                    .put_blob(node, me, ctx.dump_id, blob)
                    .map(|()| len),
                &mut stats.bytes_written_local,
            );
        }
        Strategy::LocalDedup | Strategy::CollDedup => {
            // Re-derive the local index: hashing and chunking are pure, so
            // this is correct whether the pipeline died before or after
            // building (or partially committing) it.
            let chunker = cfg.chunker.resolve(chunk_size);
            let idx = LocalIndex::build(ctx.hasher, buf, &chunker, cfg.parallel_hash);
            stats.chunks_total = idx.chunk_count() as u64;
            stats.bytes_hashed = buf.len() as u64;
            stats.chunks_locally_unique = idx.unique_count() as u64;
            stats.bytes_locally_unique = idx.unique_bytes(buf.len());
            stats.chunks_kept = idx.unique_count() as u64;
            for (fp, c) in &idx.unique {
                let payload = data.slice(idx.chunk_range(c.first_index)).into_bytes();
                let len = payload.len() as u64;
                record_storage(
                    ctx.cluster
                        .put_chunk(node, *fp, payload)
                        .map(|new| if new { len } else { 0 }),
                    &mut stats.bytes_written_local,
                );
            }
            // Degraded dumps skip striping: the manifest claims full local
            // chunks (an effective `K = 1`), never stripe membership.
            let manifest = Manifest {
                owner_rank: me,
                dump_id: ctx.dump_id,
                total_len: buf.len() as u64,
                chunks: idx.in_order.clone(),
                chunk_lens: idx.chunk_lens(),
                rs: None,
                coded: vec![],
            };
            record_storage(
                ctx.cluster.put_manifest(node, manifest).map(|()| 0),
                &mut stats.bytes_written_local,
            );
        }
    }
    // Tombstone the dead ranks so restore can tell "absent at dump time"
    // from "replica holders later failed". Best effort: a down local node
    // already surfaced through the commit above.
    for &r in &stats.failed_ranks {
        ctx.cluster.mark_absent(node, r, ctx.dump_id).ok();
    }
    comm.exit_phase("degraded_commit");
    comm.tracer()
        .gauge_bytes("bytes_written_local", stats.bytes_written_local);
}

#[cfg(test)]
mod tests {
    use super::*;
    use replidedup_hash::Sha1ChunkHasher;
    use replidedup_mpi::WorldConfig;
    use replidedup_storage::Placement;

    fn run_dump(
        n: u32,
        strategy: Strategy,
        k: u32,
        mk_buf: impl Fn(u32) -> Vec<u8> + Sync,
    ) -> (Vec<DumpStats>, Cluster) {
        let cluster = Cluster::new(Placement::one_per_node(n));
        let cfg = DumpConfig::paper_defaults(strategy)
            .with_replication(k)
            .with_chunk_size(64)
            .with_f_threshold(1 << 12);
        let out = WorldConfig::default()
            .launch(n, |comm| {
                let ctx = DumpContext {
                    cluster: &cluster,
                    hasher: &Sha1ChunkHasher,
                    dump_id: 1,
                };
                let buf = mk_buf(comm.rank());
                dump_impl(comm, &ctx, &Chunk::from(&buf[..]), &cfg).expect("dump succeeds")
            })
            .expect_all();
        (out.results, cluster)
    }

    /// Every rank the same 4-chunk buffer.
    fn shared_buffer(_rank: u32) -> Vec<u8> {
        let mut buf = Vec::new();
        for c in 0..4u8 {
            buf.extend_from_slice(&[c; 64]);
        }
        buf
    }

    /// Rank-private content.
    fn private_buffer(rank: u32) -> Vec<u8> {
        let mut buf = Vec::new();
        for c in 0..4u32 {
            buf.extend_from_slice(&[(rank * 16 + c) as u8; 64]);
        }
        buf
    }

    #[test]
    fn coll_dedup_shared_data_keeps_exactly_k_copies() {
        let (stats, cluster) = run_dump(6, Strategy::CollDedup, 3, shared_buffer);
        // 4 distinct chunks across the whole world; each must have exactly
        // 3 physical copies (not 6, not 18).
        let total_kept: u64 = stats.iter().map(|s| s.chunks_kept).sum();
        let total_sent: u64 = stats.iter().map(|s| s.total_chunks_sent()).sum();
        assert_eq!(total_kept + total_sent, 4 * 3, "exactly K copies per chunk");
        assert_eq!(cluster.total_unique_bytes(), 4 * 64 * 3);
        // Discards happened: 6 ranks × 4 chunks, only 12 copies materialize.
        let discarded: u64 = stats.iter().map(|s| s.chunks_discarded).sum();
        assert!(discarded > 0);
    }

    #[test]
    fn local_dedup_shared_data_overreplicates() {
        let (stats, cluster) = run_dump(6, Strategy::CollDedup, 3, shared_buffer);
        let (stats_l, cluster_l) = run_dump(6, Strategy::LocalDedup, 3, shared_buffer);
        // local-dedup cannot see cross-rank duplication: each rank keeps
        // its 4 chunks and replicates them twice → more traffic and the
        // same chunks on more nodes than coll-dedup.
        let coll_sent: u64 = stats.iter().map(|s| s.total_chunks_sent()).sum();
        let local_sent: u64 = stats_l.iter().map(|s| s.total_chunks_sent()).sum();
        assert!(
            local_sent > coll_sent,
            "local {local_sent} vs coll {coll_sent}"
        );
        assert!(cluster_l.total_unique_bytes() >= cluster.total_unique_bytes());
    }

    #[test]
    fn no_dedup_stores_raw_blobs_everywhere() {
        let (stats, cluster) = run_dump(4, Strategy::NoDedup, 3, private_buffer);
        for s in &stats {
            assert_eq!(s.bytes_hashed, 0, "no-dedup must not hash");
            assert!(s.reduction.is_none());
        }
        // Each node holds its own blob plus 2 partner blobs.
        for rank in 0..4u32 {
            let holders = (0..4).filter(|&nd| cluster.has_blob(nd, rank, 1)).count();
            assert_eq!(holders, 3, "rank {rank} blob must exist on K=3 nodes");
        }
        assert_eq!(cluster.total_device_bytes(), 4 * 256 * 3);
    }

    #[test]
    fn private_data_replicates_k_copies_all_strategies() {
        for strategy in [Strategy::NoDedup, Strategy::LocalDedup, Strategy::CollDedup] {
            let (stats, cluster) = run_dump(5, strategy, 3, private_buffer);
            // All-private data: no strategy can save anything.
            let logical: u64 = match strategy {
                Strategy::NoDedup => cluster.total_device_bytes(),
                _ => cluster.total_unique_bytes(),
            };
            assert_eq!(logical, 5 * 256 * 3, "{strategy:?}");
            for s in &stats {
                assert_eq!(
                    s.total_chunks_sent(),
                    8,
                    "{strategy:?}: 4 chunks × 2 partners"
                );
            }
        }
    }

    #[test]
    fn dedup_chunks_have_at_least_k_copies() {
        // Mixed redundancy: half shared, half private.
        let mk = |rank: u32| {
            let mut buf = Vec::new();
            buf.extend_from_slice(&[0xEE; 64]); // shared by all
            buf.extend_from_slice(&[rank as u8 + 1; 64]); // private
            buf
        };
        for strategy in [Strategy::LocalDedup, Strategy::CollDedup] {
            let (_, cluster) = run_dump(5, strategy, 3, mk);
            let shared_fp = Sha1ChunkHasher.fingerprint(&[0xEE; 64]);
            assert!(
                cluster.copies_of(&shared_fp) >= 3,
                "{strategy:?}: shared chunk under-replicated"
            );
            for rank in 0..5u32 {
                let fp = Sha1ChunkHasher.fingerprint(&[rank as u8 + 1; 64]);
                assert_eq!(
                    cluster.copies_of(&fp),
                    3,
                    "{strategy:?}: private chunk of {rank}"
                );
            }
        }
    }

    #[test]
    fn manifests_are_replicated_to_partners() {
        let (_, cluster) = run_dump(4, Strategy::CollDedup, 3, private_buffer);
        for rank in 0..4u32 {
            let holders = (0..4)
                .filter(|&nd| cluster.get_manifest(nd, rank, 1).is_ok())
                .count();
            assert_eq!(holders, 3, "manifest of rank {rank}");
        }
    }

    #[test]
    fn k1_stores_locally_only() {
        let (stats, cluster) = run_dump(3, Strategy::CollDedup, 1, private_buffer);
        for s in &stats {
            assert_eq!(s.total_chunks_sent(), 0);
            assert_eq!(s.records_received, 0);
        }
        assert_eq!(cluster.total_unique_bytes(), 3 * 256);
    }

    #[test]
    fn k_larger_than_world_is_clamped() {
        let (stats, _) = run_dump(3, Strategy::CollDedup, 10, private_buffer);
        assert!(stats.iter().all(|s| s.k == 3));
    }

    #[test]
    fn empty_buffer_dump_is_legal() {
        let (stats, cluster) = run_dump(3, Strategy::CollDedup, 2, |_| Vec::new());
        for s in &stats {
            assert_eq!(s.chunks_total, 0);
            assert_eq!(s.bytes_written_local, 0);
        }
        assert_eq!(cluster.total_unique_bytes(), 0);
        // Manifests still exist (empty recipes) for restart symmetry.
        assert!(cluster.get_manifest(0, 0, 1).is_ok());
    }

    #[test]
    fn unaligned_buffer_tail_chunk_roundtrips() {
        let (stats, cluster) = run_dump(3, Strategy::CollDedup, 2, |rank| {
            vec![rank as u8 + 1; 100] // 64 + 36-byte tail
        });
        for s in &stats {
            assert_eq!(s.chunks_total, 2);
        }
        // Both chunks of rank 0 must be on 2 nodes.
        let m = cluster.get_manifest(0, 0, 1).unwrap();
        for fp in &m.chunks {
            assert_eq!(cluster.copies_of(fp), 2);
        }
    }

    #[test]
    fn dump_fails_cleanly_when_local_node_is_down() {
        let cluster = Cluster::new(Placement::one_per_node(3));
        cluster.fail_node(1);
        let cfg = DumpConfig::paper_defaults(Strategy::CollDedup)
            .with_replication(2)
            .with_chunk_size(64);
        let out = WorldConfig::default()
            .launch(3, |comm| {
                let ctx = DumpContext {
                    cluster: &cluster,
                    hasher: &Sha1ChunkHasher,
                    dump_id: 1,
                };
                let buf = vec![comm.rank() as u8; 128];
                dump_impl(comm, &ctx, &Chunk::from(&buf[..]), &cfg)
            })
            .expect_all();
        // Rank 1's node is down: it errors; the others still complete
        // (no deadlock, no panic).
        assert!(out.results[0].is_ok());
        assert!(matches!(
            out.results[1],
            Err(DumpError::Storage(StorageError::NodeDown(1)))
        ));
        assert!(out.results[2].is_ok());
    }

    #[test]
    fn stats_traffic_matches_runtime_accounting() {
        let cluster = Cluster::new(Placement::one_per_node(4));
        let cfg = DumpConfig::paper_defaults(Strategy::LocalDedup)
            .with_replication(3)
            .with_chunk_size(64);
        let out = WorldConfig::default()
            .launch(4, |comm| {
                let ctx = DumpContext {
                    cluster: &cluster,
                    hasher: &Sha1ChunkHasher,
                    dump_id: 1,
                };
                let buf = private_buffer(comm.rank());
                let stats = dump_impl(comm, &ctx, &Chunk::from(&buf[..]), &cfg).unwrap();
                (stats, comm.traffic())
            })
            .expect_all();
        for (stats, traffic) in &out.results {
            assert_eq!(stats.bytes_sent_replication, traffic.rma_put);
            assert_eq!(stats.bytes_received_replication, traffic.rma_recv);
        }
    }

    fn run_dump_with(
        n: u32,
        strategy: Strategy,
        k: u32,
        policy: crate::config::RedundancyPolicy,
        mk_buf: impl Fn(u32) -> Vec<u8> + Sync,
    ) -> (Vec<DumpStats>, Cluster) {
        let cluster = Cluster::new(Placement::one_per_node(n));
        let cfg = DumpConfig::paper_defaults(strategy)
            .with_replication(k)
            .with_chunk_size(64)
            .with_f_threshold(1 << 12)
            .with_policy(policy);
        let out = WorldConfig::default()
            .launch(n, |comm| {
                let ctx = DumpContext {
                    cluster: &cluster,
                    hasher: &Sha1ChunkHasher,
                    dump_id: 1,
                };
                let buf = mk_buf(comm.rank());
                dump_impl(comm, &ctx, &Chunk::from(&buf[..]), &cfg).expect("dump succeeds")
            })
            .expect_all();
        (out.results, cluster)
    }

    /// One chunk shared by every rank, one rank-private chunk.
    fn mixed_buffer(rank: u32) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&[0xEE; 64]);
        buf.extend_from_slice(&[rank as u8 + 1; 64]);
        buf
    }

    #[test]
    fn rs_policy_codes_private_chunks_and_credits_shared() {
        use crate::config::RedundancyPolicy;
        let (stats, cluster) = run_dump_with(
            6,
            Strategy::CollDedup,
            3,
            RedundancyPolicy::Rs { k: 4, m: 2 },
            mixed_buffer,
        );
        // The shared chunk is naturally duplicated on 6 ≥ m+1 ranks: the
        // dedup credit keeps it replicated and skips parity. Each private
        // chunk (freq 1 ≤ m) is striped instead of replicated.
        let coded: u64 = stats.iter().map(|s| s.chunks_coded).sum();
        assert_eq!(coded, 6, "exactly the six private chunks are coded");
        let stripes: u64 = stats.iter().map(|s| s.stripes_assembled).sum();
        assert_eq!(stripes, 6, "each coded chunk striped exactly once");
        assert!(cluster.total_parity_bytes() > 0);
        // The credited shared chunk keeps the policy floor of m+1 copies.
        let shared_fp = Sha1ChunkHasher.fingerprint(&[0xEE; 64]);
        assert_eq!(cluster.copies_of(&shared_fp), 3, "m+1 natural copies");
        // Coded chunks are not replicated as plain chunks anywhere.
        for rank in 0..6u32 {
            let fp = Sha1ChunkHasher.fingerprint(&[rank as u8 + 1; 64]);
            assert_eq!(cluster.copies_of(&fp), 0, "coded chunk lives as shards");
        }
        // Manifests record the stripe membership.
        let m = cluster.get_manifest(0, 0, 1).unwrap();
        assert_eq!(m.rs, Some((4, 2)));
        assert!(!m.coded.is_empty());
    }

    #[test]
    fn auto_policy_replicates_below_threshold() {
        use crate::config::RedundancyPolicy;
        let (stats, cluster) = run_dump_with(
            6,
            Strategy::CollDedup,
            3,
            RedundancyPolicy::Auto {
                k: 4,
                m: 2,
                replicate_below: 128,
            },
            private_buffer,
        );
        // Every chunk is 64 < 128 bytes: nothing is coded, no parity.
        assert!(stats.iter().all(|s| s.chunks_coded == 0));
        assert_eq!(cluster.total_parity_bytes(), 0);
        // Dropping the size floor flips all private chunks to coded.
        let (stats, cluster) = run_dump_with(
            6,
            Strategy::CollDedup,
            3,
            RedundancyPolicy::Auto {
                k: 4,
                m: 2,
                replicate_below: 1,
            },
            private_buffer,
        );
        assert!(stats.iter().all(|s| s.chunks_coded == 4));
        assert!(cluster.total_parity_bytes() > 0);
    }

    #[test]
    fn rs_storage_overhead_beats_replication() {
        use crate::config::RedundancyPolicy;
        // All-private data, so dedup saves nothing: the comparison is
        // purely 3× replication vs (k+m)/k = 1.5× coding.
        let (_, c_rep) = run_dump(6, Strategy::CollDedup, 3, private_buffer);
        let (_, c_rs) = run_dump_with(
            6,
            Strategy::CollDedup,
            3,
            RedundancyPolicy::Rs { k: 4, m: 2 },
            private_buffer,
        );
        assert!(
            c_rs.total_device_bytes() < c_rep.total_device_bytes(),
            "rs {} vs rep3 {}",
            c_rs.total_device_bytes(),
            c_rep.total_device_bytes()
        );
    }

    #[test]
    fn coll_dedup_parity_strictly_below_no_dedup() {
        use crate::config::RedundancyPolicy;
        // Same data, same Rs policy: no-dedup codes whole blobs, blind to
        // the shared chunk; coll-dedup credits it and only generates
        // parity for the private chunks.
        let rs = RedundancyPolicy::Rs { k: 4, m: 2 };
        let (_, c_nd) = run_dump_with(6, Strategy::NoDedup, 3, rs, mixed_buffer);
        let (_, c_cd) = run_dump_with(6, Strategy::CollDedup, 3, rs, mixed_buffer);
        assert!(c_cd.total_parity_bytes() > 0);
        assert!(
            c_cd.total_parity_bytes() < c_nd.total_parity_bytes(),
            "dedup credit must cut parity: coll {} vs none {}",
            c_cd.total_parity_bytes(),
            c_nd.total_parity_bytes()
        );
    }

    #[test]
    fn no_dedup_rs_stripes_blob_instead_of_replicating() {
        use crate::config::RedundancyPolicy;
        let (stats, cluster) = run_dump_with(
            4,
            Strategy::NoDedup,
            3,
            RedundancyPolicy::Rs { k: 2, m: 2 },
            private_buffer,
        );
        for s in &stats {
            assert_eq!(s.chunks_coded, s.chunks_total, "whole blob is coded");
            assert_eq!(s.bytes_sent_replication, 0, "no replica fan-out");
        }
        // No raw blob copies anywhere — the data lives as shards.
        for rank in 0..4u32 {
            let holders = (0..4).filter(|&nd| cluster.has_blob(nd, rank, 1)).count();
            assert_eq!(holders, 0, "rank {rank} blob must be striped, not stored");
        }
        assert!(cluster.total_parity_bytes() > 0);
    }
}
